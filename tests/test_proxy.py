"""Unit and property tests for the proxy problem (SP2) machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.proxy import descent_direction, proxy_value, rho_star


class TestProxyValue:
    def test_weighted_sum_at_rho_zero(self):
        f = np.array([2.0, 3.0])
        r = np.array([10.0, 10.0])
        c = np.array([1.0, 1.0])
        assert proxy_value(f, r, c, 0.0) == pytest.approx(5.0 - 0.0)

    def test_continuity_at_boundary(self):
        r = np.array([5.0])
        c = np.array([1.0])
        below = proxy_value(np.array([5.0 - 1e-9]), r, c, 0.7)
        above = proxy_value(np.array([5.0 + 1e-9]), r, c, 0.7)
        assert below == pytest.approx(above, abs=1e-6)

    def test_infinite_threshold_finite_value(self):
        f = np.array([3.0])
        r = np.array([math.inf])
        assert math.isfinite(proxy_value(f, r, np.array([1.0]), 0.5))

    @settings(max_examples=80, deadline=None)
    @given(
        f=st.lists(st.floats(-5, 5), min_size=2, max_size=4),
        idx=st.integers(0, 3),
        delta=st.floats(0.01, 2.0),
        rho=st.floats(-0.99, 0.99),
    )
    def test_theorem1_monotonicity(self, f, idx, delta, rho):
        """The proxy objective is strictly increasing in every f_i.

        This is the crux of Theorem 1: monotonicity implies every
        minimizer of (SP2) is weakly Pareto-optimal for (SP1).
        """
        f = np.asarray(f)
        idx = idx % len(f)
        r = np.full(len(f), 1.0)
        c = np.full(len(f), 0.5)
        g = f.copy()
        g[idx] += delta
        assert proxy_value(f, r, c, rho) < proxy_value(g, r, c, rho) + 1e-12


class TestRhoStar:
    def test_zero_when_nothing_violated(self):
        assert rho_star(np.eye(2), np.ones(2), np.array([False, False])) == 0.0

    def test_negative_for_single_violation(self):
        """One violated objective: rho goes negative to amplify it."""
        rho = rho_star(np.eye(2), np.array([0.5, 0.5]), np.array([True, False]))
        assert rho < 0.0

    def test_violated_alignment_never_negative(self):
        rng = np.random.default_rng(0)
        for seed in range(20):
            jac = np.random.default_rng(seed).normal(size=(3, 4))
            c = np.abs(np.random.default_rng(seed + 1).normal(size=3)) + 0.1
            violated = np.array([True, True, False])
            rho = rho_star(jac, c, violated)
            d = descent_direction(jac, c, rho, violated)
            alignments = jac[violated] @ d
            # The constraint of (RHO): no violated QS increases, unless
            # geometry makes it impossible (rho falls back to 0 then).
            if rho != 0.0:
                assert np.min(alignments) >= -1e-9

    def test_rho_maximizes_worst_alignment(self):
        rng = np.random.default_rng(7)
        jac = rng.normal(size=(3, 4))
        c = np.array([0.4, 0.4, 0.2])
        violated = np.array([True, False, True])
        rho = rho_star(jac, c, violated)
        d_star = descent_direction(jac, c, rho, violated)
        best = np.min(jac[violated] @ d_star)
        for alt_rho in np.linspace(-1.0, 0.99, 41):
            d = descent_direction(jac, c, alt_rho, violated)
            align = np.min(jac[violated] @ d)
            if align >= -1e-9:  # feasible alternative
                assert best >= align - 1e-6

    def test_zero_gradients_give_zero(self):
        assert rho_star(np.zeros((2, 3)), np.ones(2), np.array([True, False])) == 0.0

    def test_below_one(self):
        rng = np.random.default_rng(3)
        for seed in range(10):
            jac = np.random.default_rng(seed).normal(size=(4, 5))
            rho = rho_star(jac, np.ones(4), np.array([True, True, False, False]))
            assert rho < 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rho_star(np.eye(2), np.ones(3), np.array([True, False]))


class TestDescentDirection:
    def test_no_violation_is_weighted_gradient(self):
        jac = np.array([[1.0, 0.0], [0.0, 2.0]])
        c = np.array([1.0, 1.0])
        d = descent_direction(jac, c, rho=0.5, violated=np.array([False, False]))
        np.testing.assert_allclose(d, [1.0, 2.0])

    def test_negative_rho_amplifies_violated(self):
        jac = np.eye(2)
        c = np.array([1.0, 1.0])
        d = descent_direction(jac, c, rho=-1.0, violated=np.array([True, False]))
        np.testing.assert_allclose(d, [2.0, 1.0])

    def test_positive_rho_dampens_violated(self):
        jac = np.eye(2)
        c = np.array([1.0, 1.0])
        d = descent_direction(jac, c, rho=0.5, violated=np.array([True, False]))
        np.testing.assert_allclose(d, [0.5, 1.0])
