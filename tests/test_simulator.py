"""Unit tests for the heartbeat ClusterSimulator and noise injection."""

import numpy as np
import pytest

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig, TenantConfig
from repro.sim.noise import NoiseModel
from repro.sim.predictor import SchedulePredictor
from repro.sim.simulator import ClusterSimulator
from repro.workload.model import Workload, mapreduce_job, single_stage_job


@pytest.fixture
def cluster():
    return ClusterSpec({"slots": 4})


@pytest.fixture
def config():
    return RMConfig({"A": TenantConfig(), "B": TenantConfig()})


@pytest.fixture
def workload():
    return Workload(
        [
            single_stage_job("A", 0.0, [30.0] * 4, job_id="a"),
            single_stage_job("B", 10.0, [20.0] * 2, job_id="b"),
        ],
        horizon=120.0,
    )


class TestNoiseModel:
    def test_quiet_is_quiet(self):
        assert NoiseModel.quiet().is_quiet

    def test_production_is_not(self):
        assert not NoiseModel.production().is_quiet

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(task_failure_rate=-1.0)
        with pytest.raises(ValueError):
            NoiseModel(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            NoiseModel(node_restart_capacity_fraction=1.5)

    def test_quiet_duration_passthrough(self, rng):
        assert NoiseModel.quiet().actual_duration(rng, 10.0) == 10.0

    def test_duration_noise_perturbs(self, rng):
        noise = NoiseModel(duration_noise=0.3)
        draws = {noise.actual_duration(rng, 10.0) for _ in range(5)}
        assert len(draws) == 5

    def test_straggler_slowdown(self):
        noise = NoiseModel(straggler_probability=1.0, straggler_slowdown=3.0)
        rng = np.random.default_rng(0)
        assert noise.actual_duration(rng, 10.0) == pytest.approx(30.0)

    def test_jitter_floors(self, rng):
        noise = NoiseModel(record_jitter=100.0)
        assert noise.jittered(rng, 5.0, lo=4.0) >= 4.0


class TestQuietSimulation:
    def test_matches_predictor_within_heartbeat(self, cluster, config, workload):
        sim = ClusterSimulator(cluster, heartbeat=1.0)
        truth = sim.run(workload, config)
        pred = SchedulePredictor(cluster).predict(workload, config)
        t_by_job = {j.job_id: j.finish_time for j in truth.job_records}
        p_by_job = {j.job_id: j.finish_time for j in pred.job_records}
        assert set(t_by_job) == set(p_by_job)
        for job_id in t_by_job:
            assert t_by_job[job_id] == pytest.approx(p_by_job[job_id], abs=3.0)

    def test_all_jobs_complete(self, cluster, config, workload):
        truth = ClusterSimulator(cluster, heartbeat=2.0).run(workload, config)
        assert len(truth.job_records) == len(workload)
        assert len(truth.task_records) == workload.num_tasks

    def test_determinism_with_seed(self, cluster, config, workload):
        sim = ClusterSimulator(cluster, noise=NoiseModel.production(), heartbeat=2.0)
        t1 = sim.run(workload, config, seed=7)
        t2 = sim.run(workload, config, seed=7)
        assert [
            (r.task_id, r.attempt, r.finish_time) for r in t1.task_records
        ] == [(r.task_id, r.attempt, r.finish_time) for r in t2.task_records]

    def test_heartbeat_validation(self, cluster):
        with pytest.raises(ValueError):
            ClusterSimulator(cluster, heartbeat=0.0)


class TestNoiseEffects:
    def test_task_failures_produce_retries(self, cluster, config):
        w = Workload([single_stage_job("A", 0.0, [50.0] * 4, job_id="a")])
        noise = NoiseModel(task_failure_rate=2e-2)
        truth = ClusterSimulator(cluster, noise=noise, heartbeat=1.0).run(
            w, config, seed=1
        )
        failed = [r for r in truth.task_records if r.failed]
        assert failed, "expected at least one failure at this rate"
        completed = {r.task_id for r in truth.task_records if r.completed}
        assert len(completed) == 4  # every task eventually completes

    def test_job_kills_remove_jobs(self, cluster, config):
        w = Workload(
            [single_stage_job("A", 0.0, [200.0] * 2, job_id=f"j{i}") for i in range(6)]
        )
        noise = NoiseModel(job_kill_rate=5e-3)
        truth = ClusterSimulator(cluster, noise=noise, heartbeat=1.0).run(
            w, config, seed=3
        )
        assert len(truth.job_records) < 6

    def test_node_restart_fails_tasks(self, config):
        cluster = ClusterSpec({"slots": 10})
        w = Workload([single_stage_job("A", 0.0, [300.0] * 10, job_id="a")])
        noise = NoiseModel(
            node_restart_rate=2e-3,
            node_restart_capacity_fraction=0.4,
            node_restart_duration=60.0,
        )
        truth = ClusterSimulator(cluster, noise=noise, heartbeat=1.0).run(
            w, config, seed=5
        )
        assert any(r.failed for r in truth.task_records)

    def test_duration_noise_changes_service_times(self, cluster, config):
        w = Workload([single_stage_job("A", 0.0, [30.0] * 4, job_id="a")])
        noise = NoiseModel(duration_noise=0.3)
        truth = ClusterSimulator(cluster, noise=noise, heartbeat=0.5).run(
            w, config, seed=2
        )
        services = sorted(r.service_time for r in truth.task_records)
        assert services[0] != pytest.approx(services[-1], abs=0.01)

    def test_max_time_bounds_run(self, cluster, config):
        w = Workload([single_stage_job("A", 0.0, [1e5], job_id="a")])
        truth = ClusterSimulator(cluster, heartbeat=10.0).run(
            w, config, max_time=100.0
        )
        assert len(truth.job_records) == 0  # never finished within bound


class TestPreemptionParity:
    """Simulator preemption semantics mirror the predictor's."""

    def test_kill_then_restart(self):
        cluster = ClusterSpec({"slots": 10})
        cfg = RMConfig(
            {
                "A": TenantConfig(),
                "B": TenantConfig(
                    min_share={"slots": 5}, min_share_preemption_timeout=60.0
                ),
            }
        )
        w = Workload(
            [
                single_stage_job("A", 0.0, [500.0] * 10, job_id="a"),
                single_stage_job("B", 5.0, [100.0] * 5, job_id="b"),
            ]
        )
        truth = ClusterSimulator(cluster, heartbeat=1.0).run(w, cfg)
        killed = [r for r in truth.task_records if r.preempted]
        assert len(killed) == 5
        assert all(r.tenant == "A" for r in killed)
        b_fin = truth.job("b").finish_time
        assert b_fin == pytest.approx(165.0, abs=5.0)


class TestMapReduce:
    def test_stage_ordering_respected(self, config):
        cluster = ClusterSpec({"map": 4, "reduce": 2})
        w = Workload([mapreduce_job("A", 0.0, [10.0] * 4, [20.0], job_id="mr")])
        truth = ClusterSimulator(cluster, heartbeat=1.0).run(w, config)
        maps = [r for r in truth.task_records if r.stage == "map"]
        reduces = [r for r in truth.task_records if r.stage == "reduce"]
        assert max(m.finish_time for m in maps) <= min(r.start_time for r in reduces) + 1e-6


class TestSimulationSession:
    def test_sliced_advance_matches_one_shot_run(self, cluster, config, workload):
        """advance_to in slices reproduces run() exactly under quiet noise."""
        sim = ClusterSimulator(cluster, heartbeat=5.0)
        reference = sim.run(workload, config, seed=0)
        session = sim.session(workload, config, seed=0)
        tasks, jobs = [], []
        for until in (20.0, 40.0, 90.0):
            t, j = session.advance_to(until)
            tasks.extend(t)
            jobs.extend(j)
        t, j = session.drain()
        tasks.extend(t)
        jobs.extend(j)
        assert sorted(tasks, key=lambda r: (r.task_id, r.attempt)) == sorted(
            reference.task_records, key=lambda r: (r.task_id, r.attempt)
        )
        assert sorted(jobs, key=lambda r: r.job_id) == sorted(
            reference.job_records, key=lambda r: r.job_id
        )

    def test_backlog_carries_between_slices(self, cluster, config, workload):
        """Work not finished in one slice completes in a later one."""
        session = ClusterSimulator(cluster, heartbeat=5.0).session(workload, config)
        tasks_early, _ = session.advance_to(10.0)
        assert not session.idle
        tasks_late, jobs_late = session.drain()
        assert len(tasks_early) < len(tasks_early) + len(tasks_late)
        assert {j.job_id for j in jobs_late} == {"a", "b"}

    def test_set_config_swaps_live(self, cluster, config, workload):
        session = ClusterSimulator(cluster, heartbeat=5.0).session(workload, config)
        session.advance_to(10.0)
        tightened = RMConfig(
            {"A": TenantConfig(max_share={"slots": 1}), "B": TenantConfig()}
        )
        session.set_config(tightened)
        assert session.config is tightened
        session.drain()
        assert session.idle

    def test_lose_capacity_evicts_and_clamps(self, cluster, config):
        jobs = [single_stage_job("A", 0.0, [50.0] * 4, job_id="long")]
        session = ClusterSimulator(cluster, heartbeat=5.0).session(
            Workload(jobs, horizon=60.0), config
        )
        session.advance_to(10.0)  # all four tasks running
        removed = session.lose_capacity("slots", 2)
        assert removed == 2
        evicted, _ = session.advance_to(15.0)
        assert sum(1 for r in evicted if r.failed) >= 1  # overflow was killed
        # Clamped: a pool never drops below one container.
        assert session.lose_capacity("slots", 100) == 1
        assert session.lose_capacity("slots", 5) == 0
        # Unknown pools are ignored.
        assert session.lose_capacity("gpu", 3) == 0
        session.drain()
        assert session.idle  # requeued work finishes on the single container

    def test_lose_capacity_rejects_negative(self, cluster, config, workload):
        session = ClusterSimulator(cluster).session(workload, config)
        with pytest.raises(ValueError):
            session.lose_capacity("slots", -1)
