"""Unit tests for hierarchical tenants (the §10 extension)."""

import math

import pytest

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig, TenantConfig
from repro.rm.fair import fair_shares
from repro.rm.hierarchy import QueueNode, flatten_hierarchy, hierarchy, leaf
from repro.sim.predictor import SchedulePredictor
from repro.workload.model import Workload, single_stage_job


class TestQueueNode:
    def test_leaf_detection(self):
        assert leaf("a").is_leaf
        assert not hierarchy("root", leaf("a")).is_leaf

    def test_leaves_enumeration(self):
        tree = hierarchy("root", hierarchy("prod", leaf("etl"), leaf("mv")), leaf("adhoc"))
        assert [l.name for l in tree.leaves()] == ["etl", "mv", "adhoc"]

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            leaf("a", weight=0.0)

    def test_duplicate_children_rejected(self):
        with pytest.raises(ValueError, match="duplicate child"):
            hierarchy("root", leaf("a"), leaf("a"))


class TestFlattening:
    def test_weights_multiply_down(self):
        # root splits 3:1 between prod and adhoc; prod splits 1:1.
        tree = hierarchy(
            "root",
            hierarchy("prod", leaf("etl"), leaf("mv"), weight=3.0),
            leaf("adhoc", weight=1.0),
        )
        cfg = flatten_hierarchy(tree)
        w = {t: cfg.tenant(t).weight for t in cfg.tenant_names()}
        assert w["etl"] == pytest.approx(w["mv"])
        assert w["etl"] + w["mv"] == pytest.approx(3.0 * w["adhoc"])

    def test_min_shares_distribute_by_weight(self):
        tree = hierarchy(
            "root",
            hierarchy(
                "prod",
                leaf("etl", weight=3.0),
                leaf("mv", weight=1.0),
                min_share={"slots": 8},
            ),
            leaf("adhoc"),
        )
        cfg = flatten_hierarchy(tree)
        assert cfg.tenant("etl").min_for("slots") == 6
        assert cfg.tenant("mv").min_for("slots") == 2
        assert cfg.tenant("adhoc").min_for("slots") == 0

    def test_max_share_takes_tightest_ancestor(self):
        tree = hierarchy(
            "root",
            hierarchy(
                "prod",
                leaf("etl", max_share={"slots": 10}),
                max_share={"slots": 6},
            ),
        )
        cfg = flatten_hierarchy(tree)
        assert cfg.tenant("etl").max_for("slots", 100) == 6

    def test_timeouts_inherit_and_override(self):
        tree = hierarchy(
            "root",
            hierarchy(
                "prod",
                leaf("etl"),
                leaf("mv", fair_share_preemption_timeout=120.0),
                fair_share_preemption_timeout=600.0,
            ),
        )
        cfg = flatten_hierarchy(tree)
        assert cfg.tenant("etl").fair_share_preemption_timeout == 600.0
        assert cfg.tenant("mv").fair_share_preemption_timeout == 120.0
        assert math.isinf(cfg.tenant("etl").min_share_preemption_timeout)

    def test_duplicate_leaf_names_rejected(self):
        tree = hierarchy("root", hierarchy("a", leaf("x")), hierarchy("b", leaf("x")))
        with pytest.raises(ValueError, match="duplicate leaf"):
            flatten_hierarchy(tree)

    def test_childless_root_is_single_leaf(self):
        cfg = flatten_hierarchy(leaf("only", weight=2.0))
        assert cfg.tenant_names() == ["only"]


class TestHierarchicalFairness:
    """Flattened weights reproduce hierarchical fair allocation."""

    def test_allocation_matches_two_level_fairness(self):
        # root: prod (3) vs adhoc (1); prod: etl (1) vs mv (1).
        tree = hierarchy(
            "root",
            hierarchy("prod", leaf("etl"), leaf("mv"), weight=3.0),
            leaf("adhoc"),
        )
        cfg = flatten_hierarchy(tree)
        weights = {t: cfg.tenant(t).weight for t in cfg.tenant_names()}
        alloc = fair_shares(16, {"etl": 99, "mv": 99, "adhoc": 99}, weights)
        # prod subtree gets 12, split 6/6; adhoc gets 4.
        assert alloc == {"etl": 6, "mv": 6, "adhoc": 4}

    def test_sibling_idle_is_approximated(self):
        """Documented fidelity limit of the Hadoop-style flattening.

        True hierarchical fairness would give the prod subtree 12 (3:1
        over adhoc) with mv idle, i.e. etl = 12.  Flattened weights give
        etl its own leaf weight's share (1.5 : 1.0 -> 9.6 ~ 10), which
        lies strictly between the flat-equal split (8) and the true
        hierarchical one (12).
        """
        tree = hierarchy(
            "root",
            hierarchy("prod", leaf("etl"), leaf("mv"), weight=3.0),
            leaf("adhoc"),
        )
        cfg = flatten_hierarchy(tree)
        weights = {t: cfg.tenant(t).weight for t in cfg.tenant_names()}
        alloc = fair_shares(16, {"etl": 99, "mv": 0, "adhoc": 99}, weights)
        assert 8 < alloc["etl"] < 12
        assert alloc["etl"] + alloc["adhoc"] == 16

    def test_end_to_end_schedule_with_subqueues(self):
        """Fine-grained SLO scenario: one tenant's interactive jobs get
        their own sub-queue with a guaranteed minimum."""
        tree = hierarchy(
            "root",
            hierarchy(
                "analytics",
                leaf(
                    "analytics/interactive",
                    weight=1.0,
                    min_share={"slots": 4},
                    min_share_preemption_timeout=30.0,
                ),
                leaf("analytics/batch", weight=1.0),
                weight=1.0,
            ),
            leaf("etl", weight=1.0),
        )
        cfg = flatten_hierarchy(tree)
        cluster = ClusterSpec({"slots": 8})
        workload = Workload(
            [
                single_stage_job("analytics/batch", 0.0, [300.0] * 8, job_id="b"),
                single_stage_job("analytics/interactive", 10.0, [20.0] * 4, job_id="i"),
                single_stage_job("etl", 10.0, [60.0] * 4, job_id="e"),
            ]
        )
        schedule = SchedulePredictor(cluster).predict(workload, cfg)
        interactive = schedule.job("i")
        batch = schedule.job("b")
        assert interactive.finish_time < batch.finish_time
