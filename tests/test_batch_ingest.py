"""Tests for the fast durable ingest path: group commit, batch ingest,
heap-driven eviction, journal compaction, and node recovery."""

import json
import math
import os
import threading
import time

import numpy as np
import pytest

from repro.rm.cluster import ClusterSpec
from repro.service.daemon import ServiceConfig, TempoService
from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    NodeRecovered,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.ingest import RollingWindow, stats_gap
from repro.service.journal import (
    EventJournal,
    JournalError,
    canonical_json,
    decode_event,
    encode_event,
    fast_event_body,
    last_heartbeat,
)
from repro.service.replay import build_controller, build_service, make_scenario
from repro.service.snapshot import ServiceState
from repro.workload.trace import JobRecord, TaskRecord


def _task(job_id, task_id, tenant, finish, duration, **kwargs):
    start = finish - duration
    return TaskRecord(
        job_id=job_id,
        task_id=task_id,
        tenant=tenant,
        pool="map",
        stage="map",
        submit_time=max(start - 1.0, 0.0),
        start_time=start,
        finish_time=finish,
        **kwargs,
    )


def _events(seed=0, count=400, tenants=("deadline", "besteffort"), start=0.0):
    """Deterministic telemetry stream (same shape as the service tests)."""
    rng = np.random.default_rng(seed)
    events, t = [], start
    for i in range(count):
        t += float(rng.exponential(20.0))
        tenant = tenants[i % len(tenants)]
        job_id = f"{tenant}-{i}"
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        duration = float(rng.lognormal(3.0 + 0.5 * (i % 3), 0.8))
        finish = t + duration
        events.append(
            TaskCompleted(
                finish,
                record=_task(
                    job_id,
                    f"{job_id}/t0",
                    tenant,
                    finish,
                    duration,
                    preempted=(i % 17 == 0),
                    failed=(i % 23 == 0),
                ),
            )
        )
        events.append(
            JobCompleted(
                finish,
                record=JobRecord(
                    job_id=job_id, tenant=tenant, submit_time=t, finish_time=finish
                ),
            )
        )
    events.sort(key=lambda e: e.time)
    return events


def _build(state=None, seed=0, **controller_kwargs):
    scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
    return build_service(
        scenario,
        ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3),
        seed=seed,
        state=state,
        **controller_kwargs,
    )


def _service_config():
    return ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3)


ODD_EVENTS = [
    JobSubmitted(1.0, tenant='te"nant', job_id="a\\b", deadline=math.inf),
    JobSubmitted(2.0, tenant="unié", job_id="x"),
    TenantJoined(3.0, tenant="café"),
    NodeRecovered(4.0, pool="map", containers=2),
    JobCompleted(
        5.0,
        record=JobRecord(
            job_id="j",
            tenant="t",
            submit_time=1.0,
            finish_time=5.0,
            deadline=4.5,
            num_tasks=3,
            tags=("etl", "b"),
            stage_deps=(("map", ()), ("reduce", ("map",))),
        ),
    ),
    TaskCompleted(6.0, record=_task("j", "j/t0", "t", 6.0, 2.0, attempt=1)),
    TenantLeft(7.0, tenant="t"),
    NodeLost(8.0, pool="reduce"),
    Heartbeat(9.0),
]


class TestFastEncoder:
    def test_byte_parity_with_generic_encoder(self):
        """The template encoder must match canonical_json byte-for-byte."""
        for seq, event in enumerate(_events(seed=3, count=100) + ODD_EVENTS, 1):
            fast = fast_event_body(seq, event)
            ref = canonical_json(
                {"seq": seq, "kind": "event", "data": encode_event(event)}
            )
            if fast is not None:
                assert fast == ref
            # Either way the record decodes back to the original event.
            body = fast if fast is not None else ref
            payload = json.loads(body)
            assert decode_event(payload["data"]) == event

    def test_int_valued_fields_keep_parity(self):
        """Int times/fields must encode as ints, exactly like json.dumps
        (a float event time equal to an int finish_time must not leak a
        float repr into the record)."""
        events = [
            TaskCompleted(3.0, record=_task("j", "j/t0", "t", 3, 1)),
            JobCompleted(
                3.0,
                record=JobRecord(
                    job_id="j", tenant="t", submit_time=1, finish_time=3
                ),
            ),
            Heartbeat(6),
        ]
        for seq, event in enumerate(events, 1):
            fast = fast_event_body(seq, event)
            ref = canonical_json(
                {"seq": seq, "kind": "event", "data": encode_event(event)}
            )
            assert fast is None or fast == ref

    def test_escape_needing_strings_fall_back(self):
        assert fast_event_body(1, TenantJoined(1.0, tenant="unié")) is None
        assert fast_event_body(1, TenantJoined(1.0, tenant='q"q')) is None
        assert (
            fast_event_body(1, JobSubmitted(1.0, tenant="a", job_id="x", deadline=math.inf))
            is None
        )

    def test_append_events_matches_append_many_bytes(self, tmp_path):
        events = _events(seed=4, count=50) + ODD_EVENTS
        a = EventJournal(tmp_path / "a")
        a.append_events(events)
        a.close()
        b = EventJournal(tmp_path / "b")
        b.append_many(("event", encode_event(e)) for e in events)
        b.close()
        texts_a = [p.read_bytes() for p in a.segments()]
        texts_b = [p.read_bytes() for p in b.segments()]
        assert texts_a == texts_b


class TestGroupCommit:
    def test_append_many_roundtrip_with_rotation(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=3)
        events = _events(seed=5, count=4)  # 12 records -> 4 segments
        seqs = journal.append_many(("event", encode_event(e)) for e in events)
        journal.close()
        assert seqs == list(range(1, len(events) + 1))
        assert len(journal.segments()) == len(events) // 3
        records = list(EventJournal(tmp_path).iter_records())
        assert [r.seq for r in records] == seqs
        assert [decode_event(r.data) for r in records] == events

    def test_one_fsync_per_batch(self, tmp_path, monkeypatch):
        """Group commit pays at most one fsync per segment touched."""
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
        journal = EventJournal(tmp_path, segment_records=1000, fsync=True)
        journal.append_events(_events(seed=6, count=10))  # 30 records
        assert len(calls) == 1
        calls.clear()
        for event in _events(seed=6, count=5):  # 15 per-record appends
            journal.append("event", encode_event(event))
        assert len(calls) == 15
        journal.close()

    def test_torn_batch_repaired_as_single_torn_line(self, tmp_path):
        """A batch interrupted mid-write leaves a prefix + one torn line."""
        journal = EventJournal(tmp_path, segment_records=1000)
        events = _events(seed=7, count=20)
        journal.append_events(events)
        journal.close()
        segment = journal.segments()[-1]
        raw = segment.read_bytes()
        # Cut the file mid-way through the final record, as a crash
        # between write() and the page cache landing would.
        segment.write_bytes(raw[: len(raw) - 25])
        reopened = EventJournal(tmp_path)
        records = list(reopened.iter_records())
        assert len(records) == len(events) - 1
        assert reopened.last_seq == len(events) - 1
        # Appends continue densely after the torn record's seq.
        assert reopened.append("event", encode_event(Heartbeat(1e9))) == len(events)

    def test_no_recount_on_reopen_after_interleaved_read(self, tmp_path, monkeypatch):
        """The read-then-append pattern must not re-scan the segment.

        ``iter_records`` closes the write handle; the next append used
        to pay an O(segment) ``_count_lines`` scan on reopen.  The
        cached tail count makes it O(1) — enforced by making the scan
        explode.
        """
        journal = EventJournal(tmp_path, segment_records=100)
        journal.append_events(_events(seed=8, count=10))
        assert len(list(journal.iter_records())) == 30
        monkeypatch.setattr(
            EventJournal,
            "_count_lines",
            staticmethod(lambda path: pytest.fail("tail was re-counted")),
        )
        journal.append("event", encode_event(Heartbeat(1e9)))
        assert len(list(journal.iter_records())) == 31
        journal.append("event", encode_event(Heartbeat(2e9)))
        journal.close()
        assert EventJournal(tmp_path).last_seq == 32

    def test_rotation_preserved_across_interleaved_reads(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=4)
        for i in range(3):
            journal.append_events([Heartbeat(float(i))])
            list(journal.iter_records())
        journal.append_events([Heartbeat(float(i)) for i in range(3, 9)])
        journal.close()
        assert len(journal.segments()) == 3  # 9 records / 4 per segment
        assert [r.seq for r in journal.iter_records()] == list(range(1, 10))


class TestAsyncWriter:
    def test_records_identical_to_sync_path(self, tmp_path):
        events = _events(seed=9, count=60)
        sync = EventJournal(tmp_path / "sync", segment_records=32)
        sync.append_events(events)
        sync.close()
        async_journal = EventJournal(
            tmp_path / "async", segment_records=32, async_writer=True
        )
        async_journal.append_events(events)
        async_journal.close()
        assert [p.read_bytes() for p in sync.segments()] == [
            p.read_bytes() for p in async_journal.segments()
        ]

    def test_read_drains_queue_first(self, tmp_path):
        journal = EventJournal(tmp_path, async_writer=True)
        events = _events(seed=10, count=30)
        journal.append_events(events)
        # iter_records must see every acknowledged record.
        assert len(list(journal.iter_records())) == len(events)
        journal.close()

    def test_writer_failure_surfaces_on_next_append(self, tmp_path, monkeypatch):
        journal = EventJournal(tmp_path, async_writer=True)
        monkeypatch.setattr(
            journal,
            "_write_entries",
            lambda entries: (_ for _ in ()).throw(OSError("disk full")),
        )
        journal.append("event", encode_event(Heartbeat(1.0)))
        with pytest.raises(JournalError, match="async journal writer failed"):
            for _ in range(200):
                journal.append("event", encode_event(Heartbeat(2.0)))
                time.sleep(0.005)
        monkeypatch.undo()
        journal.close()

    def test_oversized_batch_does_not_deadlock(self, tmp_path):
        """A single batch larger than the queue bound must be split,
        not wait forever for room that can never exist."""
        journal = EventJournal(tmp_path, async_writer=True, queue_records=2)
        journal.append_many(
            ("event", encode_event(Heartbeat(float(i)))) for i in range(9)
        )
        journal.close()
        assert len(list(journal.iter_records())) == 9

    def test_backpressure_blocks_instead_of_dropping(self, tmp_path):
        journal = EventJournal(tmp_path, async_writer=True, queue_records=8)
        blocker = threading.Event()
        real_write = journal._write_entries

        def slow_write(entries):
            blocker.wait(2.0)
            real_write(entries)

        journal._write_entries = slow_write
        for i in range(30):  # far beyond the queue bound
            journal.append("event", encode_event(Heartbeat(float(i))))
            if i == 3:
                blocker.set()
        journal.close()
        assert len(list(journal.iter_records())) == 30


class TestHeapEviction:
    def test_many_tenants_forgotten_lazily(self):
        window = RollingWindow(100.0)
        for i in range(50):
            window.ingest(
                JobSubmitted(i * 10.0, tenant=f"t{i:02d}", job_id=f"j{i}")
            )
        # now=490, cutoff=390: tenants with their only entry before the
        # cutoff were already forgotten by the heap-driven eviction.
        assert len(window.tenants()) == 11
        window.advance(10_000.0)
        assert window.tenants() == []
        assert window.tasks_retained == 0

    def test_out_of_order_entry_still_evicted(self):
        """Bounded disorder delays eviction but never strands entries.

        An out-of-order entry sits behind a newer deque head, so (like
        the pre-heap implementation) it is evicted once the head
        expires — the documented delayed-eviction semantics.  The heap
        must deliver that wake-up even though the tenant's scheduled
        key was pushed for the out-of-order time.
        """
        window = RollingWindow(100.0)
        window.ingest(JobSubmitted(200.0, tenant="a", job_id="a1"))
        # Out-of-order entry older than the tenant's scheduled key.
        window.ingest(JobSubmitted(150.0, tenant="a", job_id="a0"))
        assert window.snapshot()["a"].submitted == 2
        window.advance(251.0)  # cutoff 151: the late entry is behind 200
        assert window.snapshot()["a"].submitted == 2  # delayed, by design
        window.advance(301.0)  # cutoff 201: both head and stragglers go
        assert window.tenants() == []
        assert stats_gap(window) < 1e-9

    def test_ingest_many_equivalent_to_sequential(self):
        events = _events(seed=11, count=300)
        one = RollingWindow(600.0)
        for event in events:
            one.ingest(event)
        many = RollingWindow(600.0)
        for i in range(0, len(events), 64):
            many.ingest_many(events[i : i + 64])
        assert stats_gap(many) < 1e-9
        assert one.tenants() == many.tenants()
        assert one.tasks_retained == many.tasks_retained
        assert one.jobs_retained == many.jobs_retained
        a, b = one.snapshot(), many.snapshot()
        for name in a:
            for field in (
                "jobs",
                "tasks",
                "submitted",
                "arrival_rate",
                "mean_response",
                "log_duration_mean",
                "log_duration_std",
            ):
                assert abs(getattr(a[name], field) - getattr(b[name], field)) < 1e-9

    def test_state_roundtrip_keeps_eviction_live(self):
        window = RollingWindow(600.0)
        for event in _events(seed=12, count=100):
            window.ingest(event)
        restored = RollingWindow.from_state(window.to_state())
        restored.advance(restored.now + 10_000.0)
        assert restored.tenants() == []  # heap was rebuilt, eviction works

    def test_control_events_rejected_by_ingest_many(self):
        window = RollingWindow(60.0)
        with pytest.raises(TypeError):
            window.ingest_many([Heartbeat(1.0)])


class TestIngestBatchParity:
    def test_same_decisions_and_stats_as_process(self):
        events = _events(seed=13, count=500)
        mid = events[len(events) // 2].time
        events.append(NodeLost(mid, pool="map", containers=2))
        events.append(TenantJoined(mid + 1.0, tenant="newbie"))
        events.append(TenantLeft(mid + 50.0, tenant="newbie"))
        events.sort(key=lambda e: e.time)
        one = _build(seed=1)
        for event in events:
            one.process(event)
        batched = _build(seed=1)
        for i in range(0, len(events), 97):
            batched.ingest_batch(events[i : i + 97])
        assert one.events_processed == batched.events_processed
        assert one.retunes == batched.retunes
        assert [(d.time, d.retuned, d.reason) for d in one.decisions] == [
            (d.time, d.retuned, d.reason) for d in batched.decisions
        ]
        assert one.rm_config.describe() == batched.rm_config.describe()
        assert one.active_tenants == batched.active_tenants
        assert one.lost_capacity == batched.lost_capacity
        assert stats_gap(batched.window) < 1e-9
        a, b = one.window.snapshot(), batched.window.snapshot()
        assert set(a) == set(b)
        for name in a:
            assert abs(a[name].arrival_rate - b[name].arrival_rate) < 1e-9
            assert abs(a[name].mean_response - b[name].mean_response) < 1e-9

    def test_same_journal_record_structure_as_process(self, tmp_path):
        events = _events(seed=14, count=300)
        state_a = ServiceState(tmp_path / "a", snapshot_every=10**9)
        one = _build(state=state_a, seed=1)
        for event in events:
            one.process(event)
        state_a.close()
        state_b = ServiceState(tmp_path / "b", snapshot_every=10**9)
        batched = _build(state=state_b, seed=1)
        for i in range(0, len(events), 128):
            batched.ingest_batch(events[i : i + 128])
        state_b.close()
        rec_a = [(r.seq, r.kind) for r in state_a.journal.iter_records()]
        rec_b = [(r.seq, r.kind) for r in state_b.journal.iter_records()]
        assert rec_a == rec_b
        assert one.retunes == batched.retunes >= 1

    def test_resume_from_batch_written_journal(self, tmp_path):
        state = ServiceState(tmp_path, segment_records=64, snapshot_every=300)
        live = _build(state=state)
        events = _events(seed=15, count=400)
        for i in range(0, len(events), 100):
            live.ingest_batch(events[i : i + 100])
        state.close()
        assert live.retunes >= 2
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        assert resumed.events_processed == live.events_processed
        assert stats_gap(resumed.window) < 1e-9
        assert [(d.time, d.retuned, d.reason) for d in live.decisions] == [
            (d.time, d.retuned, d.reason) for d in resumed.decisions
        ]
        assert live.rm_config.describe() == resumed.rm_config.describe()

    def test_resume_from_async_written_journal(self, tmp_path):
        state = ServiceState(tmp_path, snapshot_every=10**9, async_journal=True)
        live = _build(state=state)
        events = _events(seed=16, count=300)
        for i in range(0, len(events), 64):
            live.ingest_batch(events[i : i + 64])
        state.close()
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        assert resumed.events_processed == live.events_processed
        assert stats_gap(resumed.window) < 1e-9

    def test_empty_batch_is_a_noop(self):
        service = _build()
        assert service.ingest_batch([]) == []
        assert service.events_processed == 0


class TestCompaction:
    def _fill(self, tmp_path, *, auto=False, count=400, segment_records=32):
        state = ServiceState(
            tmp_path,
            segment_records=segment_records,
            snapshot_every=10**9,
            auto_compact=auto,
        )
        live = _build(state=state)
        events = _events(seed=17, count=count)
        # Heartbeats mark chunk boundaries, as the replay driver does.
        hb = [Heartbeat(events[i].time) for i in range(50, len(events), 50)]
        stream = sorted(events + hb, key=lambda e: e.time)
        for i in range(0, len(stream), 64):
            live.ingest_batch(stream[i : i + 64])
        return state, live

    def test_compact_deletes_only_covered_segments(self, tmp_path):
        state, live = self._fill(tmp_path)
        state.write_snapshot(live.state_dict())
        snap_seq = state.journal.last_seq
        # More records after the snapshot.
        live.ingest_batch([Heartbeat(1e7), Heartbeat(1e7 + 1)])
        before = state.journal.segments()
        removed = state.compact(keep_segments=1)
        assert removed > 0
        remaining = state.journal.segments()
        assert len(remaining) == len(before) - removed
        # Every record the snapshot does NOT cover is still present.
        seqs = [r.seq for r in state.journal.iter_records(after=snap_seq)]
        assert seqs == list(range(snap_seq + 1, state.journal.last_seq + 1))
        state.close()

    def test_keep_segments_margin_honored(self, tmp_path):
        state, live = self._fill(tmp_path)
        state.write_snapshot(live.state_dict())
        total = len(state.journal.segments())
        margin = total - 2
        removed = state.compact(keep_segments=margin)
        assert len(state.journal.segments()) >= margin
        assert removed <= 2
        state.close()

    def test_no_compaction_without_snapshot(self, tmp_path):
        state = ServiceState(
            tmp_path, segment_records=8, snapshot_every=10**9, auto_compact=False
        )
        for i in range(100):
            state.record_event(encode_event(Heartbeat(float(i))))
        assert len(state.journal.segments()) > 2
        assert state.compact() == 0
        assert len(state.journal.segments()) > 2
        state.close()

    def test_no_compaction_when_snapshots_past_last_heartbeat(self, tmp_path):
        """Every retained snapshot lies past the heartbeat boundary a
        resume would rewind to — compaction must refuse, because the
        rewind would delete those snapshots and need the whole journal."""
        state = ServiceState(
            tmp_path, segment_records=4, snapshot_every=10**9, auto_compact=False
        )
        state.record_event(encode_event(Heartbeat(1.0)))  # boundary: seq 1
        for i in range(30):
            state.record_event(
                encode_event(JobSubmitted(2.0 + i, tenant="a", job_id=f"j{i}"))
            )
        state.write_snapshot({"x": 1})  # seq 31 > heartbeat seq 1
        assert state.compact(keep_segments=1) == 0
        state.close()

    def test_resume_falls_back_past_corrupt_snapshot_after_compaction(
        self, tmp_path
    ):
        state, live = self._fill(tmp_path, count=600)
        state.write_snapshot(live.state_dict())
        live.ingest_batch([Heartbeat(9e6)])
        state.write_snapshot(live.state_dict())
        assert state.compact(keep_segments=1) > 0
        # The newest snapshot rots; recovery must fall back to the
        # older retained one, whose journal tail compaction preserved.
        newest = state.snapshots.paths()[-1]
        newest.write_text("garbage\n")
        state.close()
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        assert resumed.events_processed == live.events_processed
        assert stats_gap(resumed.window) < 1e-9

    def test_resume_refuses_compacted_journal_without_snapshot(self, tmp_path):
        state, live = self._fill(tmp_path)
        state.write_snapshot(live.state_dict())
        live.ingest_batch([Heartbeat(9e6)])
        assert state.compact(keep_segments=1) > 0
        for path in state.snapshots.paths():
            path.unlink()
        state.close()
        with pytest.raises(JournalError, match="compacted"):
            TempoService.resume(
                build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
                tmp_path,
                _service_config(),
            )

    def test_auto_compaction_on_snapshot_write(self, tmp_path):
        state, live = self._fill(tmp_path, auto=True)
        before = len(state.journal.segments())
        state.write_snapshot(live.state_dict())
        live.ingest_batch([Heartbeat(8e6)])
        state.write_snapshot(live.state_dict())  # auto-compacts
        assert len(state.journal.segments()) < before
        state.close()

    def test_newest_segment_never_deleted(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=4)
        journal.append_events([Heartbeat(float(i)) for i in range(4)])
        journal.close()
        assert len(journal.segments()) == 1
        assert journal.compact(10**9, keep_segments=1) == 0

    def test_cli_compact(self, tmp_path):
        import io

        from repro.cli import main

        state, live = self._fill(tmp_path / "state")
        state.write_snapshot(live.state_dict())
        live.ingest_batch([Heartbeat(9e6)])
        state.close()
        out = io.StringIO()
        code = main(
            ["compact", "--state-dir", str(tmp_path / "state"), "--keep-segments", "1"],
            out=out,
        )
        assert code == 0
        assert "removed" in out.getvalue()

    def test_cli_compact_refuses_missing_dir(self, tmp_path):
        import io

        from repro.cli import main

        missing = tmp_path / "nope"
        with pytest.raises(SystemExit, match="journal"):
            main(["compact", "--state-dir", str(missing)], out=io.StringIO())
        assert not missing.exists()

    def test_durable_replay_compacts_and_resumes(self, tmp_path):
        """End-to-end: replay with tight segments, compaction happens,
        kill, resume continues from the boundary."""
        import io

        from repro.cli import main
        from repro.service.replay import ScenarioReplayer

        state_dir = tmp_path / "state"
        state = ServiceState(
            state_dir, segment_records=128, snapshot_every=500
        )
        scenario = make_scenario("steady", scale=1.0, horizon=1800.0)
        config = ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3)
        state.write_meta(
            {
                "scenario": "steady",
                "scale": 1.0,
                "horizon": 1800.0,
                "seed": 1,
                "window": 600.0,
                "interval": 300.0,
                "drift": 0.02,
                "speedup": 0.0,
                "transport": "direct",
                "revert_windows": 1,
                "continuous": True,
            }
        )
        service = build_service(scenario, config, seed=1, state=state)
        ScenarioReplayer(scenario, service, seed=1).run(900.0)  # dies at 900s
        state.close()
        first_seq = EventJournal._first_seq_of(state.journal.segments()[0])
        assert first_seq > 1  # auto-compaction reclaimed the prefix
        out = io.StringIO()
        assert main(["resume", "--state-dir", str(state_dir)], out=out) == 0
        assert "continuing scenario=steady from t=900s" in out.getvalue()


class TestNodeRecovered:
    def test_codec_roundtrip(self):
        event = NodeRecovered(5.0, pool="map", containers=3)
        assert decode_event(encode_event(event)) == event

    def test_recovery_restores_effective_cluster(self):
        service = _build()
        base = service.controller.cluster.as_dict()
        service.process(NodeLost(1.0, pool="map", containers=4))
        shrunk = service.effective_cluster().as_dict()
        assert shrunk["map"] == base["map"] - 4
        service.process(NodeRecovered(2.0, pool="map", containers=3))
        assert service.effective_cluster().as_dict()["map"] == base["map"] - 1
        assert service.nodes_recovered == 3
        service.process(NodeRecovered(3.0, pool="map", containers=5))
        assert service.effective_cluster().as_dict() == base
        assert service.lost_capacity == {}

    def test_recovery_clamped_to_observed_loss(self):
        service = _build()
        base = service.controller.cluster.as_dict()
        service.process(NodeRecovered(1.0, pool="map", containers=7))
        assert service.effective_cluster().as_dict() == base
        assert service.nodes_recovered == 0
        assert not service._force  # nothing actually changed

    def test_recovery_forces_retune(self):
        service = _build()
        service.process(NodeLost(1.0, pool="map", containers=2))
        service._force = False  # clear the loss-forced flag
        service.process(NodeRecovered(2.0, pool="map", containers=2))
        assert service._force

    def test_recovery_survives_resume(self, tmp_path):
        state = ServiceState(tmp_path, snapshot_every=10**9)
        live = _build(state=state)
        for event in _events(seed=18, count=120):
            live.process(event)
        live.process(NodeLost(1e6, pool="map", containers=5))
        live.process(NodeRecovered(1e6 + 1, pool="map", containers=2))
        state.close()
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        assert resumed.lost_capacity == live.lost_capacity == {"map": 3}
        assert resumed.nodes_recovered == live.nodes_recovered == 2

    def test_cluster_grown(self):
        cluster = ClusterSpec({"map": 10, "reduce": 6})
        grown = cluster.grown({"map": 2, "unknown": 5})
        assert grown.as_dict() == {"map": 12, "reduce": 6}
        with pytest.raises(ValueError):
            cluster.grown({"map": -1})

    def test_session_restore_capacity(self):
        from repro.sim.simulator import ClusterSimulator
        from repro.workload.model import Workload

        scenario = make_scenario("steady", scale=1.0, horizon=600.0)
        workload = scenario.model.generate(0, 600.0)
        sim = ClusterSimulator(scenario.cluster, noise=scenario.noise, seed=0)
        session = sim.session(workload, scenario.initial_config, seed=0)
        lost = session.lose_capacity("map", 4)
        assert lost == 4
        assert session.restore_capacity("map", 2) == 2
        assert session.capacity_lost["map"] == 2
        # Clamped: only what is still lost can come back.
        assert session.restore_capacity("map", 10) == 2
        assert session.capacity_lost["map"] == 0
        assert session.restore_capacity("unknown", 3) == 0
        with pytest.raises(ValueError):
            session.restore_capacity("map", -1)
        assert isinstance(workload, Workload)

    def test_failure_recovery_scenario_replays(self):
        from repro.service.replay import ScenarioReplayer

        scenario = make_scenario("failure-recovery", scale=1.0, horizon=5400.0)
        assert scenario.node_loss and scenario.node_recovery
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=2,
        )
        summary = ScenarioReplayer(scenario, service, seed=2).run()
        assert summary.max_stats_gap < 1e-9
        # Losses happened and recoveries brought capacity back.
        assert service.nodes_lost > 0
        assert service.nodes_recovered > 0
        assert service.nodes_recovered <= service.nodes_lost
