"""Tests for the what-if evaluation plane (:mod:`repro.whatif.evalpool`).

The load-bearing property: the evaluation *backend* must be invisible.
Serial, fork-pooled, and memo-warmed evaluation of the same candidate
pool must return identical objective vectors (to 1e-12 — in practice
bit-identical, since the predictor is deterministic and the memo stores
the arrays it computed), and nothing the plane does — deduplication,
cross-retune cache hits, pooling — may inflate the simulation counters
PALD and the journal report.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pald import PALD
from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace
from repro.slo.objectives import SLOSet
from repro.slo.templates import deadline_slo, response_time_slo
from repro.whatif import CandidateEvaluator, WhatIfModel, workload_signature
from repro.whatif.model import _config_key
from repro.workload.model import Workload, single_stage_job


def _slos():
    return SLOSet(
        [
            deadline_slo("A", max_violation_fraction=0.1, slack=0.0),
            response_time_slo("B"),
        ]
    )


def _workloads(replicas=2, seed=0):
    """``replicas`` small deterministic workload replicas."""
    rng = np.random.default_rng(seed)
    out = []
    for r in range(replicas):
        out.append(
            Workload(
                [
                    single_stage_job(
                        "A",
                        0.0,
                        [float(rng.uniform(8.0, 14.0))] * 2,
                        job_id=f"a{r}",
                        deadline=30.0,
                    ),
                    single_stage_job(
                        "B",
                        float(rng.uniform(0.0, 5.0)),
                        [float(rng.uniform(15.0, 22.0))] * 2,
                        job_id=f"b{r}",
                    ),
                ]
            )
        )
    return out


def _problem(replicas=2, seed=0):
    """(model, space) over a tiny two-tenant cluster."""
    cluster = ClusterSpec({"slots": 4})
    model = WhatIfModel(cluster, _slos(), _workloads(replicas, seed))
    space = ConfigSpace(cluster, ["A", "B"])
    return model, space


def _fresh_model_like(model):
    return WhatIfModel(model.cluster, model.slos, model.workloads)


class TestParity:
    """Serial == pooled == memo-warm, over random pools and replicas."""

    def test_pooled_matches_serial_bitwise(self):
        model, space = _problem()
        rng = np.random.default_rng(3)
        batch = [rng.uniform(size=space.dim) for _ in range(6)]
        batch.append(batch[2].copy())  # in-batch duplicate

        serial = CandidateEvaluator(workers=0).bind(model, space)
        expected = serial.evaluate_batch(batch)

        pooled = CandidateEvaluator(workers=2).bind(
            _fresh_model_like(model), space
        )
        got = pooled.evaluate_batch(batch)
        assert got.sim_runs == expected.sim_runs == 6
        for want, have in zip(expected.vectors, got.vectors):
            assert np.array_equal(want, have)

    def test_memo_warm_matches_serial_bitwise(self):
        model, space = _problem()
        rng = np.random.default_rng(4)
        batch = [rng.uniform(size=space.dim) for _ in range(5)]
        evaluator = CandidateEvaluator(workers=0)
        expected = evaluator.bind(model, space).evaluate_batch(batch)

        warm = evaluator.bind(_fresh_model_like(model), space)
        got = warm.evaluate_batch(batch)
        assert got.sim_runs == 0  # everything served from the memo
        for want, have in zip(expected.vectors, got.vectors):
            assert np.array_equal(want, have)

    @settings(max_examples=15, deadline=None)
    @given(
        pool=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4
            ),
            min_size=1,
            max_size=5,
        ),
        replicas=st.integers(min_value=1, max_value=3),
        workers=st.sampled_from([0, 2]),
    )
    def test_backend_invariance_property(self, pool, replicas, workers):
        """Random pools: every backend within 1e-12 of fresh serial."""
        model, space = _problem(replicas=replicas)
        batch = [np.asarray(x, dtype=float)[: space.dim] for x in pool]
        batch = [
            np.pad(x, (0, space.dim - len(x))) if len(x) < space.dim else x
            for x in batch
        ]
        reference = (
            CandidateEvaluator(workers=0).bind(model, space).evaluate_batch(batch)
        )

        evaluator = CandidateEvaluator(workers=workers)
        cold = evaluator.bind(_fresh_model_like(model), space).evaluate_batch(batch)
        warm = evaluator.bind(_fresh_model_like(model), space).evaluate_batch(batch)
        assert warm.sim_runs == 0
        for want, have_cold, have_warm in zip(
            reference.vectors, cold.vectors, warm.vectors
        ):
            np.testing.assert_allclose(have_cold, want, atol=1e-12, rtol=0)
            np.testing.assert_allclose(have_warm, want, atol=1e-12, rtol=0)

    def test_pald_trajectory_identical_across_backends(self):
        """Full PALD runs agree step-for-step on every backend."""

        def run(workers, warm_owner=None):
            model, space = _problem()
            owner = warm_owner or CandidateEvaluator(workers=workers)
            bound = owner.bind(model, space)
            opt = PALD(
                space, bound, model.slos.thresholds(), seed=11, candidates=4
            )
            result = opt.optimize(np.full(space.dim, 0.5), iterations=3)
            return result, owner

        serial, owner = run(0)
        pooled, _ = run(2)
        warmed, _ = run(0, warm_owner=owner)  # memo filled by the serial run
        np.testing.assert_array_equal(serial.trajectory(), pooled.trajectory())
        np.testing.assert_array_equal(serial.trajectory(), warmed.trajectory())
        np.testing.assert_array_equal(serial.x, pooled.x)
        np.testing.assert_array_equal(serial.x, warmed.x)
        # The memo-warmed rerun resimulated nothing, yet reported the
        # same trajectory — and its evaluation count says so honestly.
        assert warmed.total_evaluations == 0
        assert serial.total_evaluations == pooled.total_evaluations > 0


class TestCounting:
    """Dedup and cache hits must never inflate simulation counters."""

    def test_in_batch_duplicates_deduped(self):
        model, space = _problem()
        x = np.full(space.dim, 0.25)
        batch = [x, x.copy(), np.full(space.dim, 0.75), x.copy()]
        result = CandidateEvaluator(workers=0).bind(model, space).evaluate_batch(batch)
        assert result.sim_runs == 2
        assert result.hits == 2
        assert model.evaluations == 2  # the sim-run counter agrees
        assert np.array_equal(result.vectors[0], result.vectors[1])
        assert np.array_equal(result.vectors[0], result.vectors[3])

    def test_pald_total_evaluations_counts_sim_runs(self):
        model, space = _problem()
        evaluator = CandidateEvaluator(workers=0)
        bound = evaluator.bind(model, space)
        opt = PALD(space, bound, model.slos.thresholds(), seed=2, candidates=4)
        result = opt.optimize(np.full(space.dim, 0.5), iterations=4)
        # Pool entries >= simulations (revisited incumbents dedupe), and
        # the reported count is exactly what the model executed.
        assert result.total_evaluations == model.evaluations
        assert evaluator.sim_runs == model.evaluations

    def test_evaluate_singletons_share_model_cache(self):
        model, space = _problem()
        bound = CandidateEvaluator(workers=0).bind(model, space)
        x = np.full(space.dim, 0.4)
        first = bound(x)
        again = bound(x)
        assert np.array_equal(first, again)
        assert model.evaluations == 1


class TestMemo:
    """Cross-retune LRU: bounded, scoped by workload signature."""

    def test_lru_evicts_oldest(self):
        model, space = _problem()
        evaluator = CandidateEvaluator(workers=0, cache_size=2)
        bound = evaluator.bind(model, space)
        configs = [np.full(space.dim, v) for v in (0.1, 0.5, 0.9)]
        for x in configs:
            bound.evaluate_batch([x])
        assert len(evaluator) == 2
        oldest = _config_key(space.decode(configs[0]))
        assert evaluator.memo_get(bound.signature, oldest) is None
        newest = _config_key(space.decode(configs[2]))
        assert evaluator.memo_get(bound.signature, newest) is not None

    def test_cache_size_zero_disables_memo_not_correctness(self):
        model, space = _problem()
        evaluator = CandidateEvaluator(workers=0, cache_size=0)
        x = np.full(space.dim, 0.3)
        first = evaluator.bind(model, space).evaluate_batch([x])
        second = evaluator.bind(_fresh_model_like(model), space).evaluate_batch([x])
        assert len(evaluator) == 0
        assert second.sim_runs == 1  # no memo to hit — re-simulated
        assert np.array_equal(first.vectors[0], second.vectors[0])

    def test_signature_scopes_memo_to_workload_window(self):
        model_a, space = _problem(seed=0)
        model_b, _ = _problem(seed=99)  # different window, same shape
        assert workload_signature(model_a) != workload_signature(model_b)
        evaluator = CandidateEvaluator(workers=0)
        x = np.full(space.dim, 0.5)
        evaluator.bind(model_a, space).evaluate_batch([x])
        crossed = evaluator.bind(model_b, space).evaluate_batch([x])
        assert crossed.sim_runs == 1  # no leakage across windows

    def test_memo_hits_do_not_inflate_model_evaluations(self):
        model, space = _problem()
        evaluator = CandidateEvaluator(workers=0)
        x = np.full(space.dim, 0.6)
        evaluator.bind(model, space).evaluate_batch([x])
        fresh = _fresh_model_like(model)
        evaluator.bind(fresh, space).evaluate_batch([x, x.copy()])
        assert fresh.evaluations == 0
        assert evaluator.hits >= 2


class TestServiceIntegration:
    """End-to-end: the pooled plane through the CLI/service surface."""

    def _replay(self, state_dir, workers):
        import io

        from repro.cli import main

        code = main(
            [
                "replay",
                "--scenario", "flash-crowd",
                "--horizon", "0.5",
                "--seed", "7",
                "--whatif-workers", str(workers),
                "--state-dir", str(state_dir),
            ],
            out=io.StringIO(),
        )
        assert code == 0

    def _journal_records(self, state_dir):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["dump-journal", "--state-dir", str(state_dir)], out=out) == 0
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_workers_flag_does_not_change_journal(self, tmp_path):
        """``--whatif-workers`` is a performance knob, not a behavior one.

        Every journaled record except wall-clock artifacts — the
        ``latency`` field (phase timing) and ``metrics`` records
        (histograms of those timings) — must be byte-identical between
        a serial and a pooled run of the same scenario and seed.
        """

        def comparable(record):
            if record.get("kind") == "metrics":
                return None
            data = dict(record.get("data", {}))
            data.pop("latency", None)
            if isinstance(data.get("decision"), dict):
                data = {**data, "decision": dict(data["decision"])}
                data["decision"].pop("latency", None)
            return {**record, "data": data}

        serial_dir, pooled_dir = tmp_path / "serial", tmp_path / "pooled"
        self._replay(serial_dir, workers=0)
        self._replay(pooled_dir, workers=2)
        serial = [r for r in map(comparable, self._journal_records(serial_dir)) if r]
        pooled = [r for r in map(comparable, self._journal_records(pooled_dir)) if r]
        assert serial == pooled
        assert len(serial) > 50  # the run actually journaled a stream

    def test_meta_persists_whatif_settings(self, tmp_path):
        self._replay(tmp_path / "s", workers=2)
        meta = json.loads((tmp_path / "s" / "meta.json").read_text())
        assert meta["whatif_workers"] == 2
        assert meta["whatif_cache_size"] == 256

    def test_status_renders_retune_phase_table(self, tmp_path):
        import io

        from repro.cli import main

        self._replay(tmp_path / "s", workers=2)
        out = io.StringIO()
        assert main(["status", "--state-dir", str(tmp_path / "s")], out=out) == 0
        text = out.getvalue()
        assert "retune phases" in text
        for phase in ("drain", "guard", "merge", "whatif"):
            assert phase in text
        prom = io.StringIO()
        assert (
            main(
                ["status", "--state-dir", str(tmp_path / "s"), "--format", "prom"],
                out=prom,
            )
            == 0
        )
        assert any(
            line.startswith("tempo_retune_phase_seconds_bucket{")
            and 'phase="whatif"' in line
            for line in prom.getvalue().splitlines()
        )


_KILL_CHILD = textwrap.dedent(
    """
    import io, sys
    from repro.cli import main

    main(
        [
            "replay",
            "--scenario", "flash-crowd",
            "--horizon", "48",
            "--seed", "5",
            "--whatif-workers", "2",
            "--state-dir", sys.argv[1],
        ],
        out=io.StringIO(),
    )
    """
)


class TestKillDuringPooledWhatif:
    def test_kill9_mid_run_leaves_resumable_state(self, tmp_path):
        """SIGKILL with the fork pool in flight: ticks stay atomic.

        The pooled whatif phase commits nothing durable until the tick's
        decision record is journaled, so a kill -9 at an arbitrary point
        of a pooled run must leave a journal that parses cleanly and a
        state directory ``TempoService.resume`` accepts.
        """
        state_dir = tmp_path / "state"
        env = {
            **os.environ,
            "PYTHONPATH": str(Path(__file__).parent.parent / "src"),
        }
        child = subprocess.Popen(
            [sys.executable, "-c", _KILL_CHILD, str(state_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        try:
            journal_dir = state_dir / "journal"
            deadline = time.monotonic() + 60.0
            # Wait until the run is past initialization and journaling
            # retune ticks, so the kill lands mid-stream.
            while time.monotonic() < deadline:
                segments = sorted(journal_dir.glob("*")) if journal_dir.exists() else []
                if segments and sum(p.stat().st_size for p in segments) > 4096:
                    break
                if child.poll() is not None:
                    pytest.fail(
                        "replay child exited before kill: "
                        + child.stderr.read().decode()
                    )
                time.sleep(0.05)
            else:
                pytest.fail("replay child never started journaling")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=10)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)

        from repro.service.daemon import ServiceConfig, TempoService
        from repro.service.replay import build_controller, make_scenario

        meta = json.loads((state_dir / "meta.json").read_text())
        assert meta["whatif_workers"] == 2
        scenario = make_scenario(
            meta["scenario"], scale=meta["scale"], horizon=meta["horizon"]
        )
        resumed = TempoService.resume(
            build_controller(
                scenario,
                seed=meta["seed"],
                whatif_workers=meta["whatif_workers"],
                whatif_cache_size=meta["whatif_cache_size"],
            ),
            state_dir,
            ServiceConfig(),
        )
        # Every restored tick is complete: each retuned decision has its
        # applied config in the history, and the stream folded cleanly.
        retuned = [d for d in resumed.decisions if d.retuned]
        assert resumed.events_processed > 0
        assert len(resumed.config_history) >= len(retuned) - 1
        assert resumed.controller.evalplane.workers == 2
