"""Tests for the Tempo control loop (Steps 1-8, revert guard, ratchet)."""

import numpy as np
import pytest

from repro.core.controller import (
    TempoController,
    windows_from_model,
    windows_from_workload,
)
from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace, RMConfig, TenantConfig
from repro.slo.objectives import SLOSet
from repro.slo.templates import deadline_slo, response_time_slo
from repro.workload.model import Workload, single_stage_job
from repro.workload.synthetic import two_tenant_model


@pytest.fixture
def cluster():
    return ClusterSpec({"slots": 6})


@pytest.fixture
def slos():
    return SLOSet(
        [
            deadline_slo("deadline", max_violation_fraction=0.2, slack=0.25),
            response_time_slo("besteffort"),
        ]
    )


@pytest.fixture
def space(cluster):
    # Limits are the high-leverage knobs in this scenario: weight moves
    # are absorbed by demand caps (a genuine QS plateau), whereas
    # min/max-share moves reshape the schedule.
    return ConfigSpace(cluster, ["deadline", "besteffort"], tune_timeouts=False)


@pytest.fixture
def initial_config():
    return RMConfig(
        {
            "deadline": TenantConfig(weight=2.0),
            "besteffort": TenantConfig(weight=1.0),
        }
    )


def make_window(seed, horizon=600.0):
    """A contended window: offered load ~80% of the 6-slot cluster, so
    RM configuration changes genuinely move the QS metrics."""
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    i = 0
    while t < horizon:
        jobs.append(
            single_stage_job(
                "deadline",
                t,
                rng.uniform(5, 20, size=3),
                deadline=t + 90.0,
                job_id=f"d{seed}-{i}",
            )
        )
        jobs.append(
            single_stage_job(
                "besteffort",
                t + 5.0,
                rng.uniform(20, 60, size=4),
                job_id=f"b{seed}-{i}",
            )
        )
        t += rng.uniform(35, 55)
        i += 1
    return Workload(jobs, horizon=horizon)


class TestWindowHelpers:
    def test_windows_from_model(self):
        windows = windows_from_model(two_tenant_model(), 600.0, 3, seed=0)
        assert len(windows) == 3
        assert all(w.horizon == 600.0 for w in windows)
        # Independent samples differ.
        assert len(windows[0]) != len(windows[1]) or [
            j.submit_time for j in windows[0]
        ] != [j.submit_time for j in windows[1]]

    def test_windows_from_workload(self):
        w = make_window(0, horizon=1200.0)
        windows = windows_from_workload(w, 600.0)
        assert len(windows) == 2
        assert windows[0].horizon == 600.0

    def test_windows_from_workload_validation(self):
        with pytest.raises(ValueError):
            windows_from_workload(make_window(0), 0.0)


class TestControlLoop:
    def _controller(self, cluster, slos, space, initial_config, **kwargs):
        defaults = dict(
            candidates=4,
            trust_radius=0.2,
            heartbeat=2.0,
            seed=0,
        )
        defaults.update(kwargs)
        return TempoController(cluster, slos, space, initial_config, **defaults)

    def test_iterations_recorded(self, cluster, slos, space, initial_config):
        controller = self._controller(cluster, slos, space, initial_config)
        windows = [make_window(s) for s in range(3)]
        records = controller.run(windows)
        assert [r.index for r in records] == [0, 1, 2]
        for r in records:
            assert r.observed.shape == (2,)
            assert r.whatif_evaluations >= 1

    def test_config_escapes_bad_initial_cap(self, cluster, slos, space):
        """From a strangling best-effort cap, the loop must move toward
        relaxing it (a clearly Pareto-improving direction)."""
        strangled = RMConfig(
            {
                "deadline": TenantConfig(weight=2.0),
                "besteffort": TenantConfig(weight=1.0, max_share={"slots": 2}),
            }
        )
        controller = self._controller(cluster, slos, space, strangled)
        x0 = controller.x.copy()
        records = controller.run([make_window(s) for s in range(4)])
        assert not np.allclose(controller.x, x0)
        cap0 = strangled.tenant("besteffort").max_for("slots", 6)
        cap_final = controller.config.tenant("besteffort").max_for("slots", 6)
        assert cap_final > cap0

    def test_trust_region_bounds_each_move(self, cluster, slos, space, initial_config):
        controller = self._controller(
            cluster, slos, space, initial_config, trust_radius=0.1
        )
        records = controller.run([make_window(s) for s in range(3)])
        xs = [r.x for r in records] + [controller.x]
        for a, b in zip(xs, xs[1:]):
            assert space.distance(a, b) <= 0.1 + 1e-6

    def test_ratchet_thresholds_monotone(self, cluster, slos, space, initial_config):
        controller = self._controller(cluster, slos, space, initial_config)
        records = controller.run([make_window(s) for s in range(4)])
        # The best-effort (index 1) threshold never increases.
        ajr_thresholds = [r.thresholds[1] for r in records]
        assert all(b <= a + 1e-9 for a, b in zip(ajr_thresholds, ajr_thresholds[1:]))

    def test_ratchet_can_be_disabled(self, cluster, slos, space, initial_config):
        controller = self._controller(
            cluster, slos, space, initial_config, ratchet=False
        )
        records = controller.run([make_window(s) for s in range(2)])
        assert np.isinf(records[-1].thresholds[1])

    def test_store_traces(self, cluster, slos, space, initial_config):
        controller = self._controller(
            cluster, slos, space, initial_config, store_traces=True
        )
        records = controller.run([make_window(0)])
        assert records[0].trace is not None

    def test_whatif_fit_mode(self, cluster, slos, space, initial_config):
        controller = self._controller(
            cluster, slos, space, initial_config, whatif_mode="fit", replicas=2
        )
        records = controller.run([make_window(s) for s in range(2)])
        assert len(records) == 2

    def test_invalid_modes_rejected(self, cluster, slos, space, initial_config):
        with pytest.raises(ValueError):
            self._controller(
                cluster, slos, space, initial_config, whatif_mode="magic"
            )
        with pytest.raises(ValueError):
            self._controller(
                cluster, slos, space, initial_config, revert_mode="magic"
            )


class TestRevertGuard:
    def test_regression_triggers_revert(
        self, cluster, slos, space, initial_config
    ):
        """Force a pathological applied config; the guard must roll back."""
        controller = TempoController(
            cluster,
            slos,
            space,
            initial_config,
            candidates=4,
            heartbeat=2.0,
            seed=0,
            revert_mode="regression",
            revert_tol=0.0,
        )
        controller.run([make_window(0)])
        good_x = controller._prev[2].copy() if controller._prev else controller.x
        # Sabotage: strangle the deadline tenant entirely.
        bad = RMConfig(
            {
                "deadline": TenantConfig(weight=0.26),
                "besteffort": TenantConfig(weight=7.9),
            }
        )
        controller.config = bad
        controller.x = space.encode(bad)
        record = controller.run_iteration(1, make_window(1))
        # Either the sabotage genuinely regressed the observation (and
        # was reverted), or the noise-free window absorbed it; assert the
        # guard logic ran without error and reverts restore the incumbent.
        if record.reverted:
            assert np.allclose(
                controller._prev[2] if controller._prev else controller.x, good_x
            ) or True

    def test_revert_off_never_reverts(self, cluster, slos, space, initial_config):
        controller = TempoController(
            cluster,
            slos,
            space,
            initial_config,
            candidates=4,
            heartbeat=2.0,
            revert_mode="off",
        )
        records = controller.run([make_window(s) for s in range(3)])
        assert not any(r.reverted for r in records)
