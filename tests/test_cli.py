"""Tests for the operational CLI."""

import io
import json

import pytest

from repro.cli import build_parser, default_slos, load_slos, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == "two-tenant"
        assert args.engine == "predictor"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "nope"])


class TestSloSpecs:
    def test_load_slos(self, tmp_path):
        spec = [
            {
                "queue": "deadline",
                "slo": "deadline",
                "max_violation_fraction": 0.1,
                "slack": 0.25,
            },
            {"queue": "besteffort", "slo": "response_time"},
        ]
        path = tmp_path / "slos.json"
        path.write_text(json.dumps(spec))
        slos = load_slos(str(path))
        assert len(slos) == 2
        assert slos[0].threshold == 0.1

    def test_load_slos_rejects_non_array(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text('{"queue": "a"}')
        with pytest.raises(ValueError, match="JSON array"):
            load_slos(str(path))

    def test_default_slos_cover_scenarios(self):
        assert len(default_slos("two-tenant")) == 2
        assert len(default_slos("company-abc")) == 6


class TestSimulateCommand:
    def test_predictor_run(self, tmp_path):
        out = io.StringIO()
        save = tmp_path / "trace.jsonl"
        code = main(
            [
                "simulate",
                "--horizon", "0.3",
                "--seed", "1",
                "--save", str(save),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "deadline" in text and "besteffort" in text
        assert save.exists()

    def test_cluster_engine_with_noise(self):
        out = io.StringIO()
        code = main(
            [
                "simulate",
                "--engine", "cluster",
                "--noise", "production",
                "--horizon", "0.2",
            ],
            out=out,
        )
        assert code == 0
        assert "tenant" in out.getvalue()


class TestReportCommand:
    def test_roundtrip_report(self, tmp_path):
        out = io.StringIO()
        save = tmp_path / "trace.jsonl"
        main(["simulate", "--horizon", "0.3", "--save", str(save)], out=out)

        spec = tmp_path / "slos.json"
        spec.write_text(
            json.dumps([{"queue": "besteffort", "slo": "response_time", "threshold": 1.0}])
        )
        out = io.StringIO()
        code = main(["report", str(save), "--slos", str(spec)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "SLO QS values" in text
        assert "VIOLATED" in text  # 1s AJR threshold is surely violated


class TestGuardsFlag:
    def test_replay_with_predictive_guards_prints_verdicts(self):
        out = io.StringIO()
        code = main(
            [
                "replay",
                "--scenario", "steady",
                "--horizon", "1",
                "--guards", "predictive",
            ],
            out=out,
        )
        assert code == 0
        assert "verdicts=" in out.getvalue()

    def test_legacy_guards_print_no_verdict_line(self):
        out = io.StringIO()
        code = main(
            ["replay", "--scenario", "steady", "--horizon", "1"], out=out
        )
        assert code == 0
        assert "verdicts=" not in out.getvalue()

    def test_unknown_guard_rejected(self):
        with pytest.raises((SystemExit, ValueError)):
            main(
                [
                    "replay",
                    "--scenario", "steady",
                    "--horizon", "1",
                    "--guards", "psychic",
                ],
                out=io.StringIO(),
            )

    def test_bad_freeze_after_rejected(self):
        with pytest.raises(SystemExit, match="freeze-after"):
            main(
                [
                    "replay",
                    "--scenario", "steady",
                    "--horizon", "1",
                    "--freeze-after", "0",
                ],
                out=io.StringIO(),
            )


class TestConvertCommand:
    def test_convert_then_trace_replay(self, tmp_path):
        log = tmp_path / "callbacks.jsonl"
        out = io.StringIO()
        main(
            [
                "simulate",
                "--engine", "cluster",
                "--horizon", "0.5",
                "--save", str(log),
            ],
            out=out,
        )
        events = tmp_path / "events.jsonl"
        out = io.StringIO()
        code = main(
            ["convert", str(log), str(events), "--heartbeat", "10"], out=out
        )
        assert code == 0
        assert "converted" in out.getvalue()
        assert events.exists()
        out = io.StringIO()
        code = main(
            [
                "replay",
                "--scenario", "steady",
                "--trace", str(events),
                "--guards", "predictive",
            ],
            out=out,
        )
        assert code == 0
        assert "events=" in out.getvalue()

    def test_heartbeat_zero_emits_raw_callbacks_only(self, tmp_path):
        from repro.service.events import Heartbeat
        from repro.service.replay import load_trace_events

        log = tmp_path / "callbacks.jsonl"
        main(
            ["simulate", "--horizon", "0.3", "--save", str(log)],
            out=io.StringIO(),
        )
        events = tmp_path / "events.jsonl"
        code = main(
            ["convert", str(log), str(events), "--heartbeat", "0"],
            out=io.StringIO(),
        )
        assert code == 0
        assert not any(
            isinstance(e, Heartbeat) for e in load_trace_events(events)
        )

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(
                ["convert", str(tmp_path / "nope.jsonl"), str(tmp_path / "o")],
                out=io.StringIO(),
            )


class TestTuneCommand:
    def test_small_tune_run(self):
        out = io.StringIO()
        code = main(
            [
                "tune",
                "--iterations", "2",
                "--window", "10",
                "--candidates", "4",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "final configuration" in text
        assert "DL[deadline]" in text
