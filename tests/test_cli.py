"""Tests for the operational CLI."""

import io
import json

import pytest

from repro.cli import build_parser, default_slos, load_slos, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == "two-tenant"
        assert args.engine == "predictor"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "nope"])


class TestSloSpecs:
    def test_load_slos(self, tmp_path):
        spec = [
            {
                "queue": "deadline",
                "slo": "deadline",
                "max_violation_fraction": 0.1,
                "slack": 0.25,
            },
            {"queue": "besteffort", "slo": "response_time"},
        ]
        path = tmp_path / "slos.json"
        path.write_text(json.dumps(spec))
        slos = load_slos(str(path))
        assert len(slos) == 2
        assert slos[0].threshold == 0.1

    def test_load_slos_rejects_non_array(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text('{"queue": "a"}')
        with pytest.raises(ValueError, match="JSON array"):
            load_slos(str(path))

    def test_default_slos_cover_scenarios(self):
        assert len(default_slos("two-tenant")) == 2
        assert len(default_slos("company-abc")) == 6


class TestSimulateCommand:
    def test_predictor_run(self, tmp_path):
        out = io.StringIO()
        save = tmp_path / "trace.jsonl"
        code = main(
            [
                "simulate",
                "--horizon", "0.3",
                "--seed", "1",
                "--save", str(save),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "deadline" in text and "besteffort" in text
        assert save.exists()

    def test_cluster_engine_with_noise(self):
        out = io.StringIO()
        code = main(
            [
                "simulate",
                "--engine", "cluster",
                "--noise", "production",
                "--horizon", "0.2",
            ],
            out=out,
        )
        assert code == 0
        assert "tenant" in out.getvalue()


class TestReportCommand:
    def test_roundtrip_report(self, tmp_path):
        out = io.StringIO()
        save = tmp_path / "trace.jsonl"
        main(["simulate", "--horizon", "0.3", "--save", str(save)], out=out)

        spec = tmp_path / "slos.json"
        spec.write_text(
            json.dumps([{"queue": "besteffort", "slo": "response_time", "threshold": 1.0}])
        )
        out = io.StringIO()
        code = main(["report", str(save), "--slos", str(spec)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "SLO QS values" in text
        assert "VIOLATED" in text  # 1s AJR threshold is surely violated


class TestGuardsFlag:
    def test_replay_with_predictive_guards_prints_verdicts(self):
        out = io.StringIO()
        code = main(
            [
                "replay",
                "--scenario", "steady",
                "--horizon", "1",
                "--guards", "predictive",
            ],
            out=out,
        )
        assert code == 0
        assert "verdicts=" in out.getvalue()

    def test_legacy_guards_print_no_verdict_line(self):
        out = io.StringIO()
        code = main(
            ["replay", "--scenario", "steady", "--horizon", "1"], out=out
        )
        assert code == 0
        assert "verdicts=" not in out.getvalue()

    def test_unknown_guard_rejected(self):
        with pytest.raises((SystemExit, ValueError)):
            main(
                [
                    "replay",
                    "--scenario", "steady",
                    "--horizon", "1",
                    "--guards", "psychic",
                ],
                out=io.StringIO(),
            )

    def test_bad_freeze_after_rejected(self):
        with pytest.raises(SystemExit, match="freeze-after"):
            main(
                [
                    "replay",
                    "--scenario", "steady",
                    "--horizon", "1",
                    "--freeze-after", "0",
                ],
                out=io.StringIO(),
            )


class TestConvertCommand:
    def test_convert_then_trace_replay(self, tmp_path):
        log = tmp_path / "callbacks.jsonl"
        out = io.StringIO()
        main(
            [
                "simulate",
                "--engine", "cluster",
                "--horizon", "0.5",
                "--save", str(log),
            ],
            out=out,
        )
        events = tmp_path / "events.jsonl"
        out = io.StringIO()
        code = main(
            ["convert", str(log), str(events), "--heartbeat", "10"], out=out
        )
        assert code == 0
        assert "converted" in out.getvalue()
        assert events.exists()
        out = io.StringIO()
        code = main(
            [
                "replay",
                "--scenario", "steady",
                "--trace", str(events),
                "--guards", "predictive",
            ],
            out=out,
        )
        assert code == 0
        assert "events=" in out.getvalue()

    def test_heartbeat_zero_emits_raw_callbacks_only(self, tmp_path):
        from repro.service.events import Heartbeat
        from repro.service.replay import load_trace_events

        log = tmp_path / "callbacks.jsonl"
        main(
            ["simulate", "--horizon", "0.3", "--save", str(log)],
            out=io.StringIO(),
        )
        events = tmp_path / "events.jsonl"
        code = main(
            ["convert", str(log), str(events), "--heartbeat", "0"],
            out=io.StringIO(),
        )
        assert code == 0
        assert not any(
            isinstance(e, Heartbeat) for e in load_trace_events(events)
        )

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(
                ["convert", str(tmp_path / "nope.jsonl"), str(tmp_path / "o")],
                out=io.StringIO(),
            )


class TestTuneCommand:
    def test_small_tune_run(self):
        out = io.StringIO()
        code = main(
            [
                "tune",
                "--iterations", "2",
                "--window", "10",
                "--candidates", "4",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "final configuration" in text
        assert "DL[deadline]" in text


class TestDumpJournal:
    """`repro dump-journal` renders any codec's segments as JSON lines."""

    @staticmethod
    def _state_dir(tmp_path, codec, name="st", segment_records=4):
        from repro.service.events import Heartbeat, JobSubmitted
        from repro.service.journal import EventJournal

        root = tmp_path / name
        journal = EventJournal(
            root / "journal", codec=codec, segment_records=segment_records
        )
        events = []
        for i in range(6):
            events.append(JobSubmitted(float(i), tenant="acme", job_id=f"j{i}"))
            events.append(Heartbeat(float(i) + 0.5))
        journal.append_events(events)
        journal.close()
        return root

    def _dump(self, argv):
        out = io.StringIO()
        assert main(argv, out=out) == 0
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_dumps_binary_and_json_identically(self, tmp_path):
        json_dir = self._state_dir(tmp_path, "json", name="stj")
        binary_dir = self._state_dir(tmp_path, "binary", name="stb")
        from_json = self._dump(["dump-journal", "--state-dir", str(json_dir)])
        from_binary = self._dump(["dump-journal", "--state-dir", str(binary_dir)])
        assert from_json == from_binary
        assert [r["seq"] for r in from_json] == list(range(1, 13))
        assert from_json[0]["data"]["job_id"] == "j0"

    def test_segment_filter(self, tmp_path):
        root = self._state_dir(tmp_path, "binary")
        records = self._dump(
            ["dump-journal", "--state-dir", str(root), "--segment", "5"]
        )
        assert [r["seq"] for r in records] == [5, 6, 7, 8]

    def test_unknown_segment_rejected(self, tmp_path):
        root = self._state_dir(tmp_path, "binary")
        with pytest.raises(SystemExit, match="segments start at"):
            main(
                ["dump-journal", "--state-dir", str(root), "--segment", "3"],
                out=io.StringIO(),
            )

    def test_missing_journal_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="has no journal"):
            main(
                ["dump-journal", "--state-dir", str(tmp_path)], out=io.StringIO()
            )

    def test_missing_shard_rejected(self, tmp_path):
        root = self._state_dir(tmp_path, "binary")
        with pytest.raises(SystemExit, match="has no shard"):
            main(
                ["dump-journal", "--state-dir", str(root), "--shard", "2"],
                out=io.StringIO(),
            )

    def test_shard_journal_selected(self, tmp_path):
        from repro.service.events import Heartbeat
        from repro.service.journal import EventJournal
        from repro.service.sharding import shard_dir_name

        root = self._state_dir(tmp_path, "json")
        shard = EventJournal(
            root / shard_dir_name(1) / "journal", codec="binary"
        )
        shard.append_events([Heartbeat(42.0)])
        shard.close()
        records = self._dump(
            ["dump-journal", "--state-dir", str(root), "--shard", "1"]
        )
        assert len(records) == 1
        assert records[0]["data"]["time"] == 42.0
