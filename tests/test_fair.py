"""Unit and property tests for weighted max-min fair allocation.

The three worked examples of Section 3.2 are reproduced verbatim, plus
hypothesis properties: allocations never exceed capacity, respect
per-tenant bounds, and exhaust ``min(capacity, total demand)``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rm.fair import fair_shares, weighted_water_fill


class TestPaperExamples:
    """Shares 1:2:3 over 12 containers (Section 3.2)."""

    WEIGHTS = {"A": 1.0, "B": 2.0, "C": 3.0}

    def test_all_busy(self):
        alloc = fair_shares(12, {"A": 99, "B": 99, "C": 99}, self.WEIGHTS)
        assert alloc == {"A": 2, "B": 4, "C": 6}

    def test_idle_tenant_redistributes_proportionally(self):
        alloc = fair_shares(12, {"A": 99, "B": 99, "C": 0}, self.WEIGHTS)
        assert alloc == {"A": 4, "B": 8, "C": 0}

    def test_max_limit_caps_and_redistributes(self):
        alloc = fair_shares(
            12, {"A": 99, "B": 99, "C": 99}, self.WEIGHTS, max_shares={"C": 3}
        )
        assert alloc == {"A": 3, "B": 6, "C": 3}


class TestMinShares:
    def test_min_share_honored(self):
        alloc = fair_shares(
            10,
            {"A": 99, "B": 99},
            {"A": 1.0, "B": 1.0},
            min_shares={"A": 8},
        )
        assert alloc["A"] >= 8

    def test_min_clipped_to_demand(self):
        alloc = fair_shares(
            10, {"A": 2, "B": 99}, {"A": 1.0, "B": 1.0}, min_shares={"A": 8}
        )
        assert alloc["A"] == 2
        assert alloc["B"] == 8

    def test_oversubscribed_mins_scale_down(self):
        alloc = fair_shares(
            10,
            {"A": 99, "B": 99},
            min_shares={"A": 8, "B": 8},
        )
        assert sum(alloc.values()) == 10
        # Symmetric: both scaled equally.
        assert alloc["A"] == alloc["B"] == 5


class TestEdgeCases:
    def test_zero_capacity(self):
        assert fair_shares(0, {"A": 5}) == {"A": 0}

    def test_no_tenants(self):
        assert fair_shares(10, {}) == {}

    def test_demand_below_capacity(self):
        alloc = fair_shares(10, {"A": 2, "B": 3})
        assert alloc == {"A": 2, "B": 3}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            fair_shares(-1, {"A": 1})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            fair_shares(5, {"A": 5}, {"A": -1.0})

    def test_zero_weight_tenant_gets_leftovers_only(self):
        alloc = fair_shares(10, {"A": 99, "B": 99}, {"A": 0.0, "B": 1.0})
        assert alloc["B"] == 10
        assert alloc["A"] == 0


class TestWaterFill:
    def test_floor_above_ceiling_rejected(self):
        with pytest.raises(ValueError):
            weighted_water_fill(10, {"A": 1.0}, {"A": 5.0}, {"A": 2.0})

    def test_floors_exceed_capacity_rejected(self):
        with pytest.raises(ValueError, match="exceeding capacity"):
            weighted_water_fill(4, {"A": 1.0, "B": 1.0}, {"A": 3.0, "B": 3.0}, {"A": 9.0, "B": 9.0})

    def test_proportional_no_constraints(self):
        alloc = weighted_water_fill(
            9.0, {"A": 1.0, "B": 2.0}, {}, {"A": math.inf, "B": math.inf}
        )
        assert alloc["A"] == pytest.approx(3.0, abs=1e-6)
        assert alloc["B"] == pytest.approx(6.0, abs=1e-6)


tenant_names = st.lists(
    st.sampled_from(["A", "B", "C", "D", "E"]), min_size=1, max_size=5, unique=True
)


@settings(max_examples=120, deadline=None)
@given(
    names=tenant_names,
    capacity=st.integers(0, 64),
    data=st.data(),
)
def test_fair_share_invariants(names, capacity, data):
    """Core invariants of the integer fair allocation."""
    demands = {n: data.draw(st.integers(0, 40), label=f"demand-{n}") for n in names}
    weights = {
        n: data.draw(st.floats(0.1, 8.0), label=f"weight-{n}") for n in names
    }
    max_shares = {
        n: data.draw(st.integers(1, 64), label=f"max-{n}") for n in names
    }
    min_shares = {
        n: data.draw(st.integers(0, max_shares[n]), label=f"min-{n}") for n in names
    }
    alloc = fair_shares(capacity, demands, weights, min_shares, max_shares)

    # 1. Exactly the feasible total is allocated.
    effective_demand = sum(min(demands[n], max_shares[n]) for n in names)
    assert sum(alloc.values()) == min(capacity, effective_demand)
    # 2. Per-tenant bounds.
    for n in names:
        assert 0 <= alloc[n] <= min(demands[n], max_shares[n])
    # 3. Non-negative integers.
    assert all(isinstance(v, int) and v >= 0 for v in alloc.values())


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(1, 64),
    w_a=st.floats(0.1, 8.0),
    w_b=st.floats(0.1, 8.0),
)
def test_weight_monotonicity(capacity, w_a, w_b):
    """With saturating demand and no limits, higher weight never gets less."""
    alloc = fair_shares(capacity, {"A": 1000, "B": 1000}, {"A": w_a, "B": w_b})
    if w_a > w_b:
        assert alloc["A"] >= alloc["B"] - 1  # integer rounding slack
    elif w_b > w_a:
        assert alloc["B"] >= alloc["A"] - 1
