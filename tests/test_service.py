"""Tests for the online serving layer (events, ingest, daemon, replay)."""

import math

import numpy as np
import pytest

from repro.service.daemon import ServiceConfig, TempoService
from repro.service.events import (
    EventBus,
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.ingest import RollingWindow, stats_gap, window_drift
from repro.service.replay import (
    SCENARIOS,
    ScenarioReplayer,
    build_service,
    make_scenario,
)
from repro.workload.trace import JobRecord, TaskRecord


def _task(job_id, task_id, tenant, finish, duration, *, preempted=False, failed=False):
    start = finish - duration
    return TaskRecord(
        job_id=job_id,
        task_id=task_id,
        tenant=tenant,
        pool="map",
        stage="map",
        submit_time=max(start - 1.0, 0.0),
        start_time=start,
        finish_time=finish,
        preempted=preempted,
        failed=failed,
    )


def _job(job_id, tenant, submit, finish, deadline=None):
    return JobRecord(
        job_id=job_id,
        tenant=tenant,
        submit_time=submit,
        finish_time=finish,
        deadline=deadline,
    )


def _synthetic_events(seed=0, count=600, tenants=("A", "B")):
    """A deterministic, statistically varied telemetry stream."""
    rng = np.random.default_rng(seed)
    events = []
    t = 0.0
    for i in range(count):
        t += float(rng.exponential(20.0))
        tenant = tenants[i % len(tenants)]
        job_id = f"{tenant}-{i}"
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        duration = float(rng.lognormal(3.0 + 0.5 * (i % 3), 0.8))
        finish = t + duration
        events.append(
            TaskCompleted(
                finish,
                record=_task(
                    job_id,
                    f"{job_id}/t0",
                    tenant,
                    finish,
                    duration,
                    preempted=(i % 17 == 0),
                    failed=(i % 23 == 0),
                ),
            )
        )
        events.append(
            JobCompleted(finish, record=_job(job_id, tenant, t, finish))
        )
    events.sort(key=lambda e: e.time)
    return events


class TestEventBus:
    def test_fifo_and_counters(self):
        bus = EventBus(maxlen=10)
        for i in range(3):
            assert bus.publish(Heartbeat(float(i)))
        assert len(bus) == 3
        assert bus.poll().time == 0.0
        assert [e.time for e in bus.drain()] == [1.0, 2.0]
        assert bus.published == 3

    def test_overflow_sheds_and_counts(self):
        bus = EventBus(maxlen=2)
        assert bus.publish(Heartbeat(0.0))
        assert bus.publish(Heartbeat(1.0))
        assert not bus.publish(Heartbeat(2.0))
        assert bus.dropped == 1
        assert len(bus) == 2

    def test_rejects_bad_events(self):
        with pytest.raises(ValueError):
            Heartbeat(-1.0)
        with pytest.raises(ValueError):
            Heartbeat(float("nan"))
        with pytest.raises(ValueError):
            EventBus(maxlen=0)


class TestRollingWindowIncremental:
    def test_incremental_matches_batch_recompute(self):
        """The acceptance property: snapshot == batch recompute <= 1e-9."""
        window = RollingWindow(600.0)
        for i, event in enumerate(_synthetic_events(seed=1)):
            window.ingest(event)
            if i % 97 == 0:
                assert stats_gap(window) < 1e-9
        assert window.tasks_retained < window.events_ingested  # eviction ran
        assert stats_gap(window) < 1e-9

    def test_incremental_matches_after_heavy_eviction(self):
        window = RollingWindow(50.0)  # tiny window: constant turnover
        for event in _synthetic_events(seed=2, count=400):
            window.ingest(event)
        assert window.tasks_retained < 50
        assert stats_gap(window) < 1e-9

    def test_snapshot_values(self):
        window = RollingWindow(100.0)
        window.ingest(JobSubmitted(10.0, tenant="A", job_id="a0"))
        window.ingest(
            TaskCompleted(30.0, record=_task("a0", "a0/t0", "A", 30.0, 20.0))
        )
        window.ingest(JobCompleted(30.0, record=_job("a0", "A", 10.0, 30.0)))
        stats = window.snapshot()["A"]
        assert stats.submitted == 1 and stats.jobs == 1 and stats.tasks == 1
        assert stats.arrival_rate == pytest.approx(1 / 100.0)
        assert stats.mean_response == pytest.approx(20.0)
        assert stats.log_duration_mean == pytest.approx(math.log(20.0))
        assert stats.log_duration_std == 0.0
        assert stats.duration_model().median == pytest.approx(20.0)

    def test_eviction_forgets_old_entries(self):
        window = RollingWindow(100.0)
        window.ingest(
            TaskCompleted(10.0, record=_task("a0", "a0/t0", "A", 10.0, 5.0))
        )
        window.advance(200.0)
        # A fully expired tenant is dropped entirely (bounded memory in
        # a long-running daemon), not kept around with zeroed stats.
        assert "A" not in window.tenants()
        assert window.snapshot() == {}

    def test_window_trace_reanchored(self):
        # The window must exceed typical response times, else every
        # completed job was submitted before the window opened and the
        # trace carries no job records.
        window = RollingWindow(500.0)
        for event in _synthetic_events(seed=3, count=100):
            window.ingest(event)
        trace = window.trace(capacity={"map": 8})
        assert trace.horizon <= 500.0 + 1e-9
        for rec in trace.task_records:
            assert 0.0 <= rec.submit_time <= rec.start_time <= rec.finish_time
        # Jobs submitted before the window opening are excluded (the QS
        # job set J_i), so response times are never truncated.
        assert 0 < len(trace.job_records) <= window.jobs_retained
        for jrec in trace.job_records:
            assert jrec.submit_time >= 0.0
        # The trace replays into a valid workload for the what-if model
        # (jobs with no completed task attempts cannot be replayed).
        workload = trace.to_workload()
        assert 0 < len(workload) <= len(trace.job_records)

    def test_rejects_control_events(self):
        window = RollingWindow(100.0)
        with pytest.raises(TypeError):
            window.ingest(TenantJoined(0.0, tenant="A"))


class TestWindowDrift:
    def test_identical_snapshots_have_zero_drift(self):
        window = RollingWindow(600.0)
        for event in _synthetic_events(seed=4, count=200):
            window.ingest(event)
        snap = window.snapshot()
        assert window_drift(snap, snap) == 0.0

    def test_rate_change_registers(self):
        window = RollingWindow(600.0)
        for event in _synthetic_events(seed=5, count=200):
            window.ingest(event)
        before = window.snapshot()
        # A burst of extra submissions shifts the arrival rate.
        t = window.now
        for i in range(50):
            window.ingest(JobSubmitted(t + i * 0.5, tenant="A", job_id=f"x{i}"))
        after = window.snapshot()
        assert window_drift(before, after) > 0.1

    def test_churn_is_infinite_drift(self):
        window = RollingWindow(600.0)
        window.ingest(JobSubmitted(1.0, tenant="A", job_id="a0"))
        before = window.snapshot()
        window.ingest(JobSubmitted(2.0, tenant="NEW", job_id="n0"))
        assert window_drift(before, window.snapshot()) == math.inf


class TestTempoService:
    def _service(self, **overrides) -> TempoService:
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        defaults = dict(
            window=600.0, retune_interval=300.0, drift_threshold=0.02,
            min_window_jobs=3,
        )
        defaults.update(overrides)
        return build_service(scenario, ServiceConfig(**defaults), seed=0)

    def test_retune_cadence(self):
        """One retune attempt per elapsed cadence interval."""
        service = self._service()
        for event in _synthetic_events(seed=7, count=500):
            service.process(event)
        assert service.decisions, "cadence never fired"
        times = [d.time for d in service.decisions]
        gaps = np.diff([0.0] + times)
        assert np.all(gaps >= 300.0 - 1e-9)
        assert service.retunes >= 1

    def test_sparse_window_skips(self):
        service = self._service(min_window_jobs=10_000)
        for event in _synthetic_events(seed=8, count=300):
            service.process(event)
        assert service.retunes == 0
        assert all(d.reason == "sparse" for d in service.decisions)

    def test_stability_guard_skips_when_stationary(self):
        """A huge drift threshold makes every post-initial attempt skip."""
        service = self._service(drift_threshold=1e9)
        for event in _synthetic_events(seed=9, count=500):
            service.process(event)
        retuned = [d for d in service.decisions if d.retuned]
        skipped = [d for d in service.decisions if d.reason == "stable"]
        assert len(retuned) == 1 and retuned[0].reason == "initial"
        assert skipped, "stability guard never engaged"
        assert all(d.drift < 1e9 for d in skipped)

    def test_zero_threshold_always_retunes(self):
        service = self._service(drift_threshold=0.0)
        for event in _synthetic_events(seed=10, count=500):
            service.process(event)
        assert service.skips == 0
        assert service.retunes == len(service.decisions)

    def test_node_loss_forces_retune(self):
        service = self._service(drift_threshold=1e9)
        events = _synthetic_events(seed=11, count=500)
        mid = events[len(events) // 2].time
        events.append(NodeLost(mid, pool="map", containers=4))
        events.sort(key=lambda e: e.time)
        for event in events:
            service.process(event)
        assert service.nodes_lost == 4
        assert any(d.reason == "forced" for d in service.decisions)

    def test_tenant_left_drops_window_state(self):
        service = self._service()
        for event in _synthetic_events(seed=12, count=200):
            service.process(event)
        assert "A" in service.window.tenants()
        service.process(TenantLeft(service.window.now, tenant="A"))
        assert "A" not in service.window.tenants()

    def test_rollback_restores_previous_config(self):
        service = self._service(drift_threshold=0.0)
        for event in _synthetic_events(seed=13, count=500):
            service.process(event)
        assert service.retunes >= 2
        history = service.config_history
        previous = history[-2].config
        restored = service.rollback()
        assert restored is previous
        assert service.rm_config is previous
        np.testing.assert_allclose(
            service.controller.x, service.controller.space.encode(previous)
        )

    def test_daemon_thread_drains_bus(self):
        service = self._service()
        events = _synthetic_events(seed=14, count=300)
        service.start()
        assert service.running
        for event in events:
            assert service.submit(event)
        service.stop()
        assert not service.running
        assert service.events_processed == len(events)
        assert stats_gap(service.window) < 1e-9

    def test_empty_window_never_retunes(self):
        """Even min_window_jobs=0 cannot tune from zero telemetry."""
        service = self._service(min_window_jobs=0)
        from repro.service.events import Heartbeat

        for i in range(10):
            service.process(Heartbeat(i * 400.0))
        assert service.retunes == 0
        assert all(d.reason == "sparse" for d in service.decisions)

    def test_quiesce_surfaces_dead_drain_thread(self):
        """A drain thread killed by an error must not make quiesce spin."""
        service = self._service()

        def boom(event):
            raise OSError("disk full")

        service.process = boom  # instance attribute shadows the method
        service.start()
        service.submit(Heartbeat(1.0))
        with pytest.raises(RuntimeError, match="drain thread died"):
            service.quiesce()
        with pytest.raises(RuntimeError, match="drain thread died"):
            service.stop()
        assert not service.running  # cleanly stoppable after the error

    def test_submit_blocking_waits_for_room(self):
        """Control markers are never shed; they wait for the bus to drain."""
        import threading
        import time

        service = self._service(queue_capacity=1)
        assert service.submit(Heartbeat(1.0))  # bus now full
        assert not service.submit(Heartbeat(2.0))  # ordinary path sheds
        done: list[bool] = []
        publisher = threading.Thread(
            target=lambda: done.append(service.submit_blocking(Heartbeat(3.0)))
        )
        service.start()
        try:
            publisher.start()
            publisher.join(5.0)
            assert done == [True]
        finally:
            service.stop()
        assert service.events_processed == 2  # the shed heartbeat is gone

    def test_submit_blocking_requires_running_daemon(self):
        service = self._service(queue_capacity=1)
        assert service.submit(Heartbeat(1.0))
        with pytest.raises(RuntimeError, match="not running"):
            service.submit_blocking(Heartbeat(2.0))

    def test_quiesce_requires_running_daemon(self):
        service = self._service()
        with pytest.raises(RuntimeError, match="not running"):
            service.quiesce()

    def test_start_twice_rejected(self):
        service = self._service()
        service.start()
        try:
            with pytest.raises(RuntimeError):
                service.start()
        finally:
            service.stop()


class TestScenarios:
    def test_catalog_instantiates(self):
        for name in SCENARIOS:
            scenario = make_scenario(name, scale=1.0, horizon=1800.0)
            assert scenario.name == name
            assert scenario.horizon == 1800.0
            assert len(scenario.model.tenants) >= 2

    def test_flash_crowd_spikes(self):
        scenario = make_scenario("flash-crowd", scale=1.0, horizon=10_000.0)
        model = scenario.model.tenant_model("besteffort")
        inside = model.rate_pattern.factor(0.45 * 10_000.0)
        outside = model.rate_pattern.factor(0.0)
        assert inside == pytest.approx(5.0) and outside == pytest.approx(1.0)

    def test_churn_tenant_silent_outside_membership(self):
        scenario = make_scenario("tenant-churn", scale=1.0, horizon=10_000.0)
        model = scenario.model.tenant_model("batch")
        assert model.rate_pattern.factor(0.0) == 0.0
        assert model.rate_pattern.factor(0.5 * 10_000.0) == 1.0
        assert scenario.churn[0][2] is True and scenario.churn[1][2] is False

    def test_flash_failure_composes_surge_and_node_loss(self):
        """The compound scenario carries both stress signals at once."""
        scenario = make_scenario("flash-failure", scale=1.0, horizon=10_000.0)
        model = scenario.model.tenant_model("besteffort")
        inside = model.rate_pattern.factor(0.45 * 10_000.0)
        outside = model.rate_pattern.factor(0.0)
        assert inside == pytest.approx(5.0) and outside == pytest.approx(1.0)
        assert scenario.node_loss, "failure bursts missing"
        # At least one loss burst lands inside the surge window, so the
        # two signals genuinely interact.
        surge = (0.35 * 10_000.0, 0.55 * 10_000.0)
        assert any(surge[0] <= when < surge[1] for when, _, _ in scenario.node_loss)


class TestReplay:
    def _run(self, name, seed=0, transport="direct"):
        scenario = make_scenario(name, scale=1.0, horizon=1200.0)
        service = build_service(
            scenario,
            ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3),
            seed=seed,
        )
        return ScenarioReplayer(
            scenario, service, seed=seed, transport=transport
        ).run()

    def test_replay_end_to_end(self):
        summary = self._run("flash-crowd")
        assert summary.events > 100
        assert summary.jobs_submitted > 0
        assert summary.max_stats_gap < 1e-9
        assert summary.decisions, "no cadence ticks fired"

    def test_replay_deterministic_under_fixed_seed(self):
        a = self._run("flash-crowd", seed=42)
        b = self._run("flash-crowd", seed=42)
        assert a.events == b.events
        assert a.jobs_submitted == b.jobs_submitted
        assert a.tasks == b.tasks
        assert [(d.time, d.retuned, d.reason) for d in a.decisions] == [
            (d.time, d.retuned, d.reason) for d in b.decisions
        ]
        assert a.final_config.describe() == b.final_config.describe()

    def test_replay_seed_changes_stream(self):
        a = self._run("flash-crowd", seed=1)
        b = self._run("flash-crowd", seed=2)
        assert (a.events, a.tasks) != (b.events, b.tasks)

    def test_churn_emits_membership_events(self):
        summary = self._run("tenant-churn")
        # join at 30% and leave at 70% of the 1200s horizon.
        assert summary.events > 0
        service_decisions = summary.decisions
        assert service_decisions is not None

    def test_flash_failure_replays_end_to_end(self):
        """The compound scenario drives surge + loss through the daemon."""
        scenario = make_scenario("flash-failure", scale=1.0, horizon=3600.0)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=0,
        )
        summary = ScenarioReplayer(scenario, service, seed=0).run()
        assert summary.events > 100
        assert summary.max_stats_gap < 1e-9
        assert service.nodes_lost > 0  # the failure half fired
        assert any(d.reason == "forced" for d in summary.decisions)

    def test_bus_transport_matches_direct_counts(self):
        direct = self._run("steady", seed=3, transport="direct")
        bus = self._run("steady", seed=3, transport="bus")
        assert direct.events == bus.events
        assert direct.retunes == bus.retunes
        assert bus.dropped == 0
        assert direct.final_config.describe() == bus.final_config.describe()

    def test_unknown_transport_rejected(self):
        scenario = make_scenario("steady", scale=1.0, horizon=600.0)
        with pytest.raises(ValueError, match="transport"):
            ScenarioReplayer(scenario, transport="carrier-pigeon")


class TestContinuousReplay:
    def _overloaded(self, continuous, seed=5):
        scenario = make_scenario("steady", scale=3.0, horizon=3600.0)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=seed,
        )
        return ScenarioReplayer(
            scenario, service, seed=seed, continuous=continuous, verify_stats=False
        ).run()

    def test_backlog_compounds_across_retune_intervals(self):
        """The tentpole property: one continuous execution carries backlog.

        The legacy mode simulates each retune interval from an empty
        cluster, so under sustained overload its telemetry stays mild;
        the continuous session inherits every interval's unfinished
        work, so queueing compounds and response times stretch.
        """
        chunked = self._overloaded(continuous=False)
        continuous = self._overloaded(continuous=True)
        assert continuous.peak_backlog > 2 * chunked.peak_backlog
        assert continuous.mean_response > 2 * chunked.mean_response

    def test_continuous_replay_deterministic(self):
        a = self._overloaded(continuous=True)
        b = self._overloaded(continuous=True)
        assert a.events == b.events
        assert a.peak_backlog == b.peak_backlog
        assert a.final_config.describe() == b.final_config.describe()

    def test_run_rejects_bad_start(self):
        scenario = make_scenario("steady", scale=1.0, horizon=1200.0)
        with pytest.raises(ValueError, match="start"):
            ScenarioReplayer(scenario, seed=0).run(1200.0, start=1200.0)

    def test_resumed_run_reapplies_pre_boundary_node_loss(self):
        """Capacity lost before the resume boundary stays lost."""
        scenario = make_scenario("failure-storm", scale=1.0, horizon=3600.0)
        assert any(when < 2700.0 for when, _, _ in scenario.node_loss)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=0,
        )
        replayer = ScenarioReplayer(scenario, service, seed=0, verify_stats=False)
        captured = {}
        original = replayer.sim.session

        def capture(*args, **kwargs):
            captured["session"] = original(*args, **kwargs)
            return captured["session"]

        replayer.sim.session = capture
        replayer.run(3600.0, start=2700.0)
        assert sum(captured["session"].capacity_lost.values()) > 0

    def test_resumed_chunked_run_continues_seed_sequence(self):
        """Legacy mode: chunk seeds continue from the boundary index."""
        scenario = make_scenario("steady", scale=1.0, horizon=1800.0)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=7,
        )
        replayer = ScenarioReplayer(
            scenario, service, seed=7, continuous=False, verify_stats=False
        )
        seeds = []
        original = replayer.sim.run

        def record(workload, config, *, seed=None, **kwargs):
            seeds.append(seed)
            return original(workload, config, seed=seed, **kwargs)

        replayer.sim.run = record
        replayer.run(1800.0, start=900.0)  # chunks at indices 2 and 3
        assert seeds == [7 + 7919 * 2, 7 + 7919 * 3]


class TestNodeLossCapacity:
    def test_node_loss_shrinks_whatif_cluster(self):
        """NodeLost reduces the capacity candidates are evaluated on."""
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        service = build_service(
            scenario,
            ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3),
            seed=0,
        )
        full = service.effective_cluster().as_dict()
        service.process(NodeLost(10.0, pool="map", containers=4))
        shrunk = service.effective_cluster().as_dict()
        assert shrunk["map"] == full["map"] - 4
        assert shrunk["reduce"] == full["reduce"]

    def test_loss_clamped_to_leave_capacity(self):
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        service = build_service(scenario, seed=0)
        service.process(NodeLost(10.0, pool="map", containers=10_000))
        assert service.effective_cluster().as_dict()["map"] == 1
        # Unknown pools are ignored rather than crashing the daemon.
        service.process(NodeLost(11.0, pool="gpu", containers=3))
        assert "gpu" not in service.effective_cluster().as_dict()

    def test_continuous_node_loss_telemetry_is_clamped(self):
        """Emitted NodeLost matches what the session actually removed."""
        from dataclasses import replace as dc_replace

        scenario = dc_replace(
            make_scenario("steady", scale=1.0, horizon=900.0),
            node_loss=((10.0, "map", 10_000),),
        )
        service = build_service(
            scenario,
            ServiceConfig(window=600.0, retune_interval=450.0, min_window_jobs=3),
            seed=0,
        )
        ScenarioReplayer(scenario, service, seed=0, verify_stats=False).run()
        # The 16-container map pool keeps one container, so only 15
        # were removable — and only 15 may be reported.
        assert service.nodes_lost == 15
        assert service.lost_capacity == {"map": 15}

    def test_retune_still_works_after_loss(self):
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        service = build_service(
            scenario,
            ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3),
            seed=0,
        )
        events = _synthetic_events(seed=21, count=300, tenants=("deadline", "besteffort"))
        events.append(NodeLost(events[100].time, pool="map", containers=6))
        events.sort(key=lambda e: e.time)
        for event in events:
            service.process(event)
        assert service.retunes >= 1
        retuned = [d for d in service.decisions if d.retuned]
        assert retuned[-1].iteration is not None


class TestRevertWindowAveraging:
    @staticmethod
    def _noisy_window(rng, level, horizon=900.0):
        """A window whose QS oscillates around a stationary ``level``."""
        from repro.workload.trace import Trace

        tasks, jobs = [], []
        t, i = 10.0, 0
        while t < horizon - 200:
            for tenant in ("deadline", "besteffort"):
                duration = float(rng.lognormal(np.log(40), 0.3))
                response = max(5.0, float(rng.normal(level, 0.35 * level)))
                job_id = f"{tenant}-{i}"
                tasks.append(
                    TaskRecord(
                        job_id, f"{job_id}/t", tenant, "map", "map",
                        t, t + 1, t + 1 + duration,
                    )
                )
                jobs.append(
                    JobRecord(
                        job_id, tenant, t, min(t + response, horizon),
                        deadline=t + 10 * level if tenant == "deadline" else None,
                    )
                )
                i += 1
            t += float(rng.exponential(30.0))
        return Trace(tasks, jobs, capacity={"map": 16, "reduce": 12}, horizon=horizon)

    def _reverts(self, k, seed=1, windows=20):
        from repro.service.replay import build_controller

        rng = np.random.default_rng(seed)
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        controller = build_controller(scenario, seed=seed, revert_windows=k)
        count = 0
        for i in range(windows):
            record = controller.tune_from_trace(i, self._noisy_window(rng, 120.0))
            count += record.reverted
        return count

    def test_averaging_reduces_revert_churn(self):
        """ROADMAP item: k>1 windows averaged -> far fewer noise reverts."""
        single = self._reverts(1)
        averaged = self._reverts(3)
        assert single >= 8, "test premise: single-window guard churns"
        assert averaged <= single // 2

    def test_failure_storm_averaging_never_increases_churn(self):
        """Regression: smoothing must not re-revert the restored incumbent.

        An observation made under a rejected configuration is dropped
        from the average; before that fix, k>1 triggered revert storms
        on the failure-storm replay (more reverts than k=1).
        """
        results = {}
        for k in (1, 3):
            scenario = make_scenario("failure-storm", scale=1.5, horizon=5400.0)
            service = build_service(
                scenario,
                ServiceConfig(
                    window=900.0,
                    retune_interval=450.0,
                    min_window_jobs=3,
                    drift_threshold=0.0,
                ),
                seed=0,
                revert_windows=k,
            )
            results[k] = ScenarioReplayer(
                scenario, service, seed=0, verify_stats=False
            ).run()
        assert results[3].reverts <= results[1].reverts
        assert results[3].retunes >= 1

    def test_revert_restores_evicted_observation(self):
        """Dropping a rejected config's window must not also lose the
        observation its append evicted from the full deque."""
        from repro.core.decisions import (
            VERDICT_REVERT,
            DecisionEngine,
            Guard,
            GuardVote,
        )
        from repro.service.replay import build_controller

        class _AlwaysRevert(Guard):
            name = "always-revert"

            def revert_vote(self, signals):
                return GuardVote(self.name, VERDICT_REVERT, "forced")

        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        controller = build_controller(scenario, seed=0, revert_windows=2)
        kept = [np.array([1.0, 10.0]), np.array([2.0, 20.0])]
        controller._observed_recent.extend(kept)
        controller.engine = DecisionEngine([_AlwaysRevert()])  # force the guard
        controller._prev = (controller.config, kept[1].copy(), controller.x.copy())
        rng = np.random.default_rng(3)
        record = controller.tune_from_trace(0, self._noisy_window(rng, 120.0))
        assert record.reverted
        assert len(controller._observed_recent) == 2
        np.testing.assert_allclose(controller._observed_recent[0], kept[0])
        np.testing.assert_allclose(controller._observed_recent[1], kept[1])

    def test_smoothed_observation_mean(self):
        from repro.service.replay import build_controller

        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        controller = build_controller(scenario, seed=0, revert_windows=3)
        with pytest.raises(ValueError):
            controller.smoothed_observation()
        controller._observed_recent.append(np.array([1.0, 2.0]))
        controller._observed_recent.append(np.array([3.0, 4.0]))
        np.testing.assert_allclose(
            controller.smoothed_observation(), np.array([2.0, 3.0])
        )


class TestControllerFromTrace:
    def test_tune_from_trace_runs_without_window(self):
        """The serving entry point works on a bare observed trace."""
        scenario = make_scenario("steady", scale=1.0, horizon=1800.0)
        service = build_service(scenario, seed=0)
        workload = scenario.model.generate(0, 1800.0)
        trace = service.controller.production.run(
            workload, service.controller.config, seed=1
        )
        record = service.controller.tune_from_trace(0, trace)
        assert record.index == 0
        assert np.all(np.isfinite(record.observed))


class TestServiceCli:
    def test_replay_command(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["replay", "--scenario", "steady", "--horizon", "0.3", "--seed", "1"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "events=" in text
        assert "stats gap" in text
        assert "final configuration" in text

    def test_serve_command(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["serve", "--scenario", "steady", "--horizon", "0.3"], out=out
        )
        assert code == 0
        assert "transport=bus" in out.getvalue()

    def test_replay_rejects_unknown_scenario(self):
        import io

        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["replay", "--scenario", "nope"], out=io.StringIO())
