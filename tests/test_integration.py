"""Cross-component integration tests.

These exercise whole pipelines: generate -> simulate -> observe -> fit ->
predict -> optimize, including the predictor-vs-ground-truth agreement
property that underpins the paper's validation experiment (Table 2).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace, RMConfig, TenantConfig
from repro.sim.noise import NoiseModel
from repro.sim.predictor import SchedulePredictor
from repro.sim.simulator import ClusterSimulator
from repro.slo.objectives import SLOSet
from repro.slo.templates import deadline_slo, response_time_slo, utilization_slo
from repro.stats.errors import relative_absolute_error
from repro.whatif.model import WhatIfModel
from repro.workload.generator import fit_workload_model
from repro.workload.synthetic import (
    two_tenant_cluster,
    two_tenant_expert_config,
    two_tenant_model,
)


class TestPredictorVsGroundTruth:
    """On a quiet cluster, the time-warp predictor is the ground truth."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_noise_free_agreement(self, seed):
        model = two_tenant_model(scale=0.6)
        workload = model.generate(seed, 900.0)
        if len(workload) == 0:
            return
        cluster = two_tenant_cluster()
        config = two_tenant_expert_config(cluster)
        predicted = SchedulePredictor(cluster).predict(workload, config)
        truth = ClusterSimulator(cluster, heartbeat=1.0).run(workload, config)
        p = {j.job_id: j.finish_time for j in predicted.job_records}
        t = {j.job_id: j.finish_time for j in truth.job_records}
        common = sorted(set(p) & set(t))
        assert len(common) >= 0.9 * len(t)
        for job_id in common:
            # Heartbeat quantization causes small divergences that can
            # compound through queueing; require close agreement.
            assert p[job_id] == pytest.approx(t[job_id], abs=60.0)

    def test_prediction_error_small_under_noise(self):
        """RAE of predicted finish times under production noise stays
        in the ballpark the paper reports (<= ~0.35 vs their 0.12-0.24)."""
        model = two_tenant_model(scale=0.6)
        workload = model.generate(7, 1800.0)
        cluster = two_tenant_cluster()
        config = two_tenant_expert_config(cluster)
        predicted = SchedulePredictor(cluster).predict(workload, config)
        truth = ClusterSimulator(
            cluster, noise=NoiseModel.production(), heartbeat=2.0
        ).run(workload, config, seed=3)
        p = {j.job_id: j.finish_time for j in predicted.job_records}
        t = {j.job_id: j.finish_time for j in truth.job_records}
        common = sorted(set(p) & set(t))
        assert len(common) > 10
        rae = relative_absolute_error(
            [p[j] for j in common], [t[j] for j in common]
        )
        assert rae < 0.5


class TestTraceToModelRoundtrip:
    def test_fit_then_generate_preserves_load(self):
        model = two_tenant_model(scale=0.6)
        workload = model.generate(11, 3600.0)
        cluster = two_tenant_cluster()
        config = two_tenant_expert_config(cluster)
        trace = SchedulePredictor(cluster).predict(workload, config)
        fitted = fit_workload_model(trace)
        regen = fitted.generate(0, 3600.0)
        assert regen.total_work == pytest.approx(workload.total_work, rel=0.5)
        assert set(fitted.tenants) == {"deadline", "besteffort"}


class TestWhatIfOptimizationLoop:
    def test_pald_improves_predicted_slos(self):
        """The inner optimization loop (no production noise): PALD should
        find a configuration whose *predicted* QS dominates-or-matches
        the expert configuration's on the same workload replica."""
        cluster = two_tenant_cluster()
        config = two_tenant_expert_config(cluster)
        model = two_tenant_model(scale=0.8)
        workloads = [model.generate(5, 1200.0)]
        slos = SLOSet(
            [
                deadline_slo("deadline", max_violation_fraction=0.0, slack=0.25),
                response_time_slo("besteffort"),
            ]
        )
        whatif = WhatIfModel(cluster, slos, workloads)
        space = ConfigSpace(cluster, ["deadline", "besteffort"])
        from repro.core.pald import PALD

        pald = PALD(
            space,
            whatif.evaluator(space),
            slos.thresholds(),
            trust_radius=0.25,
            candidates=5,
            seed=0,
        )
        x0 = space.encode(config)
        f0 = whatif.evaluate(config)
        result = pald.optimize(x0, 10)
        # The chosen configuration is never worse on the deadline SLO
        # and improves (or matches) best-effort latency.
        assert result.f[0] <= f0[0] + 1e-9
        assert result.f[1] <= f0[1] * 1.02


class TestEndToEndSmoke:
    def test_three_slo_pipeline(self):
        """Deadline + AJR + utilization SLOs through the full stack."""
        cluster = ClusterSpec({"map": 6, "reduce": 4})
        slos = SLOSet(
            [
                deadline_slo("deadline", max_violation_fraction=0.1, slack=0.25),
                response_time_slo("besteffort"),
                utilization_slo(0.2, pool="reduce", label="UTILRED"),
            ]
        )
        model = two_tenant_model(scale=0.5)
        workload = model.generate(2, 900.0)
        config = RMConfig(
            {"deadline": TenantConfig(weight=2.0), "besteffort": TenantConfig()}
        )
        schedule = SchedulePredictor(cluster).predict(workload, config)
        f = slos.evaluate(schedule)
        assert f.shape == (3,)
        assert np.all(np.isfinite(f))
