"""Unit tests for the What-if Model and provisioning advisor."""

import numpy as np
import pytest

from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace, RMConfig, TenantConfig
from repro.slo.objectives import SLOSet
from repro.slo.templates import deadline_slo, response_time_slo
from repro.whatif.model import WhatIfModel
from repro.whatif.provisioning import ProvisioningAdvisor
from repro.workload.model import Workload, single_stage_job


@pytest.fixture
def cluster():
    return ClusterSpec({"slots": 4})


@pytest.fixture
def slos():
    return SLOSet(
        [
            deadline_slo("A", max_violation_fraction=0.1, slack=0.0),
            response_time_slo("B"),
        ]
    )


@pytest.fixture
def workloads():
    w1 = Workload(
        [
            single_stage_job("A", 0.0, [10.0] * 2, job_id="a0", deadline=30.0),
            single_stage_job("B", 0.0, [20.0] * 2, job_id="b0"),
        ]
    )
    w2 = Workload(
        [
            single_stage_job("A", 0.0, [12.0] * 2, job_id="a1", deadline=30.0),
            single_stage_job("B", 5.0, [18.0] * 2, job_id="b1"),
        ]
    )
    return [w1, w2]


@pytest.fixture
def config():
    return RMConfig({"A": TenantConfig(), "B": TenantConfig()})


class TestWhatIfModel:
    def test_evaluate_averages_replicas(self, cluster, slos, workloads, config):
        model = WhatIfModel(cluster, slos, workloads)
        f = model.evaluate(config)
        single = WhatIfModel(cluster, slos, [workloads[0]]).evaluate(config)
        other = WhatIfModel(cluster, slos, [workloads[1]]).evaluate(config)
        np.testing.assert_allclose(f, (single + other) / 2.0)

    def test_caching(self, cluster, slos, workloads, config):
        model = WhatIfModel(cluster, slos, workloads)
        f1 = model.evaluate(config)
        f2 = model.evaluate(config)
        np.testing.assert_array_equal(f1, f2)
        assert model.evaluations == 1  # second call was a cache hit

    def test_cache_distinguishes_configs(self, cluster, slos, workloads, config):
        model = WhatIfModel(cluster, slos, workloads)
        model.evaluate(config)
        other = RMConfig({"A": TenantConfig(weight=5.0), "B": TenantConfig()})
        model.evaluate(other)
        assert model.evaluations == 2

    def test_evaluator_decodes_vectors(self, cluster, slos, workloads, config):
        model = WhatIfModel(cluster, slos, workloads)
        space = ConfigSpace(cluster, ["A", "B"])
        evaluate = model.evaluator(space)
        f = evaluate(space.encode(config))
        assert f.shape == (2,)

    def test_needs_workloads(self, cluster, slos):
        with pytest.raises(ValueError):
            WhatIfModel(cluster, slos, [])

    def test_predict_schedules(self, cluster, slos, workloads, config):
        model = WhatIfModel(cluster, slos, workloads)
        schedules = model.predict_schedules(config)
        assert len(schedules) == 2


class TestProvisioningAdvisor:
    def _advisor(self, cluster, slos, config):
        return ProvisioningAdvisor(cluster, slos, config)

    def test_bigger_cluster_never_worse_ajr(self, cluster, slos, workloads, config):
        advisor = self._advisor(cluster, slos, config)
        small = advisor.estimate(workloads[0], 0.5)
        big = advisor.estimate(workloads[0], 2.0)
        # AJR (index 1) on a bigger cluster is <= on the smaller one.
        assert big.qs[1] <= small.qs[1] + 1e-9

    def test_sweep_sorted(self, cluster, slos, workloads, config):
        advisor = self._advisor(cluster, slos, config)
        sweep = advisor.sweep(workloads[0], [1.0, 0.25, 0.5])
        assert [e.fraction for e in sweep] == [0.25, 0.5, 1.0]

    def test_minimum_cluster_feasible(self, cluster, slos, workloads, config):
        advisor = self._advisor(cluster, slos, config)
        best = advisor.minimum_cluster(workloads[0], [0.25, 0.5, 1.0, 2.0])
        assert best is not None
        assert best.feasible

    def test_minimum_cluster_none_when_impossible(self, cluster, workloads, config):
        impossible = SLOSet([response_time_slo("B", threshold=0.001)])
        advisor = ProvisioningAdvisor(cluster, impossible, config)
        assert advisor.minimum_cluster(workloads[0], [0.5, 1.0]) is None

    def test_invalid_fraction(self, cluster, slos, workloads, config):
        with pytest.raises(ValueError):
            self._advisor(cluster, slos, config).estimate(workloads[0], 0.0)

    def test_estimation_errors(self, cluster, slos, config):
        advisor = self._advisor(cluster, slos, config)
        errors = advisor.estimation_errors(
            np.array([1.1, 90.0]), np.array([1.0, 100.0])
        )
        assert errors[0] == pytest.approx(0.1)
        assert errors[1] == pytest.approx(-0.1)
