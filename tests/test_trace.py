"""Unit tests for traces (task schedules) and their serialization."""

import pytest

from repro.workload.trace import JobRecord, TaskRecord, Trace


def task(
    job="j0",
    tid="t0",
    tenant="A",
    pool="slots",
    stage="s",
    submit=0.0,
    start=1.0,
    finish=5.0,
    preempted=False,
    failed=False,
    attempt=0,
    containers=1,
):
    return TaskRecord(
        job_id=job,
        task_id=tid,
        tenant=tenant,
        pool=pool,
        stage=stage,
        submit_time=submit,
        start_time=start,
        finish_time=finish,
        containers=containers,
        preempted=preempted,
        failed=failed,
        attempt=attempt,
    )


def job(jid="j0", tenant="A", submit=0.0, finish=10.0, deadline=None, n=1):
    return JobRecord(
        job_id=jid,
        tenant=tenant,
        submit_time=submit,
        finish_time=finish,
        deadline=deadline,
        num_tasks=n,
        stage_deps=(("s", ()),),
    )


class TestTaskRecord:
    def test_ordering_validation(self):
        with pytest.raises(ValueError, match="submit <= start <= finish"):
            task(start=0.5, submit=1.0)

    def test_derived_quantities(self):
        t = task(submit=0.0, start=2.0, finish=7.0, containers=3)
        assert t.service_time == pytest.approx(5.0)
        assert t.wait_time == pytest.approx(2.0)
        assert t.work == pytest.approx(15.0)
        assert t.completed

    def test_preempted_not_completed(self):
        assert not task(preempted=True).completed


class TestJobRecord:
    def test_response_time(self):
        assert job(submit=5.0, finish=25.0).response_time == pytest.approx(20.0)

    def test_deadline_slack(self):
        # finish 110, deadline 100, response 60: slack 0.25 tolerates
        # 100 + 0.25*60 = 115, so no violation; slack 0 violates.
        j = job(submit=50.0, finish=110.0, deadline=100.0)
        assert j.missed_deadline(slack=0.0)
        assert not j.missed_deadline(slack=0.25)

    def test_no_deadline_never_missed(self):
        assert not job(deadline=None).missed_deadline()

    def test_finish_before_submit_rejected(self):
        with pytest.raises(ValueError):
            job(submit=10.0, finish=5.0)


class TestTraceQueries:
    @pytest.fixture
    def trace(self):
        tasks = [
            task(job="j0", tid="t0", start=0.0, finish=10.0),
            task(job="j0", tid="t1", start=0.0, finish=4.0, preempted=True),
            task(job="j0", tid="t1", start=4.0, finish=9.0, attempt=1),
            task(job="j1", tid="u0", tenant="B", start=2.0, finish=8.0),
        ]
        jobs = [
            job(jid="j0", finish=10.0),
            job(jid="j1", tenant="B", submit=0.0, finish=8.0, deadline=9.0),
        ]
        return Trace(tasks, jobs, capacity={"slots": 2}, horizon=10.0)

    def test_tenants_pools(self, trace):
        assert trace.tenants() == {"A", "B"}
        assert trace.pools() == {"slots"}

    def test_container_seconds_excludes_preempted(self, trace):
        full = trace.container_seconds("A")
        effective = trace.container_seconds("A", include_preempted=False)
        assert full == pytest.approx(10.0 + 4.0 + 5.0)
        assert effective == pytest.approx(10.0 + 5.0)

    def test_utilization(self, trace):
        # 19 + 6 container-seconds over 2 slots * 10 s.
        assert trace.utilization() == pytest.approx(25.0 / 20.0)

    def test_preemption_fraction(self, trace):
        assert trace.preemption_fraction("A") == pytest.approx(1.0 / 3.0)
        assert trace.preemption_fraction("B") == 0.0

    def test_completed_jobs_interval(self, trace):
        assert len(trace.completed_jobs("A", (0.0, 9.0))) == 0
        assert len(trace.completed_jobs("A", (0.0, 10.0))) == 1

    def test_response_and_wait_times(self, trace):
        assert trace.response_times("B") == [pytest.approx(8.0)]
        # Only first attempts count for wait times.
        assert len(trace.wait_times("A")) == 2

    def test_job_lookup(self, trace):
        assert trace.job("j1").tenant == "B"
        with pytest.raises(KeyError):
            trace.job("ghost")

    def test_utilization_requires_capacity(self):
        t = Trace([], [], horizon=1.0)
        with pytest.raises(ValueError, match="capacity"):
            t.utilization()


class TestTraceWindowAndMerge:
    def test_window_reanchors(self):
        tasks = [task(job="j0", submit=100.0, start=101.0, finish=109.0)]
        jobs = [job(jid="j0", submit=100.0, finish=109.0, deadline=120.0)]
        tr = Trace(tasks, jobs, capacity={"slots": 1}, horizon=200.0)
        win = tr.window(100.0, 150.0)
        assert win.job_records[0].submit_time == pytest.approx(0.0)
        assert win.job_records[0].deadline == pytest.approx(20.0)
        assert win.task_records[0].start_time == pytest.approx(1.0)
        assert win.horizon == pytest.approx(50.0)

    def test_merge(self):
        t1 = Trace([task()], [job()], capacity={"slots": 1}, horizon=10.0)
        t2 = Trace(
            [task(job="j1", tid="x", tenant="B")],
            [job(jid="j1", tenant="B")],
            capacity={"slots": 1},
            horizon=20.0,
        )
        merged = Trace.merge([t1, t2])
        assert len(merged.task_records) == 2
        assert merged.horizon == 20.0


class TestTraceSerialization:
    def test_jsonl_roundtrip(self):
        tasks = [
            task(job="j0", tid="t0", preempted=True),
            task(job="j0", tid="t0", attempt=1, start=5.0, finish=9.0),
        ]
        jobs = [job(jid="j0", deadline=42.0)]
        tr = Trace(tasks, jobs, capacity={"slots": 4}, horizon=50.0)
        restored = Trace.from_jsonl(tr.to_jsonl())
        assert restored.capacity == {"slots": 4}
        assert restored.horizon == pytest.approx(50.0)
        assert len(restored.task_records) == 2
        assert restored.task_records[0].preempted
        assert restored.job_records[0].deadline == pytest.approx(42.0)
        assert restored.job_records[0].stage_deps == (("s", ()),)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            Trace.from_jsonl('{"kind": "mystery"}')


class TestTraceToWorkload:
    def test_reconstruction_uses_completed_attempts(self):
        tasks = [
            task(job="j0", tid="t0", start=0.0, finish=3.0, preempted=True),
            task(job="j0", tid="t0", attempt=1, start=3.0, finish=11.0),
        ]
        jobs = [job(jid="j0", finish=11.0)]
        tr = Trace(tasks, jobs, capacity={"slots": 1}, horizon=11.0)
        w = tr.to_workload()
        assert len(w) == 1
        only_task = w[0].stages[0].tasks[0]
        assert only_task.duration == pytest.approx(8.0)

    def test_stage_deps_restored(self):
        tasks = [
            task(job="j0", tid="m0", stage="map", start=0.0, finish=4.0),
            task(job="j0", tid="r0", stage="reduce", start=4.0, finish=9.0),
        ]
        jobs = [
            JobRecord(
                job_id="j0",
                tenant="A",
                submit_time=0.0,
                finish_time=9.0,
                num_tasks=2,
                stage_deps=(("map", ()), ("reduce", ("map",))),
            )
        ]
        tr = Trace(tasks, jobs, capacity={"slots": 2}, horizon=9.0)
        w = tr.to_workload()
        assert w[0].stage("reduce").deps == ("map",)
