"""Tests for SWIM-style scaling and Facebook/Cloudera-like synthesis."""

import numpy as np
import pytest

from repro.workload.model import Workload, mapreduce_job
from repro.workload.swim import (
    ClouderaLikeModel,
    FacebookLikeModel,
    scale_trace,
    scale_workload,
    synthesize_swim_workload,
)


@pytest.fixture
def source():
    return Workload(
        [
            mapreduce_job("A", 0.0, [10.0] * 10, [20.0] * 4, job_id="j0", deadline=300.0),
            mapreduce_job("A", 100.0, [10.0] * 6, [20.0] * 2, job_id="j1"),
        ],
        horizon=200.0,
    )


class TestScaleWorkload:
    def test_time_compression(self, source):
        scaled = scale_workload(source, time_scale=0.5)
        assert scaled[1].submit_time == pytest.approx(50.0)
        assert scaled.horizon == pytest.approx(100.0)

    def test_size_scaling_shrinks_task_counts(self, source):
        scaled = scale_workload(source, size_scale=0.5)
        assert scaled[0].stage("map").num_tasks == 5
        assert scaled[0].stage("reduce").num_tasks == 2

    def test_size_scaling_never_drops_to_zero(self, source):
        scaled = scale_workload(source, size_scale=0.01)
        for job in scaled:
            for stage in job.stages:
                assert stage.num_tasks >= 1

    def test_duration_scaling(self, source):
        scaled = scale_workload(source, duration_scale=2.0)
        assert scaled[0].stage("map").tasks[0].duration == pytest.approx(20.0)

    def test_deadline_scales_with_time(self, source):
        scaled = scale_workload(source, time_scale=0.5)
        job = scaled[0]
        assert job.deadline == pytest.approx(150.0)

    def test_invalid_scales_rejected(self, source):
        with pytest.raises(ValueError):
            scale_workload(source, time_scale=0.0)
        with pytest.raises(ValueError):
            scale_workload(source, size_scale=-1.0)

    def test_identity_scaling_preserves(self, source):
        scaled = scale_workload(source)
        assert scaled.num_tasks == source.num_tasks
        assert scaled.horizon == source.horizon


class TestScaleTrace:
    def test_roundtrip_through_trace(self, source):
        from repro.rm.cluster import ClusterSpec
        from repro.rm.config import RMConfig, TenantConfig
        from repro.sim.predictor import SchedulePredictor

        cluster = ClusterSpec({"map": 8, "reduce": 4})
        trace = SchedulePredictor(cluster).predict(
            source, RMConfig({"A": TenantConfig()})
        )
        replay = scale_trace(trace, size_scale=0.5)
        assert len(replay) == 2
        assert replay[0].stage("map").num_tasks == 5


class TestSwimModels:
    def test_facebook_heavy_tail(self, rng):
        """Most jobs tiny, a thin tail is huge (the SWIM signature)."""
        model = FacebookLikeModel().build()
        counts = [
            model.sample_job(rng, f"j{i}", 0.0).stage("map").num_tasks
            for i in range(400)
        ]
        counts = np.array(counts)
        median = np.median(counts)
        p99 = np.percentile(counts, 99)
        assert median <= 6
        assert p99 / max(median, 1) > 5.0

    def test_cloudera_has_deadlines(self, rng):
        model = ClouderaLikeModel().build()
        job = model.sample_job(rng, "j0", 0.0)
        assert job.deadline is not None

    def test_facebook_no_deadlines(self, rng):
        model = FacebookLikeModel().build()
        assert model.sample_job(rng, "j0", 0.0).deadline is None

    def test_synthesize_two_tenants(self):
        w = synthesize_swim_workload(seed=0, horizon=3600.0)
        assert w.tenants() == {"besteffort", "deadline"}
        assert len(w) > 20

    def test_synthesize_custom_names(self):
        w = synthesize_swim_workload(
            seed=0, horizon=3600.0, facebook_tenant="fb", cloudera_tenant="cdh"
        )
        assert w.tenants() == {"fb", "cdh"}
