"""Property-based fuzzing of the simulators' core invariants.

Hypothesis generates random workloads, cluster shapes, and RM
configurations; the predictor and quiet simulator must uphold:

1. **Task conservation** — every submitted task completes exactly once
   (quiet runs), plus any number of preempted attempts.
2. **Capacity safety** — at no instant does any pool's concurrent
   container occupancy exceed its capacity.
3. **Causality** — submit <= ready <= start <= finish per attempt; no
   task of a stage starts before the stage's slowstart threshold of
   upstream completions.
4. **Work conservation (predictor)** — while any tenant has pending
   tasks, a pool is never left with enough free containers to place the
   head-of-queue task (checked at completed-schedule granularity).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig, TenantConfig
from repro.sim.predictor import SchedulePredictor
from repro.sim.simulator import ClusterSimulator
from repro.workload.model import Workload, mapreduce_job, single_stage_job


@st.composite
def random_workload(draw):
    """A small random mixed workload over <= 2 tenants."""
    jobs = []
    n_jobs = draw(st.integers(1, 8))
    for i in range(n_jobs):
        tenant = draw(st.sampled_from(["A", "B"]))
        submit = draw(st.floats(0.0, 200.0))
        kind = draw(st.sampled_from(["single", "mr"]))
        if kind == "single":
            n = draw(st.integers(1, 6))
            durations = [draw(st.floats(1.0, 120.0)) for _ in range(n)]
            jobs.append(
                single_stage_job(
                    tenant, submit, durations, pool="map", job_id=f"j{i}"
                )
            )
        else:
            n_map = draw(st.integers(1, 5))
            n_red = draw(st.integers(0, 3))
            slowstart = draw(st.sampled_from([0.5, 0.8, 1.0]))
            jobs.append(
                mapreduce_job(
                    tenant,
                    submit,
                    [draw(st.floats(1.0, 60.0)) for _ in range(n_map)],
                    [draw(st.floats(1.0, 90.0)) for _ in range(n_red)],
                    slowstart=slowstart,
                    job_id=f"j{i}",
                )
            )
    return Workload(jobs, horizon=400.0)


@st.composite
def random_config(draw):
    def tenant_cfg():
        weight = draw(st.floats(0.5, 4.0))
        use_min = draw(st.booleans())
        use_timeout = draw(st.booleans())
        return TenantConfig(
            weight=weight,
            min_share={"map": draw(st.integers(0, 2))} if use_min else {},
            min_share_preemption_timeout=(
                draw(st.floats(20.0, 120.0)) if use_timeout else math.inf
            ),
            fair_share_preemption_timeout=(
                draw(st.floats(60.0, 300.0)) if use_timeout else math.inf
            ),
        )

    return RMConfig({"A": tenant_cfg(), "B": tenant_cfg()})


CLUSTER = ClusterSpec({"map": 4, "reduce": 2})


def max_concurrency(records, pool):
    """Peak concurrent container occupancy in one pool."""
    events = []
    for r in records:
        if r.pool != pool or r.finish_time <= r.start_time:
            continue
        events.append((r.start_time, r.containers))
        events.append((r.finish_time, -r.containers))
    events.sort()
    peak = level = 0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


@settings(max_examples=40, deadline=None)
@given(workload=random_workload(), config=random_config())
def test_predictor_invariants(workload, config):
    schedule = SchedulePredictor(CLUSTER).predict(workload, config)

    # 1. Task conservation.
    completed = {
        (r.job_id, r.task_id) for r in schedule.task_records if r.completed
    }
    expected = {
        (j.job_id, t.task_id) for j in workload for _, t in j.tasks()
    }
    assert completed == expected
    per_attempt = [(r.task_id, r.attempt) for r in schedule.task_records]
    assert len(per_attempt) == len(set(per_attempt))

    # 2. Capacity safety.
    for pool, cap in CLUSTER.items():
        assert max_concurrency(schedule.task_records, pool) <= cap

    # 3. Causality.
    for r in schedule.task_records:
        assert r.submit_time <= r.start_time <= r.finish_time
    for job in workload:
        rec = schedule.job(job.job_id)
        # The barrier critical path only lower-bounds barrier jobs;
        # slowstart stages may overlap and legally finish sooner.
        if all(s.ready_fraction == 1.0 for s in job.stages):
            assert rec.finish_time >= job.submit_time + job.critical_path() - 1e-6
        # A universal bound: no job finishes before its longest task
        # could have run.
        longest = max(t.duration for _, t in job.tasks())
        assert rec.finish_time >= job.submit_time + longest - 1e-6

    # Every job completed (quiet predictor never loses work).
    assert len(schedule.job_records) == len(workload)


@settings(max_examples=15, deadline=None)
@given(workload=random_workload(), config=random_config())
def test_quiet_simulator_matches_task_conservation(workload, config):
    schedule = ClusterSimulator(CLUSTER, heartbeat=2.0).run(workload, config)
    completed = {
        (r.job_id, r.task_id) for r in schedule.task_records if r.completed
    }
    expected = {(j.job_id, t.task_id) for j in workload for _, t in j.tasks()}
    assert completed == expected
    for pool, cap in CLUSTER.items():
        assert max_concurrency(schedule.task_records, pool) <= cap


@settings(max_examples=15, deadline=None)
@given(workload=random_workload(), config=random_config(), seed=st.integers(0, 99))
def test_noisy_simulator_conserves_or_kills(workload, config, seed):
    """Under noise, every task either completes or belongs to a killed
    job; capacity safety holds throughout (node restarts shrink it, so
    only the nominal bound is asserted)."""
    from repro.sim.noise import NoiseModel

    noise = NoiseModel(
        task_failure_rate=1e-3, job_kill_rate=1e-4, duration_noise=0.2
    )
    schedule = ClusterSimulator(CLUSTER, noise=noise, heartbeat=2.0).run(
        workload, config, seed=seed
    )
    completed_jobs = {j.job_id for j in schedule.job_records}
    for job in workload:
        done = {
            r.task_id
            for r in schedule.task_records
            if r.job_id == job.job_id and r.completed
        }
        if job.job_id in completed_jobs:
            assert len(done) == job.num_tasks
    for pool, cap in CLUSTER.items():
        assert max_concurrency(schedule.task_records, pool) <= cap


class TestWorkConservation:
    def test_no_unnecessary_idling(self):
        """With one tenant and ample identical tasks, the predictor keeps
        the pool saturated until the backlog drains."""
        cluster = ClusterSpec({"map": 4})
        workload = Workload(
            [single_stage_job("A", 0.0, [10.0] * 12, pool="map", job_id="j")]
        )
        schedule = SchedulePredictor(cluster).predict(
            workload, RMConfig({"A": TenantConfig()})
        )
        # 12 tasks of 10s on 4 slots: makespan exactly 30s, pool busy
        # 120 container-seconds = 100% of 4 * 30.
        assert schedule.job("j").finish_time == pytest.approx(30.0)
        busy = sum(r.work for r in schedule.task_records)
        assert busy == pytest.approx(120.0)

    def test_two_pools_progress_independently(self):
        cluster = ClusterSpec({"map": 2, "reduce": 2})
        workload = Workload(
            [
                mapreduce_job("A", 0.0, [10.0] * 2, [10.0] * 2, job_id="a"),
                mapreduce_job("B", 0.0, [10.0] * 2, [10.0] * 2, job_id="b"),
            ]
        )
        schedule = SchedulePredictor(cluster).predict(
            workload, RMConfig({"A": TenantConfig(), "B": TenantConfig()})
        )
        # Maps share the map pool (1 each, two waves: done at 20);
        # reduces start right after each job's maps finish.
        for job_id in ("a", "b"):
            assert schedule.job(job_id).finish_time <= 40.0 + 1e-6
