"""Tests for the durable serving state: journal, snapshots, resume."""

import json
import math

import numpy as np
import pytest

from repro.service.daemon import ServiceConfig, TempoService
from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    NodeRecovered,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.ingest import RollingWindow, stats_gap
from repro.service.journal import (
    EventJournal,
    JournalError,
    decode_event,
    encode_event,
    last_heartbeat,
)
from repro.service.replay import build_controller, build_service, make_scenario
from repro.service.snapshot import (
    ServiceState,
    SnapshotStore,
    config_from_dict,
    config_to_dict,
)
from repro.workload.trace import JobRecord, TaskRecord


def _task(job_id, task_id, tenant, finish, duration, **kwargs):
    start = finish - duration
    return TaskRecord(
        job_id=job_id,
        task_id=task_id,
        tenant=tenant,
        pool="map",
        stage="map",
        submit_time=max(start - 1.0, 0.0),
        start_time=start,
        finish_time=finish,
        **kwargs,
    )


def _events(seed=0, count=400, tenants=("deadline", "besteffort")):
    """Deterministic telemetry stream (same shape as the service tests)."""
    rng = np.random.default_rng(seed)
    events, t = [], 0.0
    for i in range(count):
        t += float(rng.exponential(20.0))
        tenant = tenants[i % len(tenants)]
        job_id = f"{tenant}-{i}"
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        duration = float(rng.lognormal(3.0 + 0.5 * (i % 3), 0.8))
        finish = t + duration
        events.append(
            TaskCompleted(
                finish,
                record=_task(
                    job_id,
                    f"{job_id}/t0",
                    tenant,
                    finish,
                    duration,
                    preempted=(i % 17 == 0),
                    failed=(i % 23 == 0),
                ),
            )
        )
        events.append(
            JobCompleted(
                finish,
                record=JobRecord(
                    job_id=job_id, tenant=tenant, submit_time=t, finish_time=finish
                ),
            )
        )
    events.sort(key=lambda e: e.time)
    return events


def _build(state=None, seed=0, **controller_kwargs):
    scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
    return build_service(
        scenario,
        ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3),
        seed=seed,
        state=state,
        **controller_kwargs,
    )


def _service_config():
    return ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3)


ALL_EVENT_SHAPES = [
    JobSubmitted(1.0, tenant="A", job_id="a0", deadline=9.5),
    JobSubmitted(1.5, tenant="A", job_id="a1"),
    TaskCompleted(
        2.0,
        record=_task("a0", "a0/t0", "A", 2.0, 1.0, preempted=True, attempt=1),
    ),
    JobCompleted(
        2.5,
        record=JobRecord(
            job_id="a0",
            tenant="A",
            submit_time=1.0,
            finish_time=2.5,
            deadline=9.5,
            num_tasks=2,
            tags=("etl", "batch"),
            stage_deps=(("map", ()), ("reduce", ("map",))),
        ),
    ),
    NodeLost(3.0, pool="map", containers=2),
    NodeRecovered(3.5, pool="map", containers=1),
    TenantJoined(4.0, tenant="B"),
    TenantLeft(5.0, tenant="B"),
    Heartbeat(6.0),
]


class TestEventCodec:
    def test_roundtrip_every_event_type(self):
        for event in ALL_EVENT_SHAPES:
            assert decode_event(encode_event(event)) == event

    def test_unknown_event_type_rejected(self):
        with pytest.raises(JournalError):
            decode_event({"type": "Mystery", "time": 0.0})


class TestEventJournal:
    def test_append_iter_roundtrip_with_rotation(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=3)
        for event in ALL_EVENT_SHAPES:
            journal.append("event", encode_event(event))
        journal.close()
        assert len(journal.segments()) == 3  # 9 records / 3 per segment
        records = list(EventJournal(tmp_path).iter_records())
        assert [r.seq for r in records] == list(range(1, 10))
        assert [decode_event(r.data) for r in records] == ALL_EVENT_SHAPES

    def test_seq_continues_across_reopen(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=4)
        journal.append("event", encode_event(Heartbeat(1.0)))
        journal.close()
        reopened = EventJournal(tmp_path, segment_records=4)
        assert reopened.append("event", encode_event(Heartbeat(2.0))) == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=100)
        for i in range(5):
            journal.append("event", encode_event(Heartbeat(float(i))))
        journal.close()
        segment = journal.segments()[-1]
        with segment.open("a") as fh:
            fh.write('deadbeef {"seq": 6, "kin')  # the interrupted append
        reopened = EventJournal(tmp_path)
        assert reopened.last_seq == 5
        assert len(list(reopened.iter_records())) == 5

    def test_mid_segment_corruption_raises(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=100)
        for i in range(5):
            journal.append("event", encode_event(Heartbeat(float(i))))
        journal.close()
        segment = journal.segments()[-1]
        lines = segment.read_text().splitlines()
        lines[1] = lines[1][:-3] + "xyz"  # flip bytes inside an early record
        segment.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(JournalError):
            list(EventJournal(tmp_path).iter_records())

    def test_iter_after_skips_whole_segments(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=2)
        for i in range(7):
            journal.append("event", encode_event(Heartbeat(float(i))))
        journal.close()
        assert [r.seq for r in journal.iter_records(after=5)] == [6, 7]

    def test_truncate_after_rewrites_and_reopens(self, tmp_path):
        journal = EventJournal(tmp_path, segment_records=3)
        for i in range(8):
            journal.append("event", encode_event(Heartbeat(float(i))))
        journal.close()
        removed = journal.truncate_after(4)
        assert removed == 4
        assert journal.last_seq == 4
        assert journal.append("event", encode_event(Heartbeat(99.0))) == 5
        seqs = [r.seq for r in EventJournal(tmp_path).iter_records()]
        assert seqs == [1, 2, 3, 4, 5]

    def test_last_heartbeat_finds_chunk_boundary(self, tmp_path):
        journal = EventJournal(tmp_path)
        journal.append("event", encode_event(JobSubmitted(1.0, tenant="A", job_id="a")))
        hb_seq = journal.append("event", encode_event(Heartbeat(300.0)))
        journal.append("event", encode_event(JobSubmitted(301.0, tenant="A", job_id="b")))
        journal.close()
        assert last_heartbeat(journal) == (hb_seq, 300.0)

    def test_last_heartbeat_none_when_absent(self, tmp_path):
        journal = EventJournal(tmp_path)
        assert last_heartbeat(journal) is None


class TestSnapshotStore:
    def test_write_load_prune(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (10, 20, 30):
            store.write(seq, {"value": seq})
        assert len(store.paths()) == 2  # pruned to keep=2
        assert store.load_latest() == (30, {"value": 30})
        assert store.load_latest(max_seq=25) == (20, {"value": 20})

    def test_corrupt_snapshot_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.write(10, {"value": 10})
        newest = store.write(20, {"value": 20})
        newest.write_text("garbage not a snapshot\n")
        assert store.load_latest() == (10, {"value": 10})

    def test_truncate_after_drops_newer(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=5)
        for seq in (10, 20, 30):
            store.write(seq, {"value": seq})
        assert store.truncate_after(15) == 2
        assert store.load_latest() == (10, {"value": 10})


class TestConfigCodec:
    def test_roundtrip_preserves_infinite_timeouts(self):
        scenario = make_scenario("steady", scale=1.0, horizon=600.0)
        config = scenario.initial_config
        restored = config_from_dict(config_to_dict(config))
        assert restored.describe() == config.describe()
        for name in config.tenant_names():
            a, b = config.tenant(name), restored.tenant(name)
            assert math.isinf(a.min_share_preemption_timeout) == math.isinf(
                b.min_share_preemption_timeout
            )


class TestWindowState:
    def test_state_roundtrip_matches_batch_recompute(self):
        window = RollingWindow(600.0)
        for event in _events(seed=11):
            if isinstance(event, (JobSubmitted, TaskCompleted, JobCompleted)):
                window.ingest(event)
        restored = RollingWindow.from_state(window.to_state())
        assert restored.now == window.now
        assert restored.events_ingested == window.events_ingested
        assert stats_gap(restored) < 1e-9
        a, b = window.snapshot(), restored.snapshot()
        assert set(a) == set(b)
        for name in a:
            for field in (
                "jobs",
                "tasks",
                "submitted",
                "arrival_rate",
                "mean_response",
                "log_duration_mean",
                "log_duration_std",
                "preempted_fraction",
                "failed_fraction",
            ):
                assert abs(getattr(a[name], field) - getattr(b[name], field)) < 1e-9

    def test_state_is_json_serializable(self):
        window = RollingWindow(300.0)
        for event in _events(seed=12, count=40):
            if isinstance(event, (JobSubmitted, TaskCompleted, JobCompleted)):
                window.ingest(event)
        text = json.dumps(window.to_state())
        restored = RollingWindow.from_state(json.loads(text))
        assert stats_gap(restored) < 1e-9


def _assert_equivalent(live: TempoService, resumed: TempoService) -> None:
    """Full serving-state equivalence between a live and a resumed daemon."""
    assert resumed.events_processed == live.events_processed
    assert stats_gap(resumed.window) < 1e-9
    a, b = live.window.snapshot(), resumed.window.snapshot()
    assert set(a) == set(b)
    for name in a:
        for field in (
            "jobs",
            "tasks",
            "submitted",
            "arrival_rate",
            "mean_response",
            "log_duration_mean",
            "log_duration_std",
        ):
            assert abs(getattr(a[name], field) - getattr(b[name], field)) < 1e-9
    assert [(d.time, d.retuned, d.reason) for d in live.decisions] == [
        (d.time, d.retuned, d.reason) for d in resumed.decisions
    ]
    assert [(h.index, h.config.describe()) for h in live.config_history] == [
        (h.index, h.config.describe()) for h in resumed.config_history
    ]
    assert live.rm_config.describe() == resumed.rm_config.describe()
    np.testing.assert_allclose(live.controller.x, resumed.controller.x)
    assert live.active_tenants == resumed.active_tenants
    assert live.lost_capacity == resumed.lost_capacity


class TestResume:
    def test_resume_reconstructs_full_state(self, tmp_path):
        """The acceptance property: kill, resume, identical window stats."""
        state = ServiceState(tmp_path, segment_records=64, snapshot_every=300)
        live = _build(state=state)
        events = _events(seed=1)
        mid = events[len(events) // 2].time
        events.append(NodeLost(mid, pool="map", containers=3))
        events.append(TenantJoined(mid + 1.0, tenant="newbie"))
        events.sort(key=lambda e: e.time)
        for event in events:
            live.process(event)
        state.close()
        assert live.retunes >= 2
        assert len(state.journal.segments()) > 1  # rotation actually happened
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        _assert_equivalent(live, resumed)

    def test_resume_after_torn_segment_write(self, tmp_path):
        """Kill mid-journal-append: the torn record is dropped, not fatal."""
        state = ServiceState(tmp_path, segment_records=64, snapshot_every=300)
        live = _build(state=state)
        events = _events(seed=2)
        for event in events[:-1]:
            live.process(event)
        state.close()
        segment = state.journal.segments()[-1]
        with segment.open("a") as fh:
            fh.write('0badc0de {"seq": 1234, "kind": "ev')  # interrupted append
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        # The torn record never counted: the resumed daemon holds
        # exactly the acknowledged prefix, self-consistent to 1e-9.
        assert resumed.events_processed == len(events) - 1
        assert stats_gap(resumed.window) < 1e-9

    def test_resume_without_snapshots_replays_whole_journal(self, tmp_path):
        state = ServiceState(tmp_path, snapshot_every=10**9)
        live = _build(state=state)
        for event in _events(seed=3, count=150):
            live.process(event)
        state.close()
        # Lose every snapshot: recovery must fall back to the journal.
        for path in state.snapshots.paths():
            path.unlink()
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        _assert_equivalent(live, resumed)

    def test_resumed_daemon_continues_identically(self, tmp_path):
        """Processing the remaining stream after resume matches the live run."""
        state = ServiceState(tmp_path, segment_records=64, snapshot_every=200)
        live = _build(state=state)
        events = _events(seed=4)
        cut = len(events) // 2
        for event in events[:cut]:
            live.process(event)
        state.close()
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        resumed.state = None  # compare pure in-memory continuation
        live.state = None
        for event in events[cut:]:
            live.process(event)
            resumed.process(event)
        assert live.retunes == resumed.retunes
        assert [(d.time, d.retuned, d.reason) for d in live.decisions] == [
            (d.time, d.retuned, d.reason) for d in resumed.decisions
        ]
        assert stats_gap(resumed.window) < 1e-9

    def test_quiesce_waits_for_bus_events_after_resume(self, tmp_path):
        """The drain barrier must count bus deliveries, not total events.

        A resumed daemon's ``events_processed`` already includes the
        journal-restored history, so comparing it against the fresh
        bus's published count would make quiesce return while the last
        delivery is still mid-retune.
        """
        state = ServiceState(tmp_path)
        live = _build(state=state)
        for event in _events(seed=6, count=120):
            live.process(event)
        state.close()
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        prior = resumed.events_processed
        extra = _events(seed=7, count=60)
        resumed.start()
        try:
            for event in extra:
                assert resumed.submit(event)
            resumed.quiesce()
            assert resumed.events_processed == prior + len(extra)
            assert resumed._bus_consumed == resumed.bus.published
        finally:
            resumed.stop()

    def test_applied_tune_is_one_atomic_journal_record(self, tmp_path):
        """A retune's decision and config are never split across records.

        If they were two appends, a crash between them would resume
        into a state the live daemon never had (tune logged as applied,
        old config still in force).
        """
        state = ServiceState(tmp_path, snapshot_every=10**9)
        live = _build(state=state)
        for event in _events(seed=8, count=200):
            live.process(event)
        state.close()
        assert live.retunes >= 1
        kinds = {"decision": 0, "config": 0}
        for record in state.journal.iter_records():
            if record.kind == "decision":
                assert record.data["retuned"] is False
                kinds["decision"] += 1
            elif record.kind == "config":
                assert record.data["decision"]["retuned"] is True
                assert "controller" in record.data
                kinds["config"] += 1
        assert kinds["config"] == live.retunes
        assert kinds["decision"] == live.skips

    def test_rollback_is_journaled(self, tmp_path):
        state = ServiceState(tmp_path, snapshot_every=10**9)
        live = _build(state=state)
        for event in _events(seed=5):
            live.process(event)
        assert live.retunes >= 2
        rolled_back_to = live.rollback()
        assert rolled_back_to is not None
        state.close()
        resumed = TempoService.resume(
            build_controller(make_scenario("steady", scale=1.0, horizon=3600.0)),
            tmp_path,
            _service_config(),
        )
        assert resumed.rm_config.describe() == live.rm_config.describe()
        assert len(resumed.config_history) == len(live.config_history)


class TestServiceState:
    def test_meta_roundtrip(self, tmp_path):
        state = ServiceState(tmp_path)
        assert state.read_meta() is None
        state.write_meta({"scenario": "steady", "seed": 7})
        assert state.read_meta() == {"scenario": "steady", "seed": 7}

    def test_truncate_drops_journal_and_snapshots(self, tmp_path):
        state = ServiceState(tmp_path, snapshot_every=10**9)
        for i in range(6):
            state.record_event(encode_event(Heartbeat(float(i))))
        state.write_snapshot({"at": 6})
        state.record_event(encode_event(Heartbeat(6.0)))
        state.truncate_after(3)
        assert state.journal.last_seq == 3
        assert state.load_latest_snapshot() is None  # snapshot was past seq 3


class TestCliResume:
    def test_serve_state_dir_then_resume(self, tmp_path):
        import io

        from repro.cli import main

        state_dir = str(tmp_path / "state")
        out = io.StringIO()
        code = main(
            [
                "serve",
                "--scenario",
                "steady",
                "--horizon",
                "0.3",
                "--seed",
                "1",
                "--state-dir",
                state_dir,
            ],
            out=out,
        )
        assert code == 0
        assert "state-dir" in out.getvalue()
        out = io.StringIO()
        code = main(["resume", "--state-dir", state_dir], out=out)
        assert code == 0
        text = out.getvalue()
        assert "resumed from" in text
        assert "final configuration" in text

    def test_resume_continues_interrupted_run(self, tmp_path):
        """Emulate a crash by journaling only a prefix, then CLI-resume."""
        import io

        from repro.cli import main
        from repro.service.replay import ScenarioReplayer

        state_dir = tmp_path / "state"
        state = ServiceState(state_dir)
        scenario = make_scenario("steady", scale=1.0, horizon=1800.0)
        config = ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3)
        state.write_meta(
            {
                "scenario": "steady",
                "scale": 1.0,
                "horizon": 1800.0,
                "seed": 1,
                "window": 600.0,
                "interval": 300.0,
                "drift": 0.02,
                "speedup": 0.0,
                "transport": "direct",
                "revert_windows": 1,
                "continuous": True,
            }
        )
        service = build_service(scenario, config, seed=1, state=state)
        ScenarioReplayer(scenario, service, seed=1).run(900.0)  # dies at 900s
        state.close()
        out = io.StringIO()
        code = main(["resume", "--state-dir", str(state_dir)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "continuing scenario=steady from t=900s" in text
        assert "final configuration" in text

    def test_drain_crash_resimulates_final_interval(self, tmp_path):
        """A crash during the final drain re-simulates the last interval.

        The horizon heartbeat is only journaled after the drain, so a
        mid-drain kill leaves the boundary at the previous interval and
        resume regenerates the final interval *and* its backlog drain —
        no completion telemetry is silently lost.
        """
        import io

        from repro.cli import main
        from repro.service.replay import ScenarioReplayer

        state_dir = tmp_path / "state"
        state = ServiceState(state_dir)
        state.write_meta(
            {
                "scenario": "steady",
                "scale": 3.0,
                "horizon": 1350.0,
                "seed": 5,
                "window": 900.0,
                "interval": 450.0,
                "drift": 0.02,
                "speedup": 0.0,
                "transport": "direct",
                "revert_windows": 1,
                "continuous": True,
            }
        )
        scenario = make_scenario("steady", scale=3.0, horizon=1350.0)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=5,
            state=state,
        )
        ScenarioReplayer(scenario, service, seed=5, verify_stats=False).run()
        state.close()
        # The closing heartbeat at the horizon is journaled only after
        # the drain delivered completely.
        boundary = last_heartbeat(state.journal)
        assert boundary is not None and boundary[1] == 1350.0
        # Emulate dying mid-drain: drop the closing heartbeat and the
        # drain tail.  The newest surviving heartbeat is now the last
        # *full* interval's, before the horizon.
        state.truncate_after(boundary[0] - 3)
        rewound = last_heartbeat(state.journal)
        assert rewound is not None and rewound[1] < 1350.0
        out = io.StringIO()
        code = main(["resume", "--state-dir", str(state_dir)], out=out)
        assert code == 0
        assert f"continuing scenario=steady from t={rewound[1]:.0f}s" in out.getvalue()
        # The re-driven run journaled the final interval and its drain.
        assert last_heartbeat(EventJournal(state_dir / "journal"))[1] == 1350.0

    def test_resumed_run_summary_covers_only_new_decisions(self, tmp_path):
        from repro.service.replay import ScenarioReplayer

        state_dir = tmp_path / "state"
        state = ServiceState(state_dir)
        scenario = make_scenario("steady", scale=1.0, horizon=1800.0)
        config = ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3)
        service = build_service(scenario, config, seed=1, state=state)
        first = ScenarioReplayer(scenario, service, seed=1).run(900.0)
        state.close()
        assert first.retunes >= 1
        resumed = TempoService.resume(
            build_controller(scenario), state_dir, config
        )
        second = ScenarioReplayer(scenario, resumed, seed=1).run(1800.0, start=900.0)
        assert all(d.time >= 900.0 for d in second.decisions)
        assert second.retunes == sum(1 for d in second.decisions if d.retuned)
        # The daemon's full history still covers both run segments.
        assert resumed.retunes >= first.retunes + second.retunes

    def test_serve_refuses_dirty_state_dir(self, tmp_path):
        import io

        from repro.cli import main

        state_dir = str(tmp_path / "state")
        state = ServiceState(state_dir)
        state.record_event(encode_event(Heartbeat(1.0)))
        state.close()
        with pytest.raises(SystemExit, match="resume"):
            main(
                ["serve", "--scenario", "steady", "--state-dir", state_dir],
                out=io.StringIO(),
            )

    def test_resume_requires_meta(self, tmp_path):
        import io

        from repro.cli import main

        with pytest.raises(SystemExit, match="meta.json"):
            main(["resume", "--state-dir", str(tmp_path)], out=io.StringIO())

    def test_resume_does_not_create_state_dir_on_typo(self, tmp_path):
        """A typo'd --state-dir must not leave a valid-looking state tree."""
        import io

        from repro.cli import main

        missing = tmp_path / "staet"
        with pytest.raises(SystemExit, match="meta.json"):
            main(["resume", "--state-dir", str(missing)], out=io.StringIO())
        assert not missing.exists()
