"""Tests for the sharded serving pipeline: router, shards, merged
statistics, sharded durability/resume, worker processes, resharding,
and trace-file replay."""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.service.daemon import ServiceConfig, TempoService
from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.ingest import RollingWindow, TenantWindowStats, stats_gap
from repro.service.journal import JournalError
from repro.service.replay import (
    ScenarioReplayer,
    build_controller,
    build_service,
    dump_trace_events,
    load_trace_events,
    make_scenario,
    replay_trace,
)
from repro.service.sharding import (
    IngestShard,
    ShardRouter,
    stable_shard,
    tenant_of,
)
from repro.service.snapshot import ServiceState
from repro.workload.trace import JobRecord, TaskRecord

TENANTS = tuple(f"tenant-{i:02d}" for i in range(11))


def _task(job_id, task_id, tenant, finish, duration, **kwargs):
    start = finish - duration
    return TaskRecord(
        job_id=job_id,
        task_id=task_id,
        tenant=tenant,
        pool="map",
        stage="map",
        submit_time=max(start - 1.0, 0.0),
        start_time=start,
        finish_time=finish,
        **kwargs,
    )


def _events(seed=0, count=400, tenants=TENANTS, controls=True):
    """Deterministic many-tenant telemetry stream with control events."""
    rng = np.random.default_rng(seed)
    events, t = [], 0.0
    for i in range(count):
        t += float(rng.exponential(8.0))
        tenant = tenants[i % len(tenants)]
        job_id = f"{tenant}-{i}"
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        duration = float(rng.lognormal(3.0 + 0.4 * (i % 3), 0.8))
        finish = t + duration
        events.append(
            TaskCompleted(
                finish,
                record=_task(
                    job_id,
                    f"{job_id}/t0",
                    tenant,
                    finish,
                    duration,
                    preempted=(i % 17 == 0),
                    failed=(i % 23 == 0),
                ),
            )
        )
        events.append(
            JobCompleted(
                finish,
                record=JobRecord(
                    job_id=job_id, tenant=tenant, submit_time=t, finish_time=finish
                ),
            )
        )
    events.sort(key=lambda e: e.time)
    if controls:
        mid = events[len(events) // 2].time
        events.append(NodeLost(mid, pool="map", containers=2))
        events.append(TenantLeft(mid + 1.0, tenant=tenants[3]))
        events.append(Heartbeat(events[-1].time + 10.0))
        events.sort(key=lambda e: e.time)
    return events


def _stats_close(a, b, tol=1e-9):
    assert set(a) == set(b)
    fields = (
        "jobs",
        "tasks",
        "submitted",
        "duration_samples",
        "arrival_rate",
        "mean_response",
        "log_duration_mean",
        "log_duration_std",
        "preempted_fraction",
        "failed_fraction",
    )
    for name in a:
        for field in fields:
            assert abs(getattr(a[name], field) - getattr(b[name], field)) <= tol, (
                name,
                field,
            )


def _service_config(**overrides):
    defaults = dict(window=600.0, retune_interval=300.0, min_window_jobs=3)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _scenario():
    return make_scenario("steady", scale=1.0, horizon=3600.0)


class TestShardRouter:
    def test_assignment_stable_and_in_range(self):
        router = ShardRouter(4)
        for tenant in TENANTS:
            shard = router.shard_of(tenant)
            assert 0 <= shard < 4
            assert shard == router.shard_of(tenant)  # memoized
            assert shard == stable_shard(tenant, 4)  # fresh hash agrees
            assert shard == ShardRouter(4).shard_of(tenant)  # cross-instance

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert all(router.shard_of(t) == 0 for t in TENANTS)

    def test_tenant_of_every_event_shape(self):
        assert tenant_of(JobSubmitted(1.0, tenant="A", job_id="a")) == "A"
        assert tenant_of(TenantJoined(1.0, tenant="B")) == "B"
        assert tenant_of(TenantLeft(1.0, tenant="C")) == "C"
        task = TaskCompleted(2.0, record=_task("a", "a/t", "D", 2.0, 1.0))
        assert tenant_of(task) == "D"
        job = JobCompleted(
            2.0, record=JobRecord(job_id="a", tenant="E", submit_time=1.0, finish_time=2.0)
        )
        assert tenant_of(job) == "E"
        assert tenant_of(Heartbeat(1.0)) is None
        assert tenant_of(NodeLost(1.0, pool="map")) is None

    def test_partition_preserves_order_and_broadcasts_heartbeats(self):
        router = ShardRouter(3)
        events = _events(seed=1, count=60)
        parts, control = router.partition(events)
        # Every tenant event lands in exactly its owner's list, in order.
        for i, part in enumerate(parts):
            times = [e.time for e in part]
            assert times == sorted(times)
            for event in part:
                tenant = tenant_of(event)
                if tenant is not None:
                    assert router.shard_of(tenant) == i
        # Heartbeats appear in the control list AND every shard list.
        heartbeats = [e for e in events if isinstance(e, Heartbeat)]
        assert heartbeats
        for part in parts:
            assert [e for e in part if isinstance(e, Heartbeat)] == heartbeats
        assert [e for e in control if isinstance(e, Heartbeat)] == heartbeats
        # NodeLost is control-plane only.
        assert any(isinstance(e, NodeLost) for e in control)
        assert not any(
            isinstance(e, NodeLost) for part in parts for e in part
        )

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestMergedStatistics:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_merged_equals_single_window_batch_recompute(self, shards):
        """The acceptance property: N-shard merged stats == single-window
        batch recompute to 1e-9, across random streams and shard counts."""
        for seed in (0, 1, 2):
            events = [
                e
                for e in _events(seed=seed, count=300, controls=False)
                if isinstance(e, (JobSubmitted, TaskCompleted, JobCompleted))
            ]
            reference = RollingWindow(500.0)
            router = ShardRouter(shards)
            windows = [RollingWindow(500.0) for _ in range(shards)]
            for event in events:
                reference.ingest(event)
                windows[router.route(event)].ingest(event)
            now = reference.now
            for window in windows:
                window.advance(now)
            merged = RollingWindow.merge_states([w.to_state() for w in windows])
            assert merged.now == reference.now
            assert merged.events_ingested == reference.events_ingested
            _stats_close(merged.snapshot(), reference.batch_recompute())
            assert stats_gap(merged) < 1e-9

    def test_merge_states_rejects_mismatched_window_lengths(self):
        a, b = RollingWindow(100.0), RollingWindow(200.0)
        with pytest.raises(ValueError, match="window lengths"):
            RollingWindow.merge_states([a.to_state(), b.to_state()])

    def test_merge_states_interleaves_split_tenant(self):
        """A tenant split across states (mid-reshard shape) still merges
        to the single-window statistics."""
        events = [
            e
            for e in _events(seed=5, count=200, tenants=("only",), controls=False)
            if isinstance(e, (JobSubmitted, TaskCompleted, JobCompleted))
        ]
        reference = RollingWindow(400.0)
        halves = [RollingWindow(400.0), RollingWindow(400.0)]
        for i, event in enumerate(events):
            reference.ingest(event)
            halves[i % 2].ingest(event)
        for half in halves:
            half.advance(reference.now)
        merged = RollingWindow.merge_states([h.to_state() for h in halves])
        _stats_close(merged.snapshot(), reference.batch_recompute())

    def test_tenant_stats_merged_inverts_sums(self):
        window = RollingWindow(600.0)
        events = [
            e
            for e in _events(seed=7, count=120, tenants=("t",), controls=False)
            if isinstance(e, (JobSubmitted, TaskCompleted, JobCompleted))
        ]
        for event in events:
            window.ingest(event)
        whole = window.snapshot()["t"]
        # Split the same entries across two windows and merge the stats.
        halves = [RollingWindow(600.0), RollingWindow(600.0)]
        for i, event in enumerate(events):
            halves[i % 2].ingest(event)
        for half in halves:
            half.advance(window.now)
        parts = [h.snapshot().get("t") for h in halves]
        merged = TenantWindowStats.merged(
            [p for p in parts if p is not None], 600.0
        )
        for field in (
            "jobs",
            "tasks",
            "submitted",
            "duration_samples",
        ):
            assert getattr(merged, field) == getattr(whole, field)
        for field in (
            "arrival_rate",
            "mean_response",
            "log_duration_mean",
            "log_duration_std",
            "preempted_fraction",
            "failed_fraction",
        ):
            assert abs(getattr(merged, field) - getattr(whole, field)) < 1e-9

    def test_merged_rejects_mixed_tenants_and_empty(self):
        a = TenantWindowStats("a", 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        b = TenantWindowStats("b", 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            TenantWindowStats.merged([a, b], 100.0)
        with pytest.raises(ValueError):
            TenantWindowStats.merged([], 100.0)


class TestShardedService:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_same_decisions_and_stats_as_single_shard(self, shards):
        """The control plane decides identically however the data plane
        is sharded: same retunes, same reasons, same final config."""
        events = _events(seed=3, count=500)
        single = build_service(_scenario(), _service_config(), seed=0)
        sharded = build_service(
            _scenario(), _service_config(), seed=0, shards=shards
        )
        for i in range(0, len(events), 111):
            single.ingest_batch(events[i : i + 111])
            sharded.ingest_batch(events[i : i + 111])
        assert sharded.num_shards == shards
        assert sharded.retunes == single.retunes >= 1
        assert [(d.time, d.retuned, d.reason) for d in single.decisions] == [
            (d.time, d.retuned, d.reason) for d in sharded.decisions
        ]
        assert (
            single.rm_config.describe() == sharded.rm_config.describe()
        )
        # Merged window view equals the single live window.
        merged = sharded.window
        merged.advance(single.window.now)
        _stats_close(merged.snapshot(), single.window.batch_recompute())
        assert single.active_tenants == sharded.active_tenants
        assert single.lost_capacity == sharded.lost_capacity
        assert sharded.telemetry_ingested == single.telemetry_ingested
        assert sharded.stats_gap_now() < 1e-9

    def test_process_and_ingest_batch_agree_when_sharded(self):
        events = _events(seed=9, count=200)
        by_event = build_service(_scenario(), _service_config(), seed=0, shards=3)
        by_batch = build_service(_scenario(), _service_config(), seed=0, shards=3)
        for event in events:
            by_event.process(event)
        by_batch.ingest_batch(events)
        assert by_event.events_processed == by_batch.events_processed
        assert [(d.time, d.retuned, d.reason) for d in by_event.decisions] == [
            (d.time, d.retuned, d.reason) for d in by_batch.decisions
        ]
        a = by_event.window
        b = by_batch.window
        b.advance(a.now)
        _stats_close(a.snapshot(), b.batch_recompute())

    def test_tenant_left_drops_state_in_owning_shard_only(self):
        service = build_service(_scenario(), _service_config(), seed=0, shards=4)
        events = [
            e for e in _events(seed=4, count=150, controls=False)
        ]
        service.ingest_batch(events)
        victim = TENANTS[0]
        owner = service.router.shard_of(victim)
        assert victim in service.shards[owner].window.tenants()
        service.process(TenantLeft(service.now, tenant=victim))
        assert victim not in service.shards[owner].window.tenants()
        assert victim not in service.active_tenants
        assert service._force  # churn voids the stability conclusion

    def test_state_mismatch_rejected(self, tmp_path):
        state = ServiceState(tmp_path, shards=2)
        with pytest.raises(ValueError, match="reshard"):
            build_service(_scenario(), _service_config(), state=state, shards=4)


class TestShardedDurability:
    def _run_durable(self, tmp_path, shards, events, workers=False):
        state = ServiceState(tmp_path, shards=shards, snapshot_every=400)
        service = build_service(
            _scenario(),
            _service_config(),
            seed=0,
            state=state,
            shards=shards,
            shard_workers=workers,
        )
        for i in range(0, len(events), 113):
            service.ingest_batch(events[i : i + 113])
        service.close()
        state.close()
        return service

    def test_sharded_layout_on_disk(self, tmp_path):
        events = _events(seed=2, count=200)
        self._run_durable(tmp_path, 3, events)
        assert (tmp_path / "journal").is_dir()  # control journal
        for i in range(3):
            assert (tmp_path / f"shard-{i:02d}" / "journal").is_dir()
        # Telemetry lives only in shard journals; the control journal
        # holds control events and decision/config records.
        control = (tmp_path / "journal").glob("segment-*.jsonl")
        for path in control:
            for line in path.read_text().splitlines():
                body = json.loads(line.split(" ", 1)[1])
                if body["kind"] == "event":
                    assert body["data"]["type"] in (
                        "Heartbeat",
                        "NodeLost",
                        "NodeRecovered",
                    )

    def test_resume_restores_sharded_state(self, tmp_path):
        """Acceptance: sharded serve -> kill -> resume restores window
        stats and config history across all per-shard journals."""
        events = _events(seed=1, count=500)
        live = self._run_durable(tmp_path, 4, events)
        assert live.retunes >= 2
        resumed = TempoService.resume(
            build_controller(_scenario()), tmp_path, _service_config(), shards=4
        )
        assert resumed.num_shards == 4
        assert resumed.events_processed == live.events_processed
        assert resumed.telemetry_ingested == live.telemetry_ingested
        a, b = live.window.snapshot(), resumed.window.snapshot()
        _stats_close(a, b)
        assert resumed.stats_gap_now() < 1e-9
        assert [(d.time, d.retuned, d.reason) for d in live.decisions] == [
            (d.time, d.retuned, d.reason) for d in resumed.decisions
        ]
        assert [
            (h.index, h.config.describe()) for h in live.config_history
        ] == [(h.index, h.config.describe()) for h in resumed.config_history]
        assert live.rm_config.describe() == resumed.rm_config.describe()
        assert live.active_tenants == resumed.active_tenants
        assert live.lost_capacity == resumed.lost_capacity
        resumed.close()

    def test_resume_without_snapshots_replays_all_tails(self, tmp_path):
        events = _events(seed=6, count=250)
        state = ServiceState(tmp_path, shards=3, snapshot_every=10**9)
        live = build_service(
            _scenario(), _service_config(), seed=0, state=state, shards=3
        )
        live.ingest_batch(events)
        live.close()
        state.close()
        resumed = TempoService.resume(
            build_controller(_scenario()), tmp_path, _service_config(), shards=3
        )
        assert resumed.events_processed == live.events_processed
        _stats_close(live.window.snapshot(), resumed.window.snapshot())
        resumed.close()

    def test_resume_shard_count_mismatch_refused(self, tmp_path):
        events = _events(seed=2, count=200)
        self._run_durable(tmp_path, 2, events)
        state = ServiceState(tmp_path, shards=2)
        with pytest.raises(ValueError, match="reshard"):
            TempoService.resume(
                build_controller(_scenario()), state, _service_config(), shards=4
            )
        state.close()
        # Through a path + mismatching layout: the snapshot's recorded
        # layout must refuse a silently re-routed resume.
        with pytest.raises((JournalError, ValueError)):
            TempoService.resume(
                build_controller(_scenario()), tmp_path, _service_config(), shards=4
            )

    def test_rewind_to_heartbeat_truncates_all_journals(self, tmp_path):
        """A chunk interrupted mid-dispatch rewinds every journal to the
        newest boundary heartbeat all of them share."""
        events = [
            e
            for e in _events(seed=8, count=200, controls=False)
        ]
        boundary_time = events[99].time
        state = ServiceState(tmp_path, shards=2, snapshot_every=10**9)
        service = build_service(
            _scenario(), _service_config(), seed=0, state=state, shards=2
        )
        first = events[:100] + [Heartbeat(boundary_time)]
        service.ingest_batch(first)
        # Partial next chunk: telemetry lands in shard journals, then a
        # heartbeat reaches only shard 0's journal (crash mid-broadcast).
        service.ingest_batch(events[100:150])
        service.shards[0].ingest([Heartbeat(events[149].time)])
        service.close()
        state.close()
        state = ServiceState(tmp_path, shards=2)
        start, dropped = state.rewind_to_heartbeat()
        assert start == boundary_time
        assert dropped > 0
        resumed = TempoService.resume(
            build_controller(_scenario()), state, _service_config()
        )
        # Only the first completed chunk survives the rewind.
        assert resumed.events_processed == len(first)
        resumed.close()
        state.close()

    def test_sharded_compaction_respects_snapshot_coverage(self, tmp_path):
        events = _events(seed=11, count=600, controls=False)
        interval = 300.0
        state = ServiceState(
            tmp_path,
            shards=2,
            snapshot_every=200,
            segment_records=64,
            keep_segments=1,
        )
        service = build_service(
            _scenario(), _service_config(), seed=0, state=state, shards=2
        )
        # Deliver with boundary heartbeats so compaction has anchors.
        chunk = 150
        for i in range(0, len(events), chunk):
            part = events[i : i + chunk]
            service.ingest_batch(part + [Heartbeat(part[-1].time)])
        service.close()
        state.close()
        # Every shard journal's first retained record is covered by a
        # readable snapshot: resume still reconstructs cleanly.
        resumed = TempoService.resume(
            build_controller(_scenario()), tmp_path, _service_config(), shards=2
        )
        assert resumed.stats_gap_now() < 1e-9
        resumed.close()


class TestWorkerShards:
    def test_worker_journals_byte_identical_to_in_process(self, tmp_path):
        events = _events(seed=3, count=300)
        inproc_dir, worker_dir = tmp_path / "inproc", tmp_path / "workers"
        run = TestShardedDurability()
        run._run_durable(inproc_dir, 4, events, workers=False)
        run._run_durable(worker_dir, 4, events, workers=True)
        for i in range(4):
            a_dir = inproc_dir / f"shard-{i:02d}" / "journal"
            b_dir = worker_dir / f"shard-{i:02d}" / "journal"
            a = {p.name: p.read_bytes() for p in a_dir.glob("segment-*.jsonl")}
            b = {p.name: p.read_bytes() for p in b_dir.glob("segment-*.jsonl")}
            assert a == b, f"shard {i} journal bytes differ"

    def test_worker_mode_same_decisions_and_stats(self):
        events = _events(seed=12, count=400)
        inproc = build_service(_scenario(), _service_config(), seed=0, shards=4)
        workers = build_service(
            _scenario(), _service_config(), seed=0, shards=4, shard_workers=True
        )
        try:
            for i in range(0, len(events), 97):
                inproc.ingest_batch(events[i : i + 97])
                workers.ingest_batch(events[i : i + 97])
            assert workers.retunes == inproc.retunes
            assert [(d.time, d.retuned, d.reason) for d in inproc.decisions] == [
                (d.time, d.retuned, d.reason) for d in workers.decisions
            ]
            assert workers.stats_gap_now() < 1e-9
            a = inproc.window
            b = workers.window
            b.advance(a.now)
            _stats_close(a.snapshot(), b.batch_recompute())
        finally:
            workers.close()

    def test_worker_resume_promotion(self, tmp_path):
        events = _events(seed=13, count=300)
        state = ServiceState(tmp_path, shards=2, snapshot_every=400)
        live = build_service(
            _scenario(),
            _service_config(),
            seed=0,
            state=state,
            shards=2,
            shard_workers=True,
        )
        for i in range(0, len(events), 113):
            live.ingest_batch(events[i : i + 113])
        live_stats = live.window.snapshot()  # drain before stopping workers
        live.close()
        state.close()
        resumed = TempoService.resume(
            build_controller(_scenario()),
            tmp_path,
            _service_config(),
            shards=2,
            shard_workers=True,
        )
        try:
            assert resumed.shard_workers
            assert resumed.events_processed == live.events_processed
            _stats_close(live_stats, resumed.window.snapshot())
            # The promoted workers keep ingesting and journaling.
            extra = _events(seed=14, count=40, controls=False)
            resumed.ingest_batch(extra)
            assert resumed.stats_gap_now() < 1e-9
        finally:
            resumed.close()


class TestReshard:
    def test_reshard_preserves_merged_statistics(self, tmp_path):
        events = _events(seed=4, count=400)
        run = TestShardedDurability()
        live = run._run_durable(tmp_path, 2, events)
        before = live.window.snapshot()
        state = ServiceState(tmp_path, shards=2)
        resumed = TempoService.resume(
            build_controller(_scenario()), state, _service_config()
        )
        resumed.reshard(4)
        assert resumed.num_shards == 4
        _stats_close(before, resumed.window.snapshot())
        # Tenants land on their crc32 owner under the new layout.
        for i, shard in enumerate(resumed.shards):
            for tenant in shard.window.tenants():
                assert resumed.router.shard_of(tenant) == i
        resumed.close()
        state.close()
        # The reshard wrote a covering snapshot: a later resume under the
        # new layout reconstructs without touching pre-reshard journals.
        again = TempoService.resume(
            build_controller(_scenario()), tmp_path, _service_config(), shards=4
        )
        _stats_close(before, again.window.snapshot())
        assert [(h.index, h.config.describe()) for h in again.config_history] == [
            (h.index, h.config.describe()) for h in live.config_history
        ]
        again.close()

    def test_resume_after_cli_reshard_keeps_history(self, tmp_path):
        """Regression: a resume arriving after a reshard (before any
        post-reshard chunk completes) must NOT rewind the retained
        history to zero — the fresh, heartbeat-less shard journals are
        anchored by the reshard's broadcast boundary heartbeat."""
        import io

        from repro.cli import main

        state_dir = str(tmp_path / "state")
        code = main(
            [
                "replay",
                "--scenario",
                "steady",
                "--horizon",
                "0.5",
                "--seed",
                "2",
                "--state-dir",
                state_dir,
            ],
            out=io.StringIO(),
        )
        assert code == 0
        out = io.StringIO()
        code = main(
            ["resume", "--state-dir", state_dir, "--shards", "2", "--reshard"],
            out=out,
        )
        assert code == 0
        first = out.getvalue()
        assert "resharded data plane" in first
        events_before = int(
            first.split("events=")[1].split()[0]
        )
        assert events_before > 0
        # Resume again: the full history must still be there.
        out = io.StringIO()
        code = main(["resume", "--state-dir", state_dir], out=out)
        assert code == 0
        text = out.getvalue()
        assert "dropped" not in text
        events_after = int(text.split("events=")[1].split()[0])
        assert events_after >= events_before

    def test_rewind_ignores_empty_shard_journals(self, tmp_path):
        """An empty journal (a shard owning no tenants yet) must not
        drag the common rewind boundary to zero."""
        state = ServiceState(tmp_path, shards=2, snapshot_every=10**9)
        service = build_service(
            _scenario(), _service_config(), seed=0, state=state, shards=2
        )
        # Every tenant hashes to one shard: the other journal gets only
        # what it is explicitly sent — here, nothing (no heartbeats yet).
        lonely = next(
            t
            for t in (f"solo-{i}" for i in range(64))
            if service.router.shard_of(t) == 0
        )
        events = [
            e
            for e in _events(seed=20, count=60, tenants=(lonely,), controls=False)
        ]
        boundary = events[-1].time + 5.0
        service.ingest_batch(events)
        # Broadcast heartbeat reaches both shard journals...
        service.process(Heartbeat(boundary))
        # ...but emulate a crash that tore shard 1's copy away entirely,
        # leaving it a journal with no records at all.
        service.close()
        state.close()
        import shutil

        shard1 = tmp_path / "shard-01" / "journal"
        shutil.rmtree(shard1)
        shard1.mkdir()
        state = ServiceState(tmp_path, shards=2)
        start, dropped = state.rewind_to_heartbeat()
        assert start == boundary  # not wiped to zero
        state.close()

    def test_reshard_to_single_pipeline(self, tmp_path):
        events = _events(seed=5, count=300)
        run = TestShardedDurability()
        live = run._run_durable(tmp_path, 3, events)
        state = ServiceState(tmp_path, shards=3)
        resumed = TempoService.resume(
            build_controller(_scenario()), state, _service_config()
        )
        resumed.reshard(1)
        assert resumed.num_shards == 1
        _stats_close(live.window.snapshot(), resumed.window.snapshot())
        assert stats_gap(resumed.window) < 1e-9
        resumed.close()
        state.close()


class TestIngestShard:
    def test_bus_intake_feeds_ingest(self):
        shard = IngestShard(0, 300.0)
        events = [
            e
            for e in _events(seed=6, count=50, tenants=("a",), controls=False)
        ]
        for event in events:
            assert shard.submit(event)
        assert shard.flush_bus() == len(events)
        assert shard.window.events_ingested == len(events)
        assert stats_gap(shard.window) < 1e-9

    def test_fold_applies_churn_at_stream_position(self):
        shard = IngestShard(0, 1000.0)
        events = [
            JobSubmitted(1.0, tenant="x", job_id="x0"),
            TenantLeft(2.0, tenant="x"),
            JobSubmitted(3.0, tenant="x", job_id="x1"),
        ]
        shard.fold(events)
        stats = shard.window.snapshot()["x"]
        # Only the post-rejoin submission survives the drop.
        assert stats.submitted == 1


class TestTraceReplay:
    def test_dump_load_roundtrip(self, tmp_path):
        events = _events(seed=7, count=120)
        path = tmp_path / "trace.jsonl"
        assert dump_trace_events(events, path) == len(events)
        restored = load_trace_events(path)
        assert restored == events

    def test_load_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "Heartbeat", "time": 1.0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_trace_events(path)

    def test_recorded_replay_round_trips_through_sharded_pipeline(self):
        """ROADMAP item: record a replay, re-drive it from the file
        through the sharded pipeline, land on the same statistics."""
        scenario = make_scenario("steady", scale=1.0, horizon=1200.0)
        recorded: list = []
        service = build_service(scenario, _service_config(), seed=3)
        ScenarioReplayer(
            scenario, service, seed=3, record_to=recorded
        ).run()
        assert recorded
        replayed = build_service(scenario, _service_config(), seed=3, shards=4)
        summary = replay_trace(replayed, recorded)
        assert summary.scenario == "trace"
        assert summary.events == sum(
            1 for e in recorded if not isinstance(e, Heartbeat)
        )
        assert summary.max_stats_gap < 1e-9
        live = service.window
        merged = replayed.window
        merged.advance(live.now)
        _stats_close(live.snapshot(), merged.batch_recompute())
        # Same telemetry, same cadence: the decisions agree too.
        assert [(d.time, d.retuned) for d in service.decisions] == [
            (d.time, d.retuned) for d in replayed.decisions
        ]

    def test_cli_trace_replay(self, tmp_path):
        import io

        from repro.cli import main

        trace = tmp_path / "steady.jsonl"
        out = io.StringIO()
        code = main(
            [
                "replay",
                "--scenario",
                "steady",
                "--horizon",
                "0.3",
                "--seed",
                "2",
                "--save-trace",
                str(trace),
            ],
            out=out,
        )
        assert code == 0
        assert "trace saved" in out.getvalue()
        out = io.StringIO()
        code = main(
            [
                "replay",
                "--scenario",
                "steady",
                "--trace",
                str(trace),
                "--shards",
                "2",
            ],
            out=out,
        )
        assert code == 0
        assert "trace=" in out.getvalue()

    def test_cli_trace_requires_existing_file(self, tmp_path):
        import io

        from repro.cli import main

        with pytest.raises(SystemExit, match="does not exist"):
            main(
                ["replay", "--trace", str(tmp_path / "nope.jsonl")],
                out=io.StringIO(),
            )

    def test_trace_pacing_uses_trace_local_clock(self):
        """A trace starting at a huge absolute timestamp must not sleep
        the offset away before delivering the first chunk."""
        import time as _time

        scenario = make_scenario("steady", scale=1.0, horizon=1200.0)
        shift = 1.7e9  # epoch-scale offset, as a real RM log would carry
        events = [
            JobSubmitted(shift + float(i), tenant="deadline", job_id=f"j{i}")
            for i in range(20)
        ]
        service = build_service(scenario, _service_config(), seed=0)
        started = _time.perf_counter()
        summary = replay_trace(service, events, speedup=1000.0)
        assert _time.perf_counter() - started < 5.0
        assert summary.events == len(events)

    def test_durable_trace_state_dir_writes_meta_and_refuses_resume(
        self, tmp_path
    ):
        """--trace with --state-dir journals durably, records a meta
        descriptor (so compact stays shard-aware), and resume refuses
        with a pointer back to the trace file."""
        import io

        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        dump_trace_events(_events(seed=21, count=50, controls=False), trace)
        state_dir = tmp_path / "state"
        code = main(
            [
                "replay",
                "--scenario",
                "steady",
                "--trace",
                str(trace),
                "--shards",
                "2",
                "--state-dir",
                str(state_dir),
            ],
            out=io.StringIO(),
        )
        assert code == 0
        meta = json.loads((state_dir / "meta.json").read_text())
        assert meta["transport"] == "trace"
        assert meta["shards"] == 2
        with pytest.raises(SystemExit, match="trace-replay"):
            main(["resume", "--state-dir", str(state_dir)], out=io.StringIO())

    def test_api_resume_detects_sharded_layout_from_path(self, tmp_path):
        """Resuming a sharded dir through a bare path (no shards=) must
        replay the shard journals, not just the control journal."""
        events = _events(seed=22, count=200)
        state = ServiceState(tmp_path, shards=3, snapshot_every=10**9)
        live = build_service(
            _scenario(), _service_config(), seed=0, state=state, shards=3
        )
        live.ingest_batch(events)
        live.close()
        state.close()
        # No meta.json here (API-driven dir): layout detected from the
        # shard-NN trees on disk.
        resumed = TempoService.resume(
            build_controller(_scenario()), tmp_path, _service_config()
        )
        assert resumed.num_shards == 3
        assert resumed.events_processed == live.events_processed
        _stats_close(live.window.snapshot(), resumed.window.snapshot())
        resumed.close()


class TestShardedCli:
    def test_serve_shards_then_resume(self, tmp_path):
        import io

        from repro.cli import main

        state_dir = str(tmp_path / "state")
        out = io.StringIO()
        code = main(
            [
                "serve",
                "--scenario",
                "steady",
                "--horizon",
                "0.3",
                "--seed",
                "1",
                "--shards",
                "4",
                "--state-dir",
                state_dir,
            ],
            out=out,
        )
        assert code == 0
        assert "shards=4" in out.getvalue()
        for i in range(4):
            assert (Path(state_dir) / f"shard-{i:02d}" / "journal").is_dir()
        out = io.StringIO()
        code = main(["resume", "--state-dir", state_dir], out=out)
        assert code == 0
        assert "resumed from" in out.getvalue()
        assert "shards=4" in out.getvalue()

    def test_resume_reshard_flow(self, tmp_path):
        import io

        from repro.cli import main

        state_dir = str(tmp_path / "state")
        code = main(
            [
                "replay",
                "--scenario",
                "steady",
                "--horizon",
                "0.3",
                "--seed",
                "2",
                "--shards",
                "2",
                "--state-dir",
                state_dir,
            ],
            out=io.StringIO(),
        )
        assert code == 0
        with pytest.raises(SystemExit, match="--reshard"):
            main(
                ["resume", "--state-dir", state_dir, "--shards", "4"],
                out=io.StringIO(),
            )
        out = io.StringIO()
        code = main(
            ["resume", "--state-dir", state_dir, "--shards", "4", "--reshard"],
            out=out,
        )
        assert code == 0
        assert "resharded data plane: 2 -> 4" in out.getvalue()
        meta = json.loads((Path(state_dir) / "meta.json").read_text())
        assert meta["shards"] == 4
