"""Unit and property tests for Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import ParetoArchive, dominates, pareto_front, weakly_dominates


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1.0, 2.0], [2.0, 3.0])
        assert dominates([1.0, 3.0], [2.0, 3.0])

    def test_equal_does_not_dominate(self):
        assert not dominates([1.0, 2.0], [1.0, 2.0])

    def test_incomparable(self):
        assert not dominates([1.0, 5.0], [5.0, 1.0])
        assert not dominates([5.0, 1.0], [1.0, 5.0])

    def test_tolerance(self):
        # Within tol, the small improvement doesn't count as strict.
        assert not dominates([0.99, 2.0], [1.0, 2.0], tol=0.05)
        assert dominates([0.5, 2.0], [1.0, 2.0], tol=0.05)

    def test_weak_dominance(self):
        assert weakly_dominates([1.0, 2.0], [1.0, 2.0])
        assert not weakly_dominates([1.1, 2.0], [1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0])


class TestParetoFront:
    def test_simple_front(self):
        points = [[1.0, 5.0], [5.0, 1.0], [3.0, 3.0], [6.0, 6.0]]
        assert pareto_front(points) == [0, 1, 2]

    def test_single_point(self):
        assert pareto_front([[1.0, 1.0]]) == [0]

    def test_duplicates_both_kept(self):
        # Equal points do not dominate each other.
        assert pareto_front([[1.0, 1.0], [1.0, 1.0]]) == [0, 1]


class TestParetoArchive:
    def test_add_and_evict(self):
        arch = ParetoArchive()
        assert arch.add([0.0], [5.0, 5.0])
        assert arch.add([0.1], [1.0, 9.0])
        # Dominates the first entry: evicts it.
        assert arch.add([0.2], [4.0, 4.0])
        fronts = arch.front()
        assert fronts.shape[0] == 2

    def test_dominated_rejected(self):
        arch = ParetoArchive()
        arch.add([0.0], [1.0, 1.0])
        assert not arch.add([0.1], [2.0, 2.0])

    def test_duplicate_rejected(self):
        arch = ParetoArchive()
        arch.add([0.0], [1.0, 2.0])
        assert not arch.add([0.5], [1.0, 2.0])

    def test_best_by(self):
        arch = ParetoArchive()
        arch.add([0.0], [1.0, 9.0])
        arch.add([1.0], [9.0, 1.0])
        best = arch.best_by(lambda f: f[0])
        assert best.f[0] == 1.0

    def test_best_by_empty(self):
        with pytest.raises(ValueError):
            ParetoArchive().best_by(lambda f: f[0])


vectors = st.lists(
    st.lists(st.floats(-10, 10), min_size=2, max_size=2),
    min_size=1,
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(points=vectors)
def test_front_members_are_mutually_non_dominating(points):
    front = pareto_front(points)
    for i in front:
        for j in front:
            if i != j:
                assert not dominates(points[i], points[j])


@settings(max_examples=80, deadline=None)
@given(points=vectors)
def test_every_non_front_point_is_dominated(points):
    front = set(pareto_front(points))
    for i, p in enumerate(points):
        if i not in front:
            assert any(dominates(points[j], p) for j in front)


@settings(max_examples=60, deadline=None)
@given(points=vectors)
def test_archive_holds_exactly_the_front_of_inserted_points(points):
    arch = ParetoArchive()
    for i, p in enumerate(points):
        arch.add([float(i)], p)
    archived = {tuple(e.f) for e in arch.entries}
    front_points = {tuple(map(float, points[i])) for i in pareto_front(points)}
    # The archive may hold fewer entries than the front when duplicates
    # exist (it rejects exact duplicates), but never a dominated point.
    assert archived <= front_points or all(
        not any(dominates(q, f) for q in front_points) for f in archived
    )
    for f in archived:
        assert not any(
            dominates(e2.f, np.array(f))
            for e2 in arch.entries
            if tuple(e2.f) != f
        )
