"""Tests for the shared benchmark harness helpers.

The trajectory reader/writer and the core-count-aware speedup gate are
plumbing every benchmark relies on; they get direct unit coverage here
so a harness regression shows up as a test failure instead of a
corrupted results file or a silently-passed gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from _harness import (  # noqa: E402
    append_trajectory_run,
    gate_parallel_speedup,
    load_trajectory_runs,
)


class TestTrajectory:
    def test_append_stamps_timestamp_and_cpu_count(self, tmp_path):
        results = tmp_path / "r.json"
        append_trajectory_run(results, {"mode": "full", "eps": 123.0})
        runs = json.loads(results.read_text())["runs"]
        assert len(runs) == 1
        assert runs[0]["eps"] == 123.0
        assert runs[0]["cpu_count"] >= 1
        assert runs[0]["timestamp"]  # ISO 8601, non-empty

    def test_append_preserves_history(self, tmp_path):
        results = tmp_path / "r.json"
        append_trajectory_run(results, {"mode": "full", "eps": 1.0})
        append_trajectory_run(results, {"mode": "smoke", "eps": 2.0})
        runs = json.loads(results.read_text())["runs"]
        assert [run["eps"] for run in runs] == [1.0, 2.0]

    def test_legacy_flat_file_migrates_to_first_undated_run(self, tmp_path):
        results = tmp_path / "r.json"
        results.write_text(json.dumps({"eps": 42.0, "speedup": 1.5}))
        append_trajectory_run(results, {"mode": "full", "eps": 50.0})
        runs = json.loads(results.read_text())["runs"]
        assert len(runs) == 2
        assert runs[0] == {
            "mode": "full",
            "eps": 42.0,
            "speedup": 1.5,
            "timestamp": None,
            "cpu_count": None,
        }
        assert runs[1]["timestamp"] is not None

    def test_loader_backfills_and_orders_undated_first(self, tmp_path):
        results = tmp_path / "r.json"
        results.write_text(
            json.dumps(
                {
                    "runs": [
                        {"timestamp": "2026-08-01T00:00:00+00:00", "eps": 3.0},
                        {"eps": 1.0},  # pre-stamping row: no stamp keys
                        {"timestamp": "2026-07-01T00:00:00+00:00", "eps": 2.0},
                    ]
                }
            )
        )
        runs = load_trajectory_runs(results)
        assert [run["eps"] for run in runs] == [1.0, 2.0, 3.0]
        assert all("timestamp" in run and "cpu_count" in run for run in runs)

    def test_loader_missing_file_is_empty(self, tmp_path):
        assert load_trajectory_runs(tmp_path / "absent.json") == []


class TestSpeedupGate:
    def test_passes_above_floor_on_enough_cores(self):
        verdict = gate_parallel_speedup(
            "sharded", 2.5, required_cores=4, floor=1.3, degraded_floor=0.2,
            cpu_count=8,
        )
        assert verdict["failure"] is None
        assert verdict["gated"] and not verdict["sub_core_run"]
        assert verdict["floor"] == 1.3

    def test_fails_below_floor_on_enough_cores(self):
        verdict = gate_parallel_speedup(
            "sharded", 1.1, required_cores=4, floor=1.3, degraded_floor=0.2,
            cpu_count=8,
        )
        assert verdict["failure"] is not None
        assert "1.10x" in verdict["failure"]

    def test_sub_core_run_annotated_not_failed(self):
        """On a 1-core box a sub-1x parallel 'speedup' is expected: the
        gate must annotate, not fail."""
        verdict = gate_parallel_speedup(
            "sharded", 0.6, required_cores=4, floor=1.3, degraded_floor=0.2,
            cpu_count=1,
        )
        assert verdict["failure"] is None
        assert verdict["sub_core_run"]
        assert verdict["floor"] == 0.2

    def test_sub_core_pathological_regression_still_fails(self):
        verdict = gate_parallel_speedup(
            "sharded", 0.05, required_cores=4, floor=1.3, degraded_floor=0.2,
            cpu_count=1,
        )
        assert verdict["failure"] is not None
        assert "pathological" in verdict["failure"]

    def test_defaults_to_host_core_count(self):
        import os

        verdict = gate_parallel_speedup(
            "x", 10.0, required_cores=1, floor=1.0, degraded_floor=0.1
        )
        assert verdict["cpu_count"] == (os.cpu_count() or 1)
