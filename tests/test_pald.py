"""Unit tests for the PALD optimizer on controlled analytic problems."""

import math

import numpy as np
import pytest

from repro.core.pald import PALD
from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace


@pytest.fixture
def space():
    return ConfigSpace(ClusterSpec({"slots": 10}), ["A", "B"], tune_limits=False)


def quadratic_evaluator(space, targets, noise_sigma=0.0, seed=0):
    """f_i(x) = ||x - target_i||^2 (+ optional Gaussian noise)."""
    rng = np.random.default_rng(seed)

    def evaluate(x):
        f = np.array([float(np.sum((x - t) ** 2)) for t in targets])
        if noise_sigma > 0:
            f = f + rng.normal(0, noise_sigma, len(targets))
        return f

    return evaluate


class TestPALDConstruction:
    def test_validation(self, space):
        ev = quadratic_evaluator(space, [np.zeros(space.dim)])
        with pytest.raises(ValueError):
            PALD(space, ev, [0.0], trust_radius=0.0)
        with pytest.raises(ValueError):
            PALD(space, ev, [0.0], step_size=0.0)
        with pytest.raises(ValueError):
            PALD(space, ev, [0.0], candidates=1)

    def test_set_thresholds_shape(self, space):
        pald = PALD(space, quadratic_evaluator(space, [np.zeros(space.dim)]), [1.0])
        with pytest.raises(ValueError):
            pald.set_thresholds([1.0, 2.0])


class TestSingleObjectiveDescent:
    def test_converges_to_unconstrained_minimum(self, space):
        target = np.full(space.dim, 0.3)
        pald = PALD(
            space,
            quadratic_evaluator(space, [target]),
            [np.inf],
            trust_radius=0.2,
            seed=0,
        )
        res = pald.optimize(np.full(space.dim, 0.9), 30)
        assert res.f[0] < 0.05

    def test_monotone_nonincreasing_under_ratchet(self, space):
        target = np.full(space.dim, 0.3)
        pald = PALD(
            space, quadratic_evaluator(space, [target]), [np.inf], seed=1
        )
        res = pald.optimize(np.full(space.dim, 0.8), 15)
        values = res.trajectory()[:, 0]
        assert np.all(np.diff(values) <= 1e-9)


class TestConstrainedDescent:
    def test_meets_constraint_then_improves_best_effort(self, space):
        t1 = np.full(space.dim, 0.8)
        t2 = np.full(space.dim, 0.2)
        pald = PALD(
            space,
            quadratic_evaluator(space, [t1, t2], noise_sigma=0.02, seed=2),
            [0.4, np.inf],
            trust_radius=0.2,
            candidates=6,
            seed=2,
        )
        res = pald.optimize(np.full(space.dim, 0.5), 30)
        f = res.f
        assert f[0] <= 0.45  # constraint met (noise tolerance)
        # Best-effort objective improved over the f2-optimal-but-
        # infeasible starting region value.
        assert f[1] < 1.4

    def test_infeasible_problem_minimizes_max_regret(self, space):
        # Two incompatible constraints around opposite corners.
        t1 = np.zeros(space.dim)
        t2 = np.ones(space.dim)
        pald = PALD(
            space,
            quadratic_evaluator(space, [t1, t2]),
            [0.05, 0.05],
            trust_radius=0.25,
            seed=3,
        )
        res = pald.optimize(np.full(space.dim, 0.9), 25)
        start_regret = res.steps[0].max_regret
        end_regret = res.steps[-1].max_regret
        assert end_regret <= start_regret

    def test_feasible_preferred_over_lower_proxy(self, space):
        """Candidate selection is feasibility-first (the paper's
        (5,5) vs (0,7) example resolved correctly)."""
        calls = {"n": 0}

        def evaluator(x):
            # First call (current point) feasible; all others infeasible
            # with tempting low first component.
            calls["n"] += 1
            if calls["n"] == 1:
                return np.array([5.0, 5.0])
            return np.array([0.0, 7.0])

        pald = PALD(space, evaluator, [6.0, 6.0], seed=4)
        step = pald.step(np.full(space.dim, 0.5))
        np.testing.assert_allclose(step.f, [5.0, 5.0])


class TestDiagnostics:
    def test_step_accounting(self, space):
        pald = PALD(
            space,
            quadratic_evaluator(space, [np.zeros(space.dim)]),
            [np.inf],
            candidates=5,
            seed=5,
        )
        res = pald.optimize(np.full(space.dim, 0.5), 3)
        assert res.total_evaluations >= 3 * 4
        assert len(res.steps) == 3
        assert res.steps[0].iteration == 1

    def test_trust_region_respected_between_steps(self, space):
        pald = PALD(
            space,
            quadratic_evaluator(space, [np.zeros(space.dim)]),
            [np.inf],
            trust_radius=0.1,
            seed=6,
        )
        x = np.full(space.dim, 0.7)
        step = pald.step(x)
        assert space.distance(step.x, x) <= 0.1 + 1e-9

    def test_archive_collects_front(self, space):
        pald = PALD(
            space,
            quadratic_evaluator(
                space, [np.zeros(space.dim), np.ones(space.dim)]
            ),
            [np.inf, np.inf],
            seed=7,
        )
        pald.optimize(np.full(space.dim, 0.5), 5)
        assert len(pald.archive) >= 1

    def test_ratchet_tightens_only_best_effort(self, space):
        pald = PALD(
            space,
            quadratic_evaluator(space, [np.zeros(space.dim)] * 2),
            [0.7, np.inf],
        )
        pald.ratchet(np.array([0.1, 2.0]))
        assert pald.r[0] == 0.7  # hard constraint untouched
        assert pald.r[1] == 2.0
        pald.ratchet(np.array([0.1, 3.0]))
        assert pald.r[1] == 2.0  # ratchet never loosens
