"""Unit tests for QS metrics (Section 5.1)."""

import pytest

from repro.slo.qs import (
    AverageResponseTime,
    DeadlineViolationFraction,
    FairnessDeviation,
    NegativeThroughput,
    NegativeUtilization,
)
from repro.workload.trace import JobRecord, TaskRecord, Trace


@pytest.fixture
def trace():
    """Hand-built schedule with known QS values.

    Tenant A: two jobs, responses 10 and 30 (AJR 20); one deadline miss
    at slack 0.  Tenant B: one job, response 8, meets deadline.
    Capacity: 2 slots over horizon 40.
    """
    tasks = [
        TaskRecord("a0", "a0/t0", "A", "slots", "s", 0.0, 0.0, 10.0),
        TaskRecord("a1", "a1/t0", "A", "slots", "s", 0.0, 5.0, 25.0, preempted=True),
        TaskRecord("a1", "a1/t0", "A", "slots", "s", 0.0, 25.0, 30.0, attempt=1),
        TaskRecord("b0", "b0/t0", "B", "slots", "s", 2.0, 2.0, 10.0),
    ]
    jobs = [
        JobRecord("a0", "A", 0.0, 10.0, deadline=12.0, num_tasks=1),
        JobRecord("a1", "A", 0.0, 30.0, deadline=20.0, num_tasks=1),
        JobRecord("b0", "B", 2.0, 10.0, deadline=15.0, num_tasks=1),
    ]
    return Trace(tasks, jobs, capacity={"slots": 2}, horizon=40.0)


class TestAverageResponseTime:
    def test_value(self, trace):
        assert AverageResponseTime("A").evaluate(trace) == pytest.approx(20.0)
        assert AverageResponseTime("B").evaluate(trace) == pytest.approx(8.0)

    def test_all_tenants(self, trace):
        assert AverageResponseTime(None).evaluate(trace) == pytest.approx(16.0)

    def test_empty_interval(self, trace):
        assert AverageResponseTime("A").evaluate(trace, (35.0, 40.0)) == 0.0

    def test_custom_empty_value(self, trace):
        metric = AverageResponseTime("A", empty_value=99.0)
        assert metric.evaluate(trace, (35.0, 40.0)) == 99.0

    def test_name(self):
        assert AverageResponseTime("A").name == "ajr(A)"


class TestDeadlineViolationFraction:
    def test_no_slack(self, trace):
        # a1 misses (30 > 20); a0 meets (10 <= 12).
        assert DeadlineViolationFraction("A", 0.0).evaluate(trace) == pytest.approx(0.5)

    def test_slack_tolerates(self, trace):
        # slack 0.5: a1 violates only if 30 > 20 + 0.5*30 = 35 -> no.
        assert DeadlineViolationFraction("A", 0.5).evaluate(trace) == 0.0

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            DeadlineViolationFraction("A", -0.1)

    def test_jobs_without_deadline_ignored(self):
        jobs = [JobRecord("x", "A", 0.0, 5.0, deadline=None, num_tasks=1)]
        tr = Trace([], jobs, capacity={"slots": 1}, horizon=10.0)
        assert DeadlineViolationFraction("A").evaluate(tr) == 0.0


class TestNegativeUtilization:
    def test_full_cluster(self, trace):
        # Work: 10 + 20 + 5 + 8 = 43 container-seconds over 2*40.
        assert NegativeUtilization().evaluate(trace) == pytest.approx(-43.0 / 80.0)

    def test_per_tenant(self, trace):
        assert NegativeUtilization("B").evaluate(trace) == pytest.approx(-8.0 / 80.0)

    def test_effective_excludes_preempted(self, trace):
        raw = NegativeUtilization("A").evaluate(trace)
        eff = NegativeUtilization("A", effective=True).evaluate(trace)
        assert eff > raw  # less usage counted -> closer to zero

    def test_interval_clipping(self, trace):
        # Only overlap with [0, 10): a0 contributes 10, a1 5, b0 8.
        value = NegativeUtilization().evaluate(trace, (0.0, 10.0))
        assert value == pytest.approx(-(10.0 + 5.0 + 8.0) / 20.0)

    def test_no_capacity(self):
        tr = Trace([], [], horizon=10.0)
        assert NegativeUtilization().evaluate(tr) == 0.0


class TestNegativeThroughput:
    def test_counts_completions(self, trace):
        assert NegativeThroughput("A").evaluate(trace) == -2.0
        assert NegativeThroughput(None).evaluate(trace) == -3.0

    def test_interval(self, trace):
        assert NegativeThroughput("A").evaluate(trace, (0.0, 15.0)) == -1.0


class TestFairnessDeviation:
    def test_zero_when_share_matches(self, trace):
        # A uses 35/80 = 0.4375 of the cluster.
        m = FairnessDeviation("A", desired_share=35.0 / 80.0)
        assert m.evaluate(trace) == pytest.approx(0.0, abs=1e-9)

    def test_deviation_positive(self, trace):
        m = FairnessDeviation("A", desired_share=0.9)
        assert m.evaluate(trace) == pytest.approx(0.9 - 35.0 / 80.0)

    def test_share_bounds(self):
        with pytest.raises(ValueError):
            FairnessDeviation("A", desired_share=1.5)

    def test_minimizing_reduces_deviation(self, trace):
        """Lower QS = closer to the desired share (the sign-typo fix)."""
        close = FairnessDeviation("A", desired_share=0.45).evaluate(trace)
        far = FairnessDeviation("A", desired_share=0.95).evaluate(trace)
        assert close < far
