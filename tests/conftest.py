"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig, TenantConfig
from repro.workload.model import Workload, mapreduce_job, single_stage_job


@pytest.fixture
def small_cluster() -> ClusterSpec:
    """One-pool cluster with 8 containers."""
    return ClusterSpec({"slots": 8}, name="small")


@pytest.fixture
def mr_cluster() -> ClusterSpec:
    """Two-pool MapReduce cluster."""
    return ClusterSpec({"map": 8, "reduce": 4}, name="mr")


@pytest.fixture
def two_tenant_config() -> RMConfig:
    return RMConfig(
        {
            "A": TenantConfig(weight=1.0),
            "B": TenantConfig(weight=1.0),
        }
    )


@pytest.fixture
def tiny_workload() -> Workload:
    """Two single-stage jobs from two tenants."""
    return Workload(
        [
            single_stage_job("A", 0.0, [10.0, 10.0], job_id="a0"),
            single_stage_job("B", 5.0, [10.0], job_id="b0"),
        ],
        horizon=60.0,
    )


@pytest.fixture
def mr_workload() -> Workload:
    """Two MapReduce jobs with reduces."""
    return Workload(
        [
            mapreduce_job("A", 0.0, [20.0] * 4, [30.0] * 2, job_id="mr-a"),
            mapreduce_job("B", 10.0, [15.0] * 3, [25.0] * 2, job_id="mr-b"),
        ],
        horizon=120.0,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
