"""Unit tests for the time-warp Schedule Predictor."""

import math

import pytest

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig, TenantConfig
from repro.rm.policies import FifoPolicy
from repro.sim.predictor import SchedulePredictor
from repro.workload.model import (
    JobSpec,
    StageSpec,
    TaskSpec,
    Workload,
    mapreduce_job,
    single_stage_job,
)


def predict(cluster, workload, config=None, policy=None):
    config = config or RMConfig({t: TenantConfig() for t in workload.tenants()})
    return SchedulePredictor(cluster, policy).predict(workload, config)


class TestSingleJobTiming:
    def test_one_task(self, small_cluster):
        w = Workload([single_stage_job("A", 2.0, [10.0], job_id="j")])
        s = predict(small_cluster, w)
        rec = s.task_records[0]
        assert rec.start_time == pytest.approx(2.0)
        assert rec.finish_time == pytest.approx(12.0)
        assert s.job_records[0].response_time == pytest.approx(10.0)

    def test_waves_when_capacity_limited(self):
        cluster = ClusterSpec({"slots": 2})
        w = Workload([single_stage_job("A", 0.0, [10.0] * 4, job_id="j")])
        s = predict(cluster, w)
        # Two waves of two tasks: finish at 20.
        assert s.job_records[0].finish_time == pytest.approx(20.0)

    def test_job_finish_is_max_task_finish(self, small_cluster):
        w = Workload([single_stage_job("A", 0.0, [3.0, 9.0, 6.0], job_id="j")])
        s = predict(small_cluster, w)
        assert s.job_records[0].finish_time == pytest.approx(9.0)

    def test_critical_path_is_lower_bound(self, small_cluster, mr_workload):
        s = predict(small_cluster if False else ClusterSpec({"map": 8, "reduce": 8}), mr_workload)
        for job in mr_workload:
            rec = s.job(job.job_id)
            assert rec.response_time >= job.critical_path() - 1e-6


class TestStageDependencies:
    def test_reduce_waits_for_maps(self, mr_cluster):
        w = Workload([mapreduce_job("A", 0.0, [10.0, 10.0], [5.0], job_id="mr")])
        s = predict(mr_cluster, w)
        reduce_rec = [r for r in s.task_records if r.stage == "reduce"][0]
        assert reduce_rec.start_time == pytest.approx(10.0)
        assert s.job_records[0].finish_time == pytest.approx(15.0)

    def test_slowstart_launches_reduces_early(self, mr_cluster):
        # Two maps finish at 10 and 20; slowstart 0.5 releases the
        # reduce once half the maps are done.
        job = mapreduce_job("A", 0.0, [10.0, 20.0], [5.0], slowstart=0.5, job_id="mr")
        s = predict(mr_cluster, Workload([job]))
        reduce_rec = [r for r in s.task_records if r.stage == "reduce"][0]
        assert reduce_rec.start_time == pytest.approx(10.0)

    def test_three_stage_chain(self, small_cluster):
        stages = (
            StageSpec("a", (TaskSpec("t-a", 5.0),)),
            StageSpec("b", (TaskSpec("t-b", 5.0),), deps=("a",)),
            StageSpec("c", (TaskSpec("t-c", 5.0),), deps=("b",)),
        )
        job = JobSpec("chain", "A", 0.0, stages)
        s = predict(small_cluster, Workload([job]))
        assert s.job_records[0].finish_time == pytest.approx(15.0)


class TestFairSharing:
    def test_equal_split_between_tenants(self):
        cluster = ClusterSpec({"slots": 4})
        w = Workload(
            [
                single_stage_job("A", 0.0, [10.0] * 4, job_id="a"),
                single_stage_job("B", 0.0, [10.0] * 4, job_id="b"),
            ]
        )
        s = predict(cluster, w)
        # Each gets 2 slots -> both finish in two waves of 10s.
        assert s.job_records[0].finish_time == pytest.approx(20.0)
        assert s.job_records[1].finish_time == pytest.approx(20.0)

    def test_weight_bias(self):
        cluster = ClusterSpec({"slots": 4})
        cfg = RMConfig(
            {"A": TenantConfig(weight=3.0), "B": TenantConfig(weight=1.0)}
        )
        w = Workload(
            [
                single_stage_job("A", 0.0, [10.0] * 3, job_id="a"),
                single_stage_job("B", 0.0, [10.0] * 3, job_id="b"),
            ]
        )
        s = predict(cluster, w, cfg)
        a_fin = s.job("a").finish_time
        b_fin = s.job("b").finish_time
        assert a_fin < b_fin  # A gets 3 slots, B gets 1

    def test_max_share_leaves_capacity_idle(self):
        cluster = ClusterSpec({"slots": 4})
        cfg = RMConfig({"A": TenantConfig(max_share={"slots": 2})})
        w = Workload([single_stage_job("A", 0.0, [10.0] * 4, job_id="a")])
        s = predict(cluster, w, cfg)
        assert s.job("a").finish_time == pytest.approx(20.0)

    def test_idle_capacity_redistributed(self):
        cluster = ClusterSpec({"slots": 4})
        # B has nothing to run: A should use all four slots.
        w = Workload([single_stage_job("A", 0.0, [10.0] * 4, job_id="a")])
        cfg = RMConfig({"A": TenantConfig(weight=1.0), "B": TenantConfig(weight=9.0)})
        s = predict(cluster, w, cfg)
        assert s.job("a").finish_time == pytest.approx(10.0)


class TestPreemption:
    def _config(self, min_share=5, timeout=60.0):
        return RMConfig(
            {
                "A": TenantConfig(weight=1.0),
                "B": TenantConfig(
                    weight=1.0,
                    min_share={"slots": min_share},
                    min_share_preemption_timeout=timeout,
                ),
            }
        )

    def _workload(self):
        return Workload(
            [
                single_stage_job("A", 0.0, [500.0] * 10, job_id="a"),
                single_stage_job("B", 5.0, [100.0] * 5, job_id="b"),
            ]
        )

    def test_kill_after_timeout(self):
        cluster = ClusterSpec({"slots": 10})
        s = SchedulePredictor(cluster).predict(self._workload(), self._config())
        killed = [r for r in s.task_records if r.preempted]
        assert len(killed) == 5
        assert all(r.tenant == "A" for r in killed)
        assert all(r.finish_time == pytest.approx(65.0) for r in killed)

    def test_killed_tasks_restart_from_scratch(self):
        cluster = ClusterSpec({"slots": 10})
        s = SchedulePredictor(cluster).predict(self._workload(), self._config())
        retries = [r for r in s.task_records if r.attempt == 1 and r.tenant == "A"]
        assert len(retries) == 5
        # B's tasks run 65..165; A's retries start at 165 with full 500s.
        for r in retries:
            assert r.start_time == pytest.approx(165.0)
            assert r.finish_time == pytest.approx(665.0)

    def test_no_preemption_without_timeout(self):
        cluster = ClusterSpec({"slots": 10})
        cfg = RMConfig({"A": TenantConfig(), "B": TenantConfig(min_share={"slots": 5})})
        s = SchedulePredictor(cluster).predict(self._workload(), cfg)
        assert not any(r.preempted for r in s.task_records)

    def test_fair_level_preemption(self):
        cluster = ClusterSpec({"slots": 10})
        cfg = RMConfig(
            {
                "A": TenantConfig(),
                "B": TenantConfig(fair_share_preemption_timeout=100.0),
            }
        )
        s = SchedulePredictor(cluster).predict(self._workload(), cfg)
        killed = [r for r in s.task_records if r.preempted]
        # Fair share of B is 5; it preempts at ~105.
        assert len(killed) == 5
        assert killed[0].finish_time == pytest.approx(105.0)

    def test_effective_utilization_below_raw(self):
        cluster = ClusterSpec({"slots": 10})
        s = SchedulePredictor(cluster).predict(self._workload(), self._config())
        assert s.utilization(include_preempted=False) < s.utilization()


class TestPolicies:
    def test_fifo_starves_latecomer(self):
        cluster = ClusterSpec({"slots": 4})
        w = Workload(
            [
                single_stage_job("A", 0.0, [50.0] * 4, job_id="a"),
                single_stage_job("B", 1.0, [10.0] * 2, job_id="b"),
            ]
        )
        s = predict(cluster, w, policy=FifoPolicy())
        assert s.job("b").finish_time == pytest.approx(60.0)


class TestRecordConsistency:
    def test_every_task_recorded_once_per_attempt(self, mr_cluster, mr_workload):
        s = predict(mr_cluster, mr_workload)
        keys = [(r.task_id, r.attempt) for r in s.task_records]
        assert len(keys) == len(set(keys))
        assert len(s.task_records) == mr_workload.num_tasks

    def test_ordering_invariants(self, mr_cluster, mr_workload):
        s = predict(mr_cluster, mr_workload)
        for r in s.task_records:
            assert r.submit_time <= r.start_time <= r.finish_time

    def test_determinism(self, mr_cluster, mr_workload, two_tenant_config):
        s1 = SchedulePredictor(mr_cluster).predict(mr_workload, two_tenant_config)
        s2 = SchedulePredictor(mr_cluster).predict(mr_workload, two_tenant_config)
        assert [
            (r.task_id, r.start_time, r.finish_time) for r in s1.task_records
        ] == [(r.task_id, r.start_time, r.finish_time) for r in s2.task_records]

    def test_oversized_task_rejected(self, small_cluster):
        job = JobSpec(
            "big",
            "A",
            0.0,
            (StageSpec("s", (TaskSpec("t", 1.0, containers=99),)),),
        )
        with pytest.raises(ValueError, match="demands"):
            predict(small_cluster, Workload([job]))

    def test_unknown_pool_rejected(self, small_cluster):
        job = JobSpec(
            "gpu",
            "A",
            0.0,
            (StageSpec("s", (TaskSpec("t", 1.0, pool="gpu"),)),),
        )
        with pytest.raises(ValueError, match="pool"):
            predict(small_cluster, Workload([job]))
