"""Tests for the versioned binary journal codec.

The contract under test is parity: ``decode(binary_encode(x)) ==
decode(json_encode(x))`` for every record kind — asserted record-type
by record-type, by hypothesis fuzz, and end-to-end through mixed-codec
state directories, crash-torn tails, rotation, compaction, rewind, and
the binary wire format the TCP transport reuses.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.codec import (
    BINARY_SUFFIX,
    BinaryEncoder,
    HEADER_FRAME,
    decode_payload,
    decode_wire_batches,
    encode_wire_batches,
    split_frames,
)
from repro.service.events import (
    DecisionMade,
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    NodeRecovered,
    ShardFailed,
    ShardPartitioned,
    ShardReconnected,
    ShardRecovered,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.journal import (
    JOURNAL_CODECS,
    EventJournal,
    JournalError,
    canonical_json,
    decode_event,
    encode_event,
    frame_line,
    last_heartbeat,
    read_segment,
)
from repro.workload.trace import JobRecord, TaskRecord


def _task(job_id="job-0", task_id="job-0/m0", **kwargs):
    fields = dict(
        job_id=job_id,
        task_id=task_id,
        tenant="acme",
        pool="map",
        stage="map",
        submit_time=10.0,
        start_time=11.0,
        finish_time=15.0,
    )
    fields.update(kwargs)
    return TaskRecord(**fields)


#: One instance of every journaled event type (all 13), including the
#: variant shapes the typed binary formats branch on (deadline present
#: or not, tags/stage-deps present or not, flag combinations).
ALL_EVENT_SHAPES = [
    JobSubmitted(time=1.0, tenant="acme", job_id="j-1"),
    JobSubmitted(time=1.5, tenant="acme", job_id="j-2", deadline=250.0),
    TaskCompleted(time=15.0, record=_task()),
    TaskCompleted(
        time=16.0,
        record=_task(
            task_id="job-0/m1", containers=3, preempted=True, failed=True, attempt=2
        ),
    ),
    JobCompleted(
        time=20.0,
        record=JobRecord(
            job_id="j-1",
            tenant="acme",
            submit_time=1.0,
            finish_time=20.0,
            num_tasks=2,
        ),
    ),
    JobCompleted(
        time=21.0,
        record=JobRecord(
            job_id="j-2",
            tenant="acme",
            submit_time=1.5,
            finish_time=21.0,
            num_tasks=4,
            deadline=250.0,
            tags=("adhoc", "prod"),
            stage_deps=(("map", ()), ("reduce", ("map",))),
        ),
    ),
    NodeLost(time=30.0, pool="map", containers=2),
    NodeRecovered(time=31.0, pool="map", containers=2),
    TenantJoined(time=32.0, tenant="acme"),
    TenantLeft(time=33.0, tenant="acme"),
    Heartbeat(time=34.0),
    DecisionMade(time=35.0, verdict="retune", index=3, retuned=True, reason="drift"),
    ShardFailed(time=36.0, shard=1, reason="timeout"),
    ShardRecovered(time=37.0, shard=1, replayed=10, dropped=1, latency=0.5),
    ShardPartitioned(time=38.0, shard=2),
    ShardReconnected(time=39.0, shard=2, outage=3.5),
]

GENERIC_RECORDS = [
    ("decision", {"verdict": "hold", "index": 1}),
    ("config", {"tenants": {"acme": {"weight": 2.0}}}),
    ("rollback", {"reason": "guard", "index": 2}),
    ("metrics", {"p99": 1.25, "backlog": 7}),
]


def _journal_records(root, codec, events=(), records=()):
    journal = EventJournal(root, codec=codec)
    if events:
        journal.append_events(list(events))
    for kind, data in records:
        journal.append(kind, data)
    journal.close()
    return [(r.seq, r.kind, r.data) for r in EventJournal(root, codec=codec).iter_records()]


def test_every_event_type_decodes_identically_across_codecs(tmp_path):
    """Parity over all 13 event types plus every generic record kind."""
    got_json = _journal_records(
        tmp_path / "json", "json", ALL_EVENT_SHAPES, GENERIC_RECORDS
    )
    got_binary = _journal_records(
        tmp_path / "binary", "binary", ALL_EVENT_SHAPES, GENERIC_RECORDS
    )
    assert got_json == got_binary
    assert len(got_json) == len(ALL_EVENT_SHAPES) + len(GENERIC_RECORDS)
    # And the decoded events reconstruct the originals exactly.
    for (seq, kind, data), event in zip(got_binary, ALL_EVENT_SHAPES):
        assert kind == "event"
        assert decode_event(data) == event


def test_binary_segments_use_binl_suffix_and_header(tmp_path):
    journal = EventJournal(tmp_path / "j", codec="binary")
    journal.append_events([Heartbeat(time=1.0)])
    journal.close()
    segments = list((tmp_path / "j").glob("*" + BINARY_SUFFIX))
    assert len(segments) == 1
    assert segments[0].read_bytes().startswith(HEADER_FRAME)
    assert not list((tmp_path / "j").glob("*.jsonl"))


def test_json_codec_is_byte_identical_to_plain_framing(tmp_path):
    """``--journal-codec json`` must keep the PR 8 on-disk bytes."""
    journal = EventJournal(tmp_path / "j", codec="json")
    journal.append_events(ALL_EVENT_SHAPES)
    for kind, data in GENERIC_RECORDS:
        journal.append(kind, data)
    journal.close()
    segments = sorted((tmp_path / "j").glob("*.jsonl"))
    assert segments
    raw = b"".join(seg.read_bytes() for seg in segments)
    expected = []
    seq = 1
    for event in ALL_EVENT_SHAPES:
        body = canonical_json({"seq": seq, "kind": "event", "data": encode_event(event)})
        expected.append(frame_line(body) + "\n")
        seq += 1
    for kind, data in GENERIC_RECORDS:
        body = canonical_json({"seq": seq, "kind": kind, "data": data})
        expected.append(frame_line(body) + "\n")
        seq += 1
    assert raw.decode("utf-8") == "".join(expected)


def test_codec_validated(tmp_path):
    with pytest.raises(ValueError):
        EventJournal(tmp_path / "j", codec="msgpack")
    assert set(JOURNAL_CODECS) == {"json", "binary"}


def test_binary_rotation_reopen_and_dense_seqs(tmp_path):
    root = tmp_path / "j"
    journal = EventJournal(root, codec="binary", segment_records=8)
    events = [Heartbeat(time=float(i)) for i in range(30)]
    journal.append_events(events)
    journal.close()
    # Reopen mid-segment and continue appending.
    journal = EventJournal(root, codec="binary", segment_records=8)
    journal.append_events([Heartbeat(time=100.0 + i) for i in range(10)])
    journal.close()
    records = list(EventJournal(root, codec="binary").iter_records())
    assert [r.seq for r in records] == list(range(1, 41))
    times = [r.data["time"] for r in records]
    assert times == [float(i) for i in range(30)] + [100.0 + i for i in range(10)]
    assert len(list(root.glob("*" + BINARY_SUFFIX))) == 5
    # Every segment decodes standalone (self-contained string table).
    for seg in sorted(root.glob("*" + BINARY_SUFFIX)):
        assert list(read_segment(seg, final=False))


def test_binary_string_table_survives_reopen(tmp_path):
    """Interned ids assigned after reopen must extend the tail's table."""
    root = tmp_path / "j"
    journal = EventJournal(root, codec="binary", segment_records=1000)
    journal.append_events([TaskCompleted(time=15.0, record=_task())])
    journal.close()
    journal = EventJournal(root, codec="binary", segment_records=1000)
    journal.append_events(
        [
            TaskCompleted(time=16.0, record=_task(task_id="job-0/m1")),
            TaskCompleted(
                time=17.0,
                record=_task(job_id="job-9", task_id="job-9/r0", pool="reduce", stage="reduce"),
            ),
        ]
    )
    journal.close()
    records = list(EventJournal(root, codec="binary").iter_records())
    pools = [r.data["record"]["pool"] for r in records]
    jobs = [r.data["record"]["job_id"] for r in records]
    assert pools == ["map", "map", "reduce"]
    assert jobs == ["job-0", "job-0", "job-9"]


def test_binary_compaction_and_heartbeat_rewind(tmp_path):
    root = tmp_path / "j"
    journal = EventJournal(root, codec="binary", segment_records=5)
    events = []
    for i in range(4):
        events.extend(
            [
                JobSubmitted(time=float(10 * i), tenant="acme", job_id=f"j{i}"),
                TaskCompleted(
                    time=10.0 * i + 5,
                    record=_task(job_id=f"j{i}", task_id=f"j{i}/m0"),
                ),
                Heartbeat(time=10.0 * i + 6),
            ]
        )
    journal.append_events(events)
    beat = last_heartbeat(journal)
    assert beat is not None and beat[1] == 36.0
    # Rewind past the last heartbeat, as resume does for partial chunks.
    removed = journal.truncate_after(beat[0] - 2)
    assert removed == 2
    journal.append_events([Heartbeat(time=50.0)])
    journal.close()
    journal = EventJournal(root, codec="binary", segment_records=5)
    records = list(journal.iter_records())
    assert [r.seq for r in records] == list(range(1, 12))
    assert records[-1].data == {"type": "Heartbeat", "time": 50.0}
    # Compaction drops whole covered segments, keeps the live tail.
    before = len(journal.segments())
    dropped = journal.compact(covered=5)
    assert dropped >= 1
    assert len(journal.segments()) == before - dropped
    assert [r.seq for r in journal.iter_records(after=5)] == list(range(6, 12))
    journal.close()


def test_mixed_codec_state_dir_reads_transparently(tmp_path):
    """JSON then binary segments in one dir — the migration layout."""
    root = tmp_path / "j"
    journal = EventJournal(root, codec="json", segment_records=4)
    journal.append_events([Heartbeat(time=float(i)) for i in range(6)])
    journal.close()
    journal = EventJournal(root, codec="binary", segment_records=4)
    journal.append_events([Heartbeat(time=100.0 + i) for i in range(6)])
    journal.close()
    assert list(root.glob("*.jsonl")) and list(root.glob("*" + BINARY_SUFFIX))
    records = list(EventJournal(root, codec="binary").iter_records())
    assert [r.seq for r in records] == list(range(1, 13))
    assert [r.data["time"] for r in records[:6]] == [float(i) for i in range(6)]
    # Reading the same dir under the json codec sees the same records.
    assert [
        (r.seq, r.data) for r in EventJournal(root, codec="json").iter_records()
    ] == [(r.seq, r.data) for r in records]


def test_switching_to_binary_rotates_rather_than_extends_json_tail(tmp_path):
    root = tmp_path / "j"
    journal = EventJournal(root, codec="json", segment_records=100)
    journal.append_events([Heartbeat(time=1.0)])
    journal.close()
    journal = EventJournal(root, codec="binary", segment_records=100)
    journal.append_events([Heartbeat(time=2.0)])
    journal.close()
    (jsonl,) = root.glob("*.jsonl")
    (binl,) = root.glob("*" + BINARY_SUFFIX)
    assert jsonl.stem.split("-")[1] == "0000000001"
    assert binl.stem.split("-")[1] == "0000000002"


# -- crash matrix --------------------------------------------------------------


_CRASH_CHILD = textwrap.dedent(
    """
    import sys
    from pathlib import Path
    from repro.service.events import Heartbeat
    from repro.service.journal import EventJournal

    journal = EventJournal(Path(sys.argv[1]), codec="binary", segment_records=64)
    print("ready", flush=True)
    n = 0
    while True:
        journal.append_events([Heartbeat(time=float(n + k)) for k in range(17)])
        n += 17
    """
)


def test_kill9_mid_append_leaves_clean_appendable_prefix(tmp_path):
    """SIGKILL during append_many: dense prefix, reopen, append."""
    root = tmp_path / "j"
    child = subprocess.Popen(
        [sys.executable, "-c", _CRASH_CHILD, str(root)],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
    )
    try:
        assert child.stdout.readline().strip() == b"ready"
        deadline = time.time() + 10.0
        while time.time() < deadline:
            if any(root.glob("*" + BINARY_SUFFIX)):
                break
            time.sleep(0.01)
        time.sleep(0.15)  # let a few hundred batches land
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=10)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=10)
    journal = EventJournal(root, codec="binary", segment_records=64)
    records = list(journal.iter_records())
    count = len(records)
    assert count > 0
    # Clean prefix: dense seqs, payloads are exactly the first N beats.
    assert [r.seq for r in records] == list(range(1, count + 1))
    assert [r.data["time"] for r in records] == [float(i) for i in range(count)]
    # The survivor journal accepts appends at the right sequence.
    assert journal.append_events([Heartbeat(time=1e9)]) == [count + 1]
    journal.close()


def test_torn_tail_matrix_drops_at_most_the_torn_frame(tmp_path):
    """Byte-truncate the tail segment at many offsets (simulated torn
    write): every cut yields the longest clean frame prefix, and the
    journal reopens and appends after each."""
    root = tmp_path / "j"
    journal = EventJournal(root, codec="binary", segment_records=1000)
    journal.append_events(
        [
            TaskCompleted(time=float(i) + 10.0, record=_task(task_id=f"job-0/m{i}"))
            for i in range(8)
        ]
    )
    journal.close()
    (segment,) = root.glob("*" + BINARY_SUFFIX)
    raw = segment.read_bytes()
    payloads, clean_end, error = split_frames(raw)
    assert error is None and clean_end == len(raw)
    # Frame boundaries (byte offset after each frame) paired with how
    # many *records* are complete at that offset.
    boundaries = []
    offset = 0
    records_at = 0
    table: list[str] = []
    for payload in payloads:
        offset += 8 + len(payload)
        if decode_payload(payload, table) is not None:
            records_at += 1
        boundaries.append((offset, records_at))
    cuts = sorted({clean_end - 1, clean_end - 5, clean_end // 2, 3, 11} | {
        b - 1 for b, _ in boundaries[2:5]
    })
    for cut in cuts:
        segment.write_bytes(raw[:cut])
        expected = 0
        for boundary, nrecords in boundaries:
            if boundary <= cut:
                expected = nrecords
        journal = EventJournal(root, codec="binary", segment_records=1000)
        records = list(journal.iter_records())
        assert len(records) == expected, f"cut at {cut}"
        assert [r.seq for r in records] == list(range(1, expected + 1))
        appended = journal.append_events([Heartbeat(time=99.0)])
        assert appended == [expected + 1]
        journal.close()
        segment.write_bytes(raw)  # restore for the next cut


def test_mid_file_corruption_raises_instead_of_skipping(tmp_path):
    root = tmp_path / "j"
    journal = EventJournal(root, codec="binary", segment_records=1000)
    journal.append_events([Heartbeat(time=float(i)) for i in range(50)])
    journal.close()
    (segment,) = root.glob("*" + BINARY_SUFFIX)
    raw = bytearray(segment.read_bytes())
    mid = len(raw) // 2
    raw[mid] ^= 0xFF
    segment.write_bytes(bytes(raw))
    with pytest.raises(JournalError):
        list(EventJournal(root, codec="binary").iter_records())


def test_service_resume_on_mixed_codec_state_dir(tmp_path):
    """serve (json) → kill → continue (binary) → kill torn → resume.

    The migration scenario: a state dir whose journal holds JSON
    segments followed by binary segments, with a torn binary tail, must
    resume by replaying both transparently."""
    import numpy as np

    from repro.service.daemon import ServiceConfig, TempoService
    from repro.service.ingest import stats_gap
    from repro.service.replay import build_controller, build_service, make_scenario
    from repro.service.snapshot import ServiceState

    rng = np.random.default_rng(7)
    events, t = [], 0.0
    for i in range(120):
        t += float(rng.exponential(20.0))
        tenant = ("deadline", "besteffort")[i % 2]
        job_id = f"{tenant}-{i}"
        duration = float(rng.lognormal(3.0, 0.8))
        finish = t + duration
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        events.append(
            TaskCompleted(
                finish,
                record=TaskRecord(
                    job_id=job_id,
                    task_id=f"{job_id}/t0",
                    tenant=tenant,
                    pool="map",
                    stage="map",
                    submit_time=t,
                    start_time=max(t, finish - duration),
                    finish_time=finish,
                ),
            )
        )
        events.append(
            JobCompleted(
                finish,
                record=JobRecord(
                    job_id=job_id, tenant=tenant, submit_time=t, finish_time=finish
                ),
            )
        )
    events.sort(key=lambda e: e.time)
    cut = len(events) // 2
    scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
    # No retunes: an applied tune snapshots + compacts, which would let
    # resume skip the JSON prefix — the mixed replay is the point here.
    config = ServiceConfig(window=600.0, retune_interval=10**9, min_window_jobs=3)

    def state_with(codec):
        return ServiceState(
            tmp_path,
            segment_records=64,
            snapshot_every=10**9,
            journal_codec=codec,
        )

    state = state_with("json")
    live = build_service(scenario, config, seed=0, state=state)
    for event in events[:cut]:
        live.process(event)
    state.close()
    assert list(tmp_path.glob("journal/*.jsonl"))

    # The operator flips the codec; the daemon resumes over the JSON
    # history and continues journaling binary segments.
    resumed = TempoService.resume(build_controller(scenario), state_with("binary"), config)
    assert resumed.events_processed == cut
    for event in events[cut:]:
        resumed.process(event)
    resumed.state.close()
    binary_segments = sorted(tmp_path.glob("journal/*" + BINARY_SUFFIX))
    assert binary_segments

    # Crash with a torn binary tail; every snapshot lost: the final
    # resume replays the full mixed journal and drops only the tear.
    with binary_segments[-1].open("ab") as fh:
        fh.write(b"\xde\xad\xbe\xef\x00")
    for snapshot in tmp_path.glob("snapshots/*.json"):
        snapshot.unlink()
    final = TempoService.resume(build_controller(scenario), state_with("binary"), config)
    assert final.events_processed == len(events)
    assert stats_gap(final.window) < 1e-9


# -- hypothesis fuzz -----------------------------------------------------------


_text = st.text(min_size=0, max_size=20)
_time = st.floats(min_value=0, allow_nan=False, allow_infinity=False, width=32)
_money = st.floats(allow_nan=False, width=32)  # may be +-inf
_small_int = st.integers(min_value=0, max_value=2**40)
_any_int = st.integers(min_value=-(2**70), max_value=2**70)


@st.composite
def _events_strategy(draw):
    kind = draw(st.integers(min_value=0, max_value=12))
    t = draw(_time)
    if kind == 0:
        return JobSubmitted(
            time=t,
            tenant=draw(_text),
            job_id=draw(_text),
            deadline=draw(st.none() | _money),
        )
    if kind == 1:
        base = draw(_time)
        d1 = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
        d2 = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
        return TaskCompleted(
            time=t,
            record=TaskRecord(
                job_id=draw(_text),
                task_id=draw(_text),
                tenant=draw(_text),
                pool=draw(_text),
                stage=draw(_text),
                submit_time=base,
                start_time=base + d1,
                finish_time=base + d1 + d2,
                containers=draw(_any_int),
                preempted=draw(st.booleans()),
                failed=draw(st.booleans()),
                attempt=draw(_small_int),
            ),
        )
    if kind == 2:
        base = draw(_time)
        dur = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
        return JobCompleted(
            time=t,
            record=JobRecord(
                job_id=draw(_text),
                tenant=draw(_text),
                submit_time=base,
                finish_time=base + dur,
                num_tasks=draw(_any_int),
                deadline=draw(st.none() | _money),
                tags=tuple(draw(st.lists(_text, max_size=3))),
                stage_deps=tuple(
                    (stage, tuple(deps))
                    for stage, deps in draw(
                        st.lists(
                            st.tuples(_text, st.lists(_text, max_size=2)), max_size=2
                        )
                    )
                ),
            ),
        )
    if kind == 3:
        return Heartbeat(time=t)
    if kind == 4:
        return NodeLost(time=t, pool=draw(_text), containers=draw(_small_int))
    if kind == 5:
        return NodeRecovered(time=t, pool=draw(_text), containers=draw(_small_int))
    if kind == 6:
        return TenantJoined(time=t, tenant=draw(_text))
    if kind == 7:
        return TenantLeft(time=t, tenant=draw(_text))
    if kind == 8:
        return DecisionMade(
            time=t,
            verdict=draw(_text),
            index=draw(_small_int),
            retuned=draw(st.booleans()),
            reason=draw(_text),
        )
    if kind == 9:
        return ShardFailed(time=t, shard=draw(_small_int), reason=draw(_text))
    if kind == 10:
        return ShardRecovered(
            time=t,
            shard=draw(_small_int),
            replayed=draw(_small_int),
            dropped=draw(_small_int),
            latency=draw(_time),
        )
    if kind == 11:
        return ShardPartitioned(time=t, shard=draw(_small_int), reason=draw(_text))
    return ShardReconnected(time=t, shard=draw(_small_int), outage=draw(_time))


@settings(max_examples=60, deadline=None)
@given(st.lists(_events_strategy(), min_size=1, max_size=12))
def test_binary_roundtrip_matches_json_roundtrip(events):
    """decode(binary_encode(x)) == decode(json_encode(x)), fuzzed."""
    encoder = BinaryEncoder()
    entries: list = []
    encoder.encode_event_batch(
        encode_event, events, 1, 0, 1 << 62, HEADER_FRAME, entries
    )
    blob = b"".join(part for entry in entries for part in entry[2])
    payloads, _, error = split_frames(blob)
    assert error is None
    table: list[str] = []
    decoded = [
        out for p in payloads if (out := decode_payload(p, table)) is not None
    ]
    assert len(decoded) == len(events)
    import json as _json

    for i, (event, (seq, kind, data)) in enumerate(zip(events, decoded)):
        assert seq == 1 + i
        assert kind == "event"
        via_json = _json.loads(
            canonical_json({"seq": seq, "kind": "event", "data": encode_event(event)})
        )
        assert data == via_json["data"]


@settings(max_examples=25, deadline=None)
@given(st.lists(_events_strategy(), min_size=1, max_size=8), st.integers(2, 5))
def test_fuzzed_journal_parity_across_codecs(tmp_path_factory, events, segment_records):
    """Full-journal fuzz: both codecs persist and re-read identically,
    across segment rotations."""
    base = tmp_path_factory.mktemp("codec-fuzz")
    got = {}
    for codec in JOURNAL_CODECS:
        root = base / codec
        journal = EventJournal(root, codec=codec, segment_records=segment_records)
        journal.append_events(events)
        journal.close()
        got[codec] = [
            (r.seq, r.kind, r.data)
            for r in EventJournal(root, codec=codec).iter_records()
        ]
    assert got["json"] == got["binary"]
    assert len(got["binary"]) == len(events)


# -- binary wire format --------------------------------------------------------


def test_wire_batches_roundtrip():
    batches = [(5, ALL_EVENT_SHAPES[:6]), (11, ALL_EVENT_SHAPES[6:])]
    message = encode_wire_batches(batches, encode_event)
    assert message[0] == 0x00  # WIRE_MAGIC: impossible in a JSON frame
    decoded = decode_wire_batches(message)
    assert [(seq, len(events)) for seq, events in decoded] == [(5, 6), (11, 10)]
    for (_, events), (_, originals) in zip(decoded, batches):
        assert events == [encode_event(e) for e in originals]


def test_wire_batches_reject_damage():
    message = encode_wire_batches([(1, ALL_EVENT_SHAPES[:4])], encode_event)
    with pytest.raises(ValueError):
        decode_wire_batches(message[: len(message) - 3])
    corrupt = bytearray(message)
    corrupt[len(message) // 2] ^= 0xFF
    with pytest.raises(ValueError):
        decode_wire_batches(bytes(corrupt))
