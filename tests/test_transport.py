"""Tests for the TCP transport plane: wire framing, the shard server's
request/reply loop with reconnect dedupe, :class:`RemoteShardHandle`
parity with the in-process shard, backpressure accounting, random
partition/reconnect schedules as hypothesis properties, the TCP crash
matrix, and service-level degraded serving plus lethal-partition
failover with transport metrics."""

import socket
import struct
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.daemon import ServiceConfig
from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    TaskCompleted,
)
from repro.service.failover import (
    FAULT_KINDS,
    FailoverConfig,
    FaultInjector,
    FaultSpec,
)
from repro.service.ingest import RollingWindow
from repro.service.journal import (
    EventJournal,
    canonical_json,
    decode_event,
    encode_event,
)
from repro.service.replay import build_service, make_scenario
from repro.service.sharding import (
    IngestShard,
    ShardFailedError,
    ShardHandle,
    ShardPartitionedError,
    ShardRouter,
)
from repro.service.snapshot import ServiceState
from repro.service.transport import (
    RemoteShardHandle,
    ShardServer,
    TransportConfig,
    TransportError,
    recv_frame,
    send_frame,
)
from repro.workload.trace import JobRecord, TaskRecord

TENANTS = tuple(f"tenant-{i:02d}" for i in range(7))

TELEMETRY = (JobSubmitted, TaskCompleted, JobCompleted)

#: Fast supervision for tests (same bounds as test_failover).
FAST = FailoverConfig(heartbeat_interval=0.1, failover_after=0.5)

#: Snappy transport for loopback tests: quick connects, tight backoff.
SNAPPY = TransportConfig(connect_timeout=0.5, backoff_base=0.02, backoff_max=0.2)


def _task(job_id, task_id, tenant, finish, duration):
    start = finish - duration
    return TaskRecord(
        job_id=job_id,
        task_id=task_id,
        tenant=tenant,
        pool="map",
        stage="map",
        submit_time=max(start - 1.0, 0.0),
        start_time=start,
        finish_time=finish,
    )


def _events(seed=0, count=80, tenants=TENANTS, heartbeat_every=0):
    """Deterministic multi-tenant telemetry, optionally with broadcast
    heartbeats (the journal boundaries failover rewinds to)."""
    rng = np.random.default_rng(seed)
    events, t = [], 0.0
    for i in range(count):
        t += float(rng.exponential(8.0))
        tenant = tenants[i % len(tenants)]
        job_id = f"{tenant}-{i}"
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        duration = float(rng.lognormal(3.0, 0.8))
        finish = t + duration
        events.append(
            TaskCompleted(
                finish, record=_task(job_id, f"{job_id}/t0", tenant, finish, duration)
            )
        )
        events.append(
            JobCompleted(
                finish,
                record=JobRecord(
                    job_id=job_id, tenant=tenant, submit_time=t, finish_time=finish
                ),
            )
        )
    events.sort(key=lambda e: e.time)
    if heartbeat_every:
        beats = [
            Heartbeat(events[i].time + 1e-6)
            for i in range(heartbeat_every - 1, len(events), heartbeat_every)
        ]
        events.extend(beats)
        events.sort(key=lambda e: e.time)
    return events


def _stats_close(a, b, tol=1e-9):
    assert set(a) == set(b)
    fields = (
        "jobs",
        "tasks",
        "submitted",
        "arrival_rate",
        "mean_response",
        "log_duration_mean",
        "log_duration_std",
    )
    for name in a:
        for field in fields:
            assert abs(getattr(a[name], field) - getattr(b[name], field)) <= tol, (
                name,
                field,
            )


def _oracle_stats(journaled, window, now):
    oracle = RollingWindow(window)
    oracle.ingest_many(sorted(journaled, key=lambda e: e.time))
    oracle.advance(now)
    return oracle.batch_recompute()


def _event_keys(events):
    """Canonical identity of each telemetry event (duplicate detector)."""
    return [canonical_json(encode_event(e)) for e in events]


class _ServedShard:
    """One in-thread :class:`ShardServer` around a journaled shard.

    Keeps the whole loop inside the test process (no forks) so the
    framing, dedupe, and reconnect paths can be exercised quickly and
    deterministically; the handle still talks real loopback TCP.
    """

    def __init__(self, tmp_path, window=600.0, config=None):
        self.journal_path = tmp_path / "shard-journal"
        self.journal = EventJournal(self.journal_path)
        self.shard = IngestShard(0, window, journal=self.journal)
        self.server = ShardServer(self.shard, config=config)
        self.thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self.thread.start()

    @property
    def address(self):
        return (self.server.host, self.server.port)

    def stop(self):
        self.server.stop()
        self.thread.join(timeout=10.0)

    def journaled(self):
        """Telemetry decoded back out of the (closed) shard journal."""
        reader = EventJournal(self.journal_path)
        try:
            return [
                decode_event(record.data)
                for record in reader.iter_records()
                if record.kind == "event"
                and record.data.get("type")
                in ("JobSubmitted", "TaskCompleted", "JobCompleted")
            ]
        finally:
            reader.close()


class TestFraming:
    """The wire format: length prefix + CRC frame, corruption detected."""

    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(2.0)
        b.settimeout(2.0)
        return a, b

    def test_round_trip(self):
        a, b = self._pair()
        try:
            payload = {"op": "ingest", "batches": [[1, ["x"]]], "note": "zz"}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_corrupt_body_raises_transport_error(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "ping"})
            raw = b.recv(4096)
            # Flip one byte inside the CRC-framed body; the length
            # prefix stays valid so only the checksum can catch it.
            corrupt = bytearray(raw)
            corrupt[-3] ^= 0x20
            a2, b2 = self._pair()
            try:
                a2.sendall(bytes(corrupt))
                with pytest.raises(TransportError):
                    recv_frame(b2)
            finally:
                a2.close()
                b2.close()
        finally:
            a.close()
            b.close()

    def test_oversized_and_zero_length_rejected(self):
        for length in (0, 2**31):
            a, b = self._pair()
            try:
                a.sendall(struct.pack("!I", length) + b"x")
                with pytest.raises(TransportError):
                    recv_frame(b, max_frame=1 << 20)
            finally:
                a.close()
                b.close()

    def test_non_op_payload_rejected(self):
        from repro.service.journal import frame_line

        a, b = self._pair()
        try:
            body = frame_line(canonical_json({"not-op": 1})).encode()
            a.sendall(struct.pack("!I", len(body)) + body)
            with pytest.raises(TransportError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises_connection_error(self):
        a, b = self._pair()
        try:
            a.sendall(struct.pack("!I", 100) + b"short")
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()


class TestHandleProtocol:
    """Every plane satisfies the shared ShardHandle protocol."""

    def test_in_process_shard_is_a_handle(self):
        shard = IngestShard(0, 600.0)
        try:
            assert isinstance(shard, ShardHandle)
        finally:
            shard.close()

    def test_remote_handle_is_a_handle(self, tmp_path):
        served = _ServedShard(tmp_path)
        handle = RemoteShardHandle(0, served.address, config=SNAPPY)
        try:
            assert isinstance(handle, ShardHandle)
        finally:
            handle.close()
            served.stop()

    def test_mp_worker_handle_class_has_the_surface(self):
        from repro.service.sharding import ShardWorkerHandle

        for name in (
            "ingest",
            "drain_state",
            "drain_stats",
            "heartbeat_age",
            "restore",
            "close",
        ):
            assert callable(getattr(ShardWorkerHandle, name))


class TestServerDedupe:
    """The server's applied-sequence watermark makes replays idempotent."""

    def test_replayed_batches_are_acked_but_not_applied(self, tmp_path):
        served = _ServedShard(tmp_path)
        events = _events(count=4)
        first = [encode_event(e) for e in events[:6]]
        replay = [encode_event(e) for e in events[:6]]  # same seq, resent
        fresh = [encode_event(e) for e in events[6:]]
        try:
            conn = socket.create_connection(served.address, timeout=2.0)
            conn.settimeout(2.0)
            try:
                send_frame(conn, {"op": "hello", "shard": 0})
                hello = recv_frame(conn)
                assert hello["op"] == "hello-ack" and hello["applied"] == 0

                send_frame(conn, {"op": "ingest", "batches": [[1, first]]})
                assert recv_frame(conn) == {"op": "ack", "seq": 1}
                # A reconnect replay of seq 1 (plus fresh seq 2) must
                # ack both while applying only the unseen batch.
                send_frame(
                    conn, {"op": "ingest", "batches": [[1, replay], [2, fresh]]}
                )
                assert recv_frame(conn) == {"op": "ack", "seq": 2}

                now = max(e.time for e in events) + 1.0
                send_frame(conn, {"op": "stats", "now": now})
                reply = recv_frame(conn)
                total_tasks = sum(s["tasks"] for s in reply["stats"].values())
                assert total_tasks == sum(
                    1 for e in events if isinstance(e, TaskCompleted)
                )
            finally:
                conn.close()
        finally:
            served.stop()

    def test_hello_shard_mismatch_is_fatal(self, tmp_path):
        served = _ServedShard(tmp_path)
        try:
            conn = socket.create_connection(served.address, timeout=2.0)
            conn.settimeout(2.0)
            try:
                send_frame(conn, {"op": "hello", "shard": 7})
                reply = recv_frame(conn)
                assert reply["op"] == "error"
                assert "mismatch" in reply["message"]
            finally:
                conn.close()
        finally:
            served.stop()


class TestRemoteHandleParity:
    """A shard behind a socket computes exactly in-process statistics."""

    def test_remote_stats_match_in_process(self, tmp_path):
        events = _events(seed=5, count=60)
        now = max(e.time for e in events) + 30.0
        served = _ServedShard(tmp_path)
        handle = RemoteShardHandle(0, served.address, config=SNAPPY)
        local = IngestShard(0, 600.0)
        try:
            for i in range(0, len(events), 16):
                handle.ingest(events[i : i + 16])
                local.ingest(events[i : i + 16])
            remote_stats = handle.drain_stats(now)
            local_stats = local.drain_stats(now)
            _stats_close(remote_stats, local_stats)
            state = handle.drain_state(now)
            local_state = local.drain_state(now)
            # ``seq`` is the journal high-water mark; only the served
            # shard owns a journal here, so compare the window itself.
            state.pop("seq", None)
            local_state.pop("seq", None)
            assert state == local_state
        finally:
            local.close()
            handle.close()
            served.stop()

    def test_restore_round_trip(self, tmp_path):
        events = _events(seed=6, count=40)
        now = max(e.time for e in events) + 1.0
        donor = IngestShard(0, 600.0)
        donor.ingest(events)
        window_state = donor.drain_state(now)["window"]
        donor.close()

        served = _ServedShard(tmp_path)
        handle = RemoteShardHandle(0, served.address, config=SNAPPY)
        try:
            handle.restore(window_state)
            _stats_close(
                handle.drain_stats(now), _oracle_stats(events, 600.0, now)
            )
        finally:
            handle.close()
            served.stop()


class TestReconnectDedupe:
    """Mid-stream partitions heal without losing or duplicating events."""

    def test_partition_heals_with_exact_journal(self, tmp_path):
        events = _events(seed=7, count=60)
        served = _ServedShard(tmp_path)
        handle = RemoteShardHandle(0, served.address, config=SNAPPY)
        try:
            half = len(events) // 2
            handle.ingest(events[:half])
            handle.drain_state(max(e.time for e in events[:half]))  # connected

            handle.inject_partition(0.3)
            # The tail is queued through the partition and replayed —
            # deduped at the server — once the window closes.
            for i in range(half, len(events), 8):
                handle.ingest(events[i : i + 8])
            with pytest.raises(ShardPartitionedError):
                handle.drain_state(0.0)

            time.sleep(0.45)
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    handle.drain_state(max(e.time for e in events) + 1.0)
                    break
                except ShardPartitionedError:
                    assert time.monotonic() < deadline, "never reconnected"
                    time.sleep(0.02)
            assert handle.partitions >= 1
            assert handle.reconnects >= 1
            stats = handle.transport_stats()
            assert stats["reconnects"] == handle.reconnects
            assert stats["backpressure_dropped"] == 0
        finally:
            handle.close()
            served.stop()

        journaled = served.journaled()
        assert len(journaled) == len(events)
        keys = _event_keys(journaled)
        assert len(set(keys)) == len(keys), "duplicate events in journal"
        assert sorted(keys) == sorted(_event_keys(events))


class TestBackpressure:
    """The send queue is bounded: overflow drops are counted, not kept."""

    def test_unreachable_worker_drops_past_the_bound(self):
        # A port from the ephemeral range with no listener: every
        # connect attempt fails, so batches pile into the send queue.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()
        probe.close()

        config = TransportConfig(
            connect_timeout=0.2, backoff_base=0.02, backoff_max=0.1,
            send_queue_batches=4,
        )
        handle = RemoteShardHandle(0, address, config=config)
        events = _events(count=30)
        try:
            for i in range(0, len(events), 3):
                handle.ingest(events[i : i + 3])
            assert handle.pending_batches == 4
            expected_dropped = sum(
                1 for e in events[12:] if isinstance(e, TELEMETRY)
            )
            assert handle.backpressure_dropped == expected_dropped
            time.sleep(0.3)
            assert handle.connect_attempts >= 2  # retried under backoff
            assert handle.alive  # unsupervised: partition, not death
        finally:
            handle.kill()
        assert not handle.alive and handle.reason == "fenced"
        with pytest.raises(ShardFailedError):
            handle.drain_state(0.0)

    def test_drop_net_counts_telemetry_only(self, tmp_path):
        served = _ServedShard(tmp_path)
        handle = RemoteShardHandle(0, served.address, config=SNAPPY)
        events = _events(count=12)
        try:
            handle.inject_drop(1)
            batch = events[:6] + [Heartbeat(events[5].time)]
            handle.ingest(batch)  # dropped: telemetry counted, beat not
            handle.ingest(events[6:])
            assert handle.telemetry_dropped == 6
            handle.drain_state(max(e.time for e in events) + 1.0)
        finally:
            handle.close()
            served.stop()
        assert len(served.journaled()) == len(events) - 6


@st.composite
def partition_schedule(draw):
    """A random fault schedule over the chunked stream: per-chunk gap,
    an optional transient partition, latency, or a drop burst."""
    chunks = draw(st.integers(min_value=2, max_value=4))
    schedule = []
    for _ in range(chunks):
        kind = draw(
            st.sampled_from(["none", "partition", "latency", "drop", "partition"])
        )
        amount = 0.0
        if kind == "partition":
            amount = draw(st.floats(min_value=0.05, max_value=0.25))
        elif kind == "latency":
            amount = draw(st.floats(min_value=0.0, max_value=0.003))
        elif kind == "drop":
            amount = draw(st.integers(min_value=1, max_value=2))
        schedule.append((kind, amount))
    return schedule


class TestPartitionScheduleProperties:
    """For ANY transient partition/reconnect schedule, the journal holds
    exactly the routed telemetry minus the counted drops, with zero
    duplicates — at-least-once delivery plus idempotent apply."""

    @settings(max_examples=8, deadline=None)
    @given(schedule=partition_schedule())
    def test_journaled_equals_routed_minus_dropped(self, tmp_path_factory, schedule):
        tmp_path = tmp_path_factory.mktemp("transport-prop")
        events = _events(seed=11, count=48)
        chunk = max(1, len(events) // len(schedule))
        served = _ServedShard(tmp_path)
        handle = RemoteShardHandle(0, served.address, config=SNAPPY)
        partition_end = 0.0
        try:
            for index, (kind, amount) in enumerate(schedule):
                part = events[index * chunk :]
                if index < len(schedule) - 1:
                    part = events[index * chunk : (index + 1) * chunk]
                if kind == "partition":
                    handle.inject_partition(amount)
                    partition_end = max(
                        partition_end, time.monotonic() + amount
                    )
                elif kind == "latency":
                    handle.inject_latency(amount)
                elif kind == "drop":
                    handle.inject_drop(int(amount))
                for i in range(0, len(part), 6):
                    handle.ingest(part[i : i + 6])

            handle.inject_latency(0.0)
            time.sleep(max(0.0, partition_end - time.monotonic()) + 0.1)
            now = max(e.time for e in events) + 1.0
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    handle.drain_state(now)
                    break
                except ShardPartitionedError:
                    assert time.monotonic() < deadline, "never reconnected"
                    time.sleep(0.02)
            dropped = handle.telemetry_dropped + handle.backpressure_dropped
        finally:
            handle.close()
            served.stop()

        journaled = served.journaled()
        assert len(journaled) == len(events) - dropped
        keys = _event_keys(journaled)
        assert len(set(keys)) == len(keys), "duplicate events in journal"
        assert set(keys) <= set(_event_keys(events))


class TestTcpCrashMatrix:
    """Every fault kind against the TCP loopback worker plane.

    The same post-mortem as test_failover's crash matrix: journals
    CRC-clean, survivors journal exactly the telemetry routed to them
    minus counted drops, merged statistics equal a batch recompute over
    the journaled set to 1e-9.
    """

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_matrix_tcp(self, tmp_path, kind):
        shards, victim = 2, 1
        events = _events(seed=4, count=120, heartbeat_every=40)
        half = len(events) // 2
        amount = {
            "stall-shard": 1.0,
            "drop-batches": 2.0,
            "slow-journal": 2.0,
            "partition": 0.3,  # transient: heals under failover_after
            "slow-net": 5.0,  # ms per frame
            "drop-net": 2.0,
        }.get(kind)
        state = ServiceState(tmp_path, shards=shards)
        service = build_service(
            make_scenario("steady", scale=1.0, horizon=3600.0),
            ServiceConfig(window=600.0, retune_interval=300.0, min_window_jobs=3),
            seed=0,
            state=state,
            shards=shards,
            tcp_workers=True,
            failover=FAST,
        )
        injector = FaultInjector(
            [FaultSpec(kind=kind, at=1.0, shard=victim, amount=amount)], seed=0
        )
        injector.arm(service)
        service.ingest_batch(events[:half])
        assert injector.advance(10**9), "the scheduled fault must fire"
        service.ingest_batch(events[half:])
        if kind == "partition":
            time.sleep(amount + 0.2)  # heal before the barrier
        if kind == "stall-shard":
            # Give supervision time to notice the unresponsive worker.
            deadline = time.monotonic() + 5.0
            while not service.failovers and time.monotonic() < deadline:
                service.check_shards()
                time.sleep(0.05)

        merged = service.window
        snap, now = merged.snapshot(), merged.now
        failovers = list(service.failovers)
        transport = service.transport_stats()
        service.close()
        state.close()

        failed = {report.shard for report in failovers}
        if kind in ("kill-shard", "stall-shard"):
            assert failed == {victim}
            reason = failovers[0].reason
            if kind == "kill-shard":
                assert reason in ("fenced", "killed", "process-exit")
            else:
                assert reason in ("stall", "reply-timeout", "heartbeat-timeout")
        else:
            assert failed == set()  # transient faults never fail over
        if kind == "partition":
            totals = transport.get(victim, {})
            assert totals.get("partitions", 0) >= 1
            assert totals.get("reconnects", 0) >= 1

        router = ShardRouter(shards)
        routed = [[] for _ in range(shards)]
        for event in events:
            if isinstance(event, TELEMETRY):
                routed[router.route(event)].append(event)
        reader = ServiceState(tmp_path, shards=shards)
        try:
            journaled = [
                [
                    decode_event(record.data)
                    for record in reader.shard_journal(i).iter_records()
                    if record.kind == "event"
                    and record.data.get("type")
                    in ("JobSubmitted", "TaskCompleted", "JobCompleted")
                ]
                for i in range(shards)
            ]
        finally:
            reader.close()
        dropped = injector.dropped_by_shard()
        for i in range(shards):
            expected = len(routed[i]) - dropped.get(i, 0)
            if i in failed:
                # The fenced worker's queue residue and truncated tail
                # are the failover's bounded loss; never a survivor's.
                assert 0 <= len(journaled[i]) <= expected
            else:
                assert len(journaled[i]) == expected, f"shard {i} lost events"
            keys = _event_keys(journaled[i])
            assert len(set(keys)) == len(keys), f"shard {i} duplicates"

        _stats_close(
            snap,
            _oracle_stats(
                [e for part in journaled for e in part], service.config.window, now
            ),
        )


class TestServicePartitionPolicy:
    """Degraded-mode serving through a transient partition; fencing and
    journal-replay failover once a partition outlives ``failover_after``."""

    def _build(self, tmp_path, observe=False):
        state = ServiceState(tmp_path, shards=2)
        service = build_service(
            make_scenario("steady", scale=1.0, horizon=3600.0),
            ServiceConfig(
                window=600.0,
                retune_interval=300.0,
                min_window_jobs=3,
                observe=observe,
            ),
            seed=0,
            state=state,
            shards=2,
            tcp_workers=True,
            failover=FAST,
        )
        return state, service

    def _control_kinds(self, tmp_path):
        reader = ServiceState(tmp_path, shards=2)
        try:
            return [
                record.data.get("type")
                for record in reader.journal.iter_records()
                if record.kind == "event"
            ]
        finally:
            reader.close()

    def test_transient_partition_serves_stale_then_recovers(self, tmp_path):
        events = _events(seed=8, count=120, heartbeat_every=40)
        half = len(events) // 2
        state, service = self._build(tmp_path, observe=True)
        try:
            service.ingest_batch(events[:half])
            service.window  # cache merged stats for degraded serving

            service.shards[1].inject_partition(0.35)
            stale = service.window  # barrier during the partition
            assert service.stale_serves >= 1
            assert stale is not None

            time.sleep(0.55)  # heal: shorter than failover_after overall
            service.ingest_batch(events[half:])
            merged = service.window
            snap, now = merged.snapshot(), merged.now

            assert not list(service.failovers)  # transient: no failover
            totals = service.transport_stats()[1]
            assert totals["reconnects"] >= 1
            assert totals["partitions"] >= 1

            # The scraped counters surface as registry series.
            service._observe_transport()
            assert (
                service.metrics.counter_value(
                    "tempo_transport_reconnects_total", shard="1"
                )
                >= 1.0
            )
        finally:
            service.close()
            state.close()

        kinds = self._control_kinds(tmp_path)
        assert "ShardPartitioned" in kinds
        assert "ShardReconnected" in kinds

        reader = ServiceState(tmp_path, shards=2)
        try:
            journaled = [
                decode_event(record.data)
                for i in range(2)
                for record in reader.shard_journal(i).iter_records()
                if record.kind == "event"
                and record.data.get("type")
                in ("JobSubmitted", "TaskCompleted", "JobCompleted")
            ]
        finally:
            reader.close()
        telemetry = [e for e in events if isinstance(e, TELEMETRY)]
        assert len(journaled) == len(telemetry)  # zero loss through heal
        _stats_close(snap, _oracle_stats(journaled, service.config.window, now))

    def test_lethal_partition_fences_and_fails_over(self, tmp_path):
        events = _events(seed=9, count=120, heartbeat_every=40)
        half = len(events) // 2
        state, service = self._build(tmp_path)
        try:
            service.ingest_batch(events[:half])
            service.window

            service.shards[1].inject_partition(3.0)  # > failover_after
            deadline = time.monotonic() + 8.0
            while not service.failovers and time.monotonic() < deadline:
                service.check_shards()
                time.sleep(0.05)
            failovers = list(service.failovers)
            assert [report.shard for report in failovers] == [1]
            assert failovers[0].reason in ("partition", "heartbeat-timeout")
            assert failovers[0].replayed >= 0

            service.ingest_batch(events[half:])  # replacement takes over
            merged = service.window
            snap, now = merged.snapshot(), merged.now
        finally:
            service.close()
            state.close()

        reader = ServiceState(tmp_path, shards=2)
        try:
            journaled = [
                decode_event(record.data)
                for i in range(2)
                for record in reader.shard_journal(i).iter_records()
                if record.kind == "event"
                and record.data.get("type")
                in ("JobSubmitted", "TaskCompleted", "JobCompleted")
            ]
        finally:
            reader.close()
        keys = _event_keys(journaled)
        assert len(set(keys)) == len(keys), "failover duplicated events"
        _stats_close(snap, _oracle_stats(journaled, service.config.window, now))
