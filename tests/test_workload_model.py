"""Unit tests for the workload data model."""

import math

import pytest

from repro.workload.model import (
    DEFAULT_POOL,
    JobSpec,
    StageSpec,
    TaskSpec,
    Workload,
    mapreduce_job,
    single_stage_job,
)


def make_stage(name="s", n=2, duration=5.0, deps=(), ready_fraction=1.0, pool=DEFAULT_POOL):
    tasks = tuple(
        TaskSpec(task_id=f"{name}{i}", duration=duration, pool=pool) for i in range(n)
    )
    return StageSpec(name=name, tasks=tasks, deps=deps, ready_fraction=ready_fraction)


class TestTaskSpec:
    def test_valid(self):
        t = TaskSpec("t0", 5.0)
        assert t.pool == DEFAULT_POOL
        assert t.containers == 1

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative duration"):
            TaskSpec("t0", -1.0)

    def test_zero_containers_rejected(self):
        with pytest.raises(ValueError, match="containers"):
            TaskSpec("t0", 1.0, containers=0)


class TestStageSpec:
    def test_total_work(self):
        s = make_stage(n=3, duration=4.0)
        assert s.total_work == pytest.approx(12.0)
        assert s.num_tasks == 3

    def test_ready_fraction_bounds(self):
        with pytest.raises(ValueError, match="ready_fraction"):
            make_stage(ready_fraction=0.0)
        with pytest.raises(ValueError, match="ready_fraction"):
            make_stage(ready_fraction=1.5)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="depends on itself"):
            make_stage(name="x", deps=("x",))


class TestJobSpec:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage names"):
            JobSpec("j", "A", 0.0, (make_stage("s"), make_stage("s")))

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown stages"):
            JobSpec("j", "A", 0.0, (make_stage("s", deps=("ghost",)),))

    def test_cycle_rejected(self):
        a = make_stage("a", deps=("b",))
        b = make_stage("b", deps=("a",))
        with pytest.raises(ValueError, match="cycle"):
            JobSpec("j", "A", 0.0, (a, b))

    def test_critical_path_chain(self):
        a = make_stage("a", n=2, duration=10.0)
        b = make_stage("b", n=1, duration=7.0, deps=("a",))
        job = JobSpec("j", "A", 0.0, (a, b))
        assert job.critical_path() == pytest.approx(17.0)

    def test_critical_path_diamond(self):
        a = make_stage("a", n=1, duration=5.0)
        b = make_stage("b", n=1, duration=10.0, deps=("a",))
        c = make_stage("c", n=1, duration=2.0, deps=("a",))
        d = make_stage("d", n=1, duration=1.0, deps=("b", "c"))
        job = JobSpec("j", "A", 0.0, (a, b, c, d))
        assert job.critical_path() == pytest.approx(16.0)

    def test_with_submit_time_shifts_deadline(self):
        job = single_stage_job("A", 10.0, [5.0], deadline=100.0)
        moved = job.with_submit_time(50.0)
        assert moved.submit_time == 50.0
        assert moved.deadline == pytest.approx(140.0)

    def test_num_tasks_and_work(self):
        job = mapreduce_job("A", 0.0, [3.0, 4.0], [5.0])
        assert job.num_tasks == 3
        assert job.total_work == pytest.approx(12.0)

    def test_pools(self):
        job = mapreduce_job("A", 0.0, [1.0], [1.0])
        assert job.pools == {"map", "reduce"}

    def test_stage_lookup(self):
        job = mapreduce_job("A", 0.0, [1.0], [1.0])
        assert job.stage("map").num_tasks == 1
        with pytest.raises(KeyError):
            job.stage("ghost")


class TestBuilders:
    def test_map_only_job_has_single_stage(self):
        job = mapreduce_job("A", 0.0, [1.0, 2.0], [])
        assert len(job.stages) == 1
        assert job.stages[0].name == "map"

    def test_slowstart_recorded(self):
        job = mapreduce_job("A", 0.0, [1.0], [1.0], slowstart=0.6)
        assert job.stage("reduce").ready_fraction == pytest.approx(0.6)

    def test_single_stage_job_deadline(self):
        job = single_stage_job("A", 1.0, [2.0], deadline=50.0)
        assert job.deadline == 50.0


class TestWorkload:
    def test_sorted_by_submit(self):
        w = Workload(
            [
                single_stage_job("A", 10.0, [1.0], job_id="late"),
                single_stage_job("A", 0.0, [1.0], job_id="early"),
            ]
        )
        assert [j.job_id for j in w] == ["early", "late"]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate job ids"):
            Workload(
                [
                    single_stage_job("A", 0.0, [1.0], job_id="x"),
                    single_stage_job("B", 1.0, [1.0], job_id="x"),
                ]
            )

    def test_window_reanchors(self):
        w = Workload(
            [
                single_stage_job("A", 100.0, [1.0], job_id="in", deadline=160.0),
                single_stage_job("A", 300.0, [1.0], job_id="out"),
            ],
            horizon=400.0,
        )
        win = w.window(100.0, 200.0)
        assert [j.job_id for j in win] == ["in"]
        assert win[0].submit_time == 0.0
        assert win[0].deadline == pytest.approx(60.0)
        assert win.horizon == pytest.approx(100.0)

    def test_window_bad_bounds(self):
        w = Workload([], horizon=10.0)
        with pytest.raises(ValueError):
            w.window(5.0, 1.0)

    def test_tenants_pools_totals(self, mr_workload):
        assert mr_workload.tenants() == {"A", "B"}
        assert mr_workload.pools() == {"map", "reduce"}
        assert mr_workload.num_tasks == 11

    def test_filter_and_merge(self):
        a = single_stage_job("A", 0.0, [1.0], job_id="a")
        b = single_stage_job("B", 0.0, [1.0], job_id="b")
        w = Workload([a, b])
        only_a = w.filter(lambda j: j.tenant == "A")
        assert [j.job_id for j in only_a] == ["a"]
        merged = only_a.merged_with(Workload([b]))
        assert len(merged) == 2

    def test_jobs_of(self):
        a = single_stage_job("A", 0.0, [1.0], job_id="a")
        b = single_stage_job("B", 0.0, [1.0], job_id="b")
        w = Workload([a, b])
        assert [j.job_id for j in w.jobs_of("B")] == ["b"]
