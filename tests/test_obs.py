"""Tests for the observability plane: registry, spans, persistence, CLI."""

import io
import json
import re

import numpy as np
import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
)
from repro.obs.introspect import (
    last_metrics_sample,
    load_latest_snapshot,
    read_status,
)
from repro.obs.metrics import parse_series_key, series_key
from repro.service.daemon import ServiceConfig, TempoService
from repro.service.events import JobCompleted, JobSubmitted, TaskCompleted
from repro.service.replay import (
    ScenarioReplayer,
    build_controller,
    build_service,
    make_scenario,
)
from repro.service.snapshot import ServiceState
from repro.workload.trace import JobRecord, TaskRecord

#: One line of the Prometheus text exposition format (comment, HELP/TYPE,
#: or a sample with optional labels); used to validate ``render()``.
PROM_LINE = re.compile(
    r"^(?:"
    r"# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (?:NaN|[+-]Inf|[-+]?[0-9.eE+-]+)"
    r")$"
)


def _telemetry(seed=0, count=120, tenants=("deadline", "besteffort")):
    """Pure telemetry events (no control-plane events, no heartbeats)."""
    rng = np.random.default_rng(seed)
    events, t = [], 0.0
    for i in range(count):
        t += float(rng.exponential(15.0))
        tenant = tenants[i % len(tenants)]
        job_id = f"{tenant}-{i}"
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        duration = float(rng.lognormal(3.0, 0.6))
        finish = t + duration
        start = finish - duration
        events.append(
            TaskCompleted(
                finish,
                record=TaskRecord(
                    job_id=job_id,
                    task_id=f"{job_id}/t0",
                    tenant=tenant,
                    pool="map",
                    stage="map",
                    submit_time=max(start - 1.0, 0.0),
                    start_time=start,
                    finish_time=finish,
                ),
            )
        )
        events.append(
            JobCompleted(
                finish,
                record=JobRecord(
                    job_id=job_id, tenant=tenant, submit_time=t, finish_time=finish
                ),
            )
        )
    events.sort(key=lambda e: e.time)
    return events


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", help="things")
        c.inc()
        c.inc(3)
        assert registry.counter_value("x_total") == 4.0
        # Same (name, labels) returns the same instrument.
        assert registry.counter("x_total") is c

    def test_counter_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("v_total", verdict="accept").inc()
        registry.counter("v_total", verdict="revert").inc(2)
        assert registry.counter_value("v_total", verdict="accept") == 1.0
        assert registry.counter_value("v_total", verdict="revert") == 2.0

    def test_gauge_set_replaces_and_modes_govern_merge(self):
        """``set`` always replaces; ``mode`` decides how merges combine."""
        a = MetricsRegistry()
        a.gauge("g_last").set(5.0)
        a.gauge("g_last").set(2.0)
        assert a.gauge_value("g_last") == 2.0
        a.gauge("g_max", mode="max").set(5.0)
        a.gauge("g_sum", mode="sum").set(5.0)
        b = MetricsRegistry()
        b.gauge("g_last").set(9.0)
        b.gauge("g_max", mode="max").set(2.0)
        b.gauge("g_sum", mode="sum").set(2.0)
        a.merge(b.to_dict())
        assert a.gauge_value("g_last") == 9.0  # incoming wins
        assert a.gauge_value("g_max") == 5.0  # worst-of
        assert a.gauge_value("g_sum") == 7.0  # additive

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        h = registry.histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]  # last bucket is implicit +Inf
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("bad2_seconds", buckets=(2.0, 1.0))

    def test_span_phases(self):
        span = Span()
        with span.phase("drain"):
            pass
        with span.phase("merge"):
            pass
        with span.phase("drain"):  # re-entering accumulates
            pass
        assert set(span.durations) == {"drain", "merge"}
        assert all(d >= 0.0 for d in span.durations.values())
        assert span.total == pytest.approx(sum(span.durations.values()))

    def test_series_key_round_trip(self):
        key = series_key("m_total", {"b": "2", "a": "1"})
        assert key == 'm_total{a="1",b="2"}'  # labels sorted
        name, labels = parse_series_key(key)
        assert name == "m_total"
        assert labels == {"a": "1", "b": "2"}
        assert parse_series_key("bare_total") == ("bare_total", {})


class TestRegistrySerialization:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="c", verdict="accept").inc(3)
        registry.gauge("g_depth", help="g").set(7.0)
        registry.gauge("g_lag", mode="max").set(2.0)
        h = registry.histogram("h_seconds", help="h", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return registry

    def test_to_dict_from_dict_round_trip(self):
        registry = self._populated()
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()

    def test_restore_overwrites(self):
        registry = self._populated()
        other = MetricsRegistry()
        other.counter("c_total", verdict="accept").inc(100)
        other.restore(registry.to_dict())
        assert other.counter_value("c_total", verdict="accept") == 3.0

    def test_merge_adds_counters_and_histograms(self):
        a = self._populated()
        b = self._populated()
        a.merge(b.to_dict())
        assert a.counter_value("c_total", verdict="accept") == 6.0
        h = a.to_dict()["histograms"]["h_seconds"]
        assert h["count"] == 4
        assert h["counts"] == [2, 2, 0]
        # Gauge modes: "last" takes the incoming value, "max" the max.
        assert a.gauge_value("g_depth") == 7.0
        assert a.gauge_value("g_lag") == 2.0

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h_seconds", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.to_dict())

    def test_n_shard_merge_equals_single_registry(self):
        """Shard-local registries merged at drain == one global registry."""
        rng = np.random.default_rng(7)
        single = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(4)]
        for _ in range(500):
            shard = shards[int(rng.integers(4))]
            amount = int(rng.integers(1, 10))
            for reg in (single, shard):
                reg.counter("e_total").inc(amount)
                reg.histogram("b_records", buckets=(2.0, 8.0)).observe(amount)
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard.to_dict())
        assert merged.to_dict() == single.to_dict()

    def test_render_prometheus_grammar(self):
        registry = self._populated()
        text = registry.render()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert PROM_LINE.match(line), f"bad exposition line: {line!r}"
        # HELP/TYPE exactly once per metric name.
        assert text.count("# TYPE c_total ") == 1
        assert text.count("# HELP c_total ") == 1
        # Histograms expose cumulative buckets plus _sum/_count.
        assert '+Inf"} 2' in text
        assert "h_seconds_count 2" in text

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        registry.counter("c_total").inc()
        registry.gauge("g").set(5.0)
        registry.histogram("h_seconds").observe(1.0)
        assert len(registry) == 0
        assert registry.counter_value("c_total") == 0.0
        assert registry.to_dict() == {}
        assert registry.render() == ""


class TestServiceMetrics:
    def _config(self, **kwargs):
        return ServiceConfig(
            window=600.0, retune_interval=1e12, min_window_jobs=3, **kwargs
        )

    def test_sharded_totals_match_single_shard(self):
        """3-shard merged ingest totals == the single-shard count."""
        events = _telemetry(count=150)
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        totals = []
        for shards in (1, 3):
            service = build_service(
                scenario, self._config(), seed=0, shards=shards
            )
            for event in events:
                service.process(event)
            snap = service.metrics_snapshot()
            totals.append(snap.counter_value("tempo_ingest_events_total"))
            service.close()
        assert totals[0] == totals[1] == len(events)

    def test_observe_false_keeps_registry_null(self):
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        service = build_service(
            scenario, self._config(observe=False), seed=0
        )
        for event in _telemetry(count=30):
            service.process(event)
        assert isinstance(service.metrics, NullRegistry)
        assert len(service.metrics_snapshot()) == 0
        service.close()

    def test_default_config_journals_no_metrics_records(self, tmp_path):
        """API-built services keep journal bytes identical: no sampling."""
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        state = ServiceState(tmp_path)
        service = build_service(scenario, self._config(), seed=0, state=state)
        for event in _telemetry(count=60):
            service.process(event)
        service.close()
        assert last_metrics_sample(tmp_path) is None
        loaded = load_latest_snapshot(tmp_path)
        if loaded is not None:
            assert "metrics" not in loaded[1]

    def test_metrics_survive_kill_and_resume(self, tmp_path):
        """snapshot -> kill -9 -> resume: counters monotone, histograms exact."""
        scenario = make_scenario("steady", scale=1.0, horizon=7200.0)
        config = ServiceConfig(
            window=600.0,
            retune_interval=300.0,
            min_window_jobs=3,
            sample_metrics=True,
        )
        state = ServiceState(tmp_path)
        service = build_service(scenario, config, seed=1, state=state)
        ScenarioReplayer(scenario, service, seed=1, verify_stats=False).run(3600.0)
        live = service.metrics_snapshot().to_dict()
        # kill -9: abandon without close(); the sync journal is durable.
        del service, state

        loaded = load_latest_snapshot(tmp_path)
        assert loaded is not None
        persisted = loaded[1]["metrics"]["control"]
        assert last_metrics_sample(tmp_path) is not None

        resumed = TempoService.resume(
            build_controller(scenario), ServiceState(tmp_path), config
        )
        restored = resumed.metrics.to_dict()
        resumed.close()
        # Counters are monotone across the crash: the journal tail is
        # re-observed on top of the snapshot registry, so every restored
        # counter >= its snapshot value, and none regressed vs the live
        # pre-kill view by more than the un-snapshotted suffix allows.
        for key, value in persisted["counters"].items():
            assert restored["counters"][key] >= value
        for key, value in restored["counters"].items():
            assert value <= live["counters"].get(key, float("inf"))
        # Histograms restore bit-identically from the snapshot: nothing
        # observes latency during journal replay.
        assert restored["histograms"] == persisted["histograms"]

    def test_decision_counters_cover_journal_tail(self, tmp_path):
        """Decisions journaled after the last snapshot still count."""
        scenario = make_scenario("steady", scale=1.0, horizon=7200.0)
        config = ServiceConfig(
            window=600.0,
            retune_interval=300.0,
            min_window_jobs=3,
            sample_metrics=True,
        )
        state = ServiceState(tmp_path, snapshot_every=10**9)  # never snapshot
        service = build_service(scenario, config, seed=1, state=state)
        ScenarioReplayer(scenario, service, seed=1, verify_stats=False).run(2400.0)
        decisions = len(service.decisions)
        assert decisions > 0
        del service, state
        resumed = TempoService.resume(
            build_controller(scenario), ServiceState(tmp_path), config
        )
        total = sum(
            value
            for key, value in resumed.metrics.counters()
            if key.startswith("tempo_decisions_total")
        )
        assert total == len(resumed.decisions) > 0
        resumed.close()


class TestStatusCli:
    def _run_state_dir(self, tmp_path):
        from repro.cli import main

        state_dir = tmp_path / "state"
        out = io.StringIO()
        code = main(
            [
                "replay",
                "--scenario",
                "steady",
                "--horizon",
                "1",
                "--state-dir",
                str(state_dir),
            ],
            out=out,
        )
        assert code == 0
        return state_dir, out.getvalue()

    def test_replay_summary_reports_drops(self, tmp_path):
        _, text = self._run_state_dir(tmp_path)
        assert "dropped=0" in text

    def test_status_text(self, tmp_path):
        from repro.cli import main

        state_dir, _ = self._run_state_dir(tmp_path)
        out = io.StringIO()
        assert main(["status", "--state-dir", str(state_dir)], out=out) == 0
        text = out.getvalue()
        assert "tempo_ingest_events_total" in text
        assert "last MetricsSampled" in text
        assert "metrics source:" in text

    def test_status_prom_grammar(self, tmp_path):
        from repro.cli import main

        state_dir, _ = self._run_state_dir(tmp_path)
        out = io.StringIO()
        code = main(
            ["status", "--state-dir", str(state_dir), "--format", "prom"],
            out=out,
        )
        assert code == 0
        lines = out.getvalue().splitlines()
        assert any(line.startswith("tempo_ingest_events_total") for line in lines)
        for line in lines:
            assert PROM_LINE.match(line), f"bad exposition line: {line!r}"

    def test_status_refuses_non_state_dir(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no journal"):
            main(["status", "--state-dir", str(tmp_path / "nope")], out=io.StringIO())

    def test_log_json_emits_decision_lines(self, tmp_path):
        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["replay", "--scenario", "steady", "--horizon", "1", "--log-json"],
            out=out,
        )
        assert code == 0
        decisions = [
            json.loads(line)
            for line in out.getvalue().splitlines()
            if line.startswith("{")
        ]
        assert decisions
        for record in decisions:
            assert record["type"] == "decision"
            assert set(record) == {
                "type",
                "time",
                "index",
                "verdict",
                "retuned",
                "reason",
            }

    def test_status_matches_journal_tail_sample(self, tmp_path):
        """`repro status` is consistent with the newest MetricsSampled."""
        state_dir, _ = self._run_state_dir(tmp_path)
        status = read_status(state_dir)
        sample = status["sample"]
        assert sample is not None
        tail = MetricsRegistry.from_dict(sample["metrics"])
        shown = status["registry"]
        # Whichever source was picked, it saw at least as many events as
        # the journal's newest sample (the snapshot may be newer).
        assert shown.counter_value(
            "tempo_ingest_events_total"
        ) >= tail.counter_value("tempo_ingest_events_total")
