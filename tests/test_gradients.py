"""Unit tests for the sample buffer and LOESS gradient estimator."""

import numpy as np
import pytest

from repro.core.gradients import GradientEstimator, SampleBuffer


class TestSampleBuffer:
    def test_add_and_arrays(self):
        buf = SampleBuffer(dim=2, n_objectives=3)
        buf.add([0.1, 0.2], [1.0, 2.0, 3.0])
        xs, fs = buf.arrays()
        assert xs.shape == (1, 2)
        assert fs.shape == (1, 3)

    def test_dimension_validation(self):
        buf = SampleBuffer(dim=2, n_objectives=1)
        with pytest.raises(ValueError):
            buf.add([0.1], [1.0])
        with pytest.raises(ValueError):
            buf.add([0.1, 0.2], [1.0, 2.0])

    def test_eviction_drops_oldest(self):
        buf = SampleBuffer(dim=1, n_objectives=1, max_size=3)
        for i in range(5):
            buf.add([float(i)], [float(i)])
        xs, _ = buf.arrays()
        assert list(xs.ravel()) == [2.0, 3.0, 4.0]

    def test_max_size_validation(self):
        with pytest.raises(ValueError):
            SampleBuffer(dim=5, n_objectives=1, max_size=3)

    def test_clear(self):
        buf = SampleBuffer(dim=1, n_objectives=1)
        buf.add([0.0], [0.0])
        buf.clear()
        assert len(buf) == 0

    def test_empty_arrays(self):
        xs, fs = SampleBuffer(dim=2, n_objectives=1).arrays()
        assert xs.shape == (0, 2)


class TestGradientEstimator:
    def test_not_ready_raises(self):
        buf = SampleBuffer(dim=2, n_objectives=1)
        est = GradientEstimator(buf)
        assert not est.ready
        with pytest.raises(ValueError):
            est.jacobian([0.0, 0.0])

    def test_recovers_linear_jacobian(self, rng):
        buf = SampleBuffer(dim=3, n_objectives=2)
        a = np.array([[1.0, 2.0, -1.0], [0.0, -3.0, 4.0]])
        for _ in range(40):
            x = rng.uniform(size=3)
            buf.add(x, a @ x)
        est = GradientEstimator(buf, frac=0.8)
        assert est.ready
        jac = est.jacobian([0.5, 0.5, 0.5])
        np.testing.assert_allclose(jac, a, atol=1e-6)

    def test_smoothed_denoises(self, rng):
        buf = SampleBuffer(dim=1, n_objectives=1)
        for _ in range(120):
            x = rng.uniform(size=1)
            buf.add(x, [3.0 * x[0] + rng.normal(0, 0.3)])
        est = GradientEstimator(buf, frac=0.5)
        assert est.smoothed([0.5])[0] == pytest.approx(1.5, abs=0.2)
