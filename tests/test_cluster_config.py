"""Unit and property tests for ClusterSpec, TenantConfig, ConfigSpace."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace, ParamSpec, RMConfig, TenantConfig


class TestClusterSpec:
    def test_basics(self):
        cl = ClusterSpec({"map": 8, "reduce": 4})
        assert cl.capacity("map") == 8
        assert cl.total_capacity == 12
        assert cl.pool_names == ["map", "reduce"]

    def test_unknown_pool(self):
        with pytest.raises(KeyError):
            ClusterSpec({"slots": 4}).capacity("gpu")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec({})

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec({"slots": 0})

    def test_scaled(self):
        cl = ClusterSpec({"map": 8, "reduce": 4})
        half = cl.scaled(0.5)
        assert half.capacity("map") == 4
        assert half.capacity("reduce") == 2

    def test_scaled_never_below_one(self):
        tiny = ClusterSpec({"slots": 2}).scaled(0.1)
        assert tiny.capacity("slots") == 1

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            ClusterSpec({"slots": 2}).scaled(0.0)


class TestTenantConfig:
    def test_defaults(self):
        t = TenantConfig()
        assert t.weight == 1.0
        assert math.isinf(t.min_share_preemption_timeout)

    def test_min_above_max_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            TenantConfig(min_share={"slots": 5}, max_share={"slots": 3})

    def test_bad_weight(self):
        with pytest.raises(ValueError):
            TenantConfig(weight=0.0)

    def test_max_for_clamps_to_capacity(self):
        t = TenantConfig(max_share={"slots": 100})
        assert t.max_for("slots", 8) == 8
        assert TenantConfig().max_for("slots", 8) == 8

    def test_min_for_default_zero(self):
        assert TenantConfig().min_for("slots") == 0


class TestRMConfig:
    def test_unknown_tenant_defaults(self):
        cfg = RMConfig({"A": TenantConfig(weight=2.0)})
        assert cfg.tenant("ghost").weight == 1.0

    def test_with_tenant(self):
        cfg = RMConfig({"A": TenantConfig()})
        cfg2 = cfg.with_tenant("B", TenantConfig(weight=3.0))
        assert cfg2.tenant("B").weight == 3.0
        assert "B" not in cfg.tenants

    def test_describe_mentions_everything(self):
        cfg = RMConfig(
            {
                "A": TenantConfig(
                    weight=2.0,
                    min_share={"slots": 2},
                    fair_share_preemption_timeout=300.0,
                )
            }
        )
        text = cfg.describe()
        assert "A:" in text and "weight=2.00" in text and "300s" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RMConfig({})


class TestParamSpec:
    def test_linear_roundtrip(self):
        p = ParamSpec("A", "min_share", "slots", 0.0, 10.0, integer=True)
        assert p.decode(p.encode(7.0)) == 7.0

    def test_log_roundtrip(self):
        p = ParamSpec("A", "fair_timeout", "", 10.0, 1000.0, log=True)
        assert p.decode(p.encode(100.0)) == pytest.approx(100.0, rel=1e-9)

    def test_clipping(self):
        p = ParamSpec("A", "weight", "", 1.0, 4.0)
        assert p.encode(99.0) == 1.0
        assert p.decode(2.0) == 4.0

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            ParamSpec("A", "weight", "", 5.0, 2.0)
        with pytest.raises(ValueError):
            ParamSpec("A", "weight", "", 0.0, 2.0, log=True)


@pytest.fixture
def space(mr_cluster):
    return ConfigSpace(mr_cluster, ["A", "B"])


class TestConfigSpace:
    def test_dim_counts_params(self, mr_cluster):
        # Per tenant: weight + 2 pools * (min+max) + 2 timeouts = 7.
        space = ConfigSpace(mr_cluster, ["A", "B"])
        assert space.dim == 14
        only_weights = ConfigSpace(
            mr_cluster, ["A", "B"], tune_limits=False, tune_timeouts=False
        )
        assert only_weights.dim == 2

    def test_encode_decode_roundtrip(self, space):
        cfg = RMConfig(
            {
                "A": TenantConfig(
                    weight=2.0,
                    min_share={"map": 2, "reduce": 1},
                    max_share={"map": 6, "reduce": 3},
                    min_share_preemption_timeout=60.0,
                    fair_share_preemption_timeout=600.0,
                ),
                "B": TenantConfig(weight=1.0),
            }
        )
        decoded = space.decode(space.encode(cfg))
        a = decoded.tenant("A")
        assert a.weight == pytest.approx(2.0, rel=0.01)
        assert a.min_share == {"map": 2, "reduce": 1}
        assert a.max_share == {"map": 6, "reduce": 3}
        assert a.min_share_preemption_timeout == pytest.approx(60.0, rel=0.01)

    def test_decode_always_valid(self, space, rng):
        """Any unit-cube vector decodes to a valid RMConfig."""
        for _ in range(50):
            cfg = space.decode(rng.uniform(size=space.dim))
            for tenant in ("A", "B"):
                t = cfg.tenant(tenant)
                for pool in ("map", "reduce"):
                    assert t.min_for(pool) <= t.max_for(pool, 1_000)

    def test_decode_reconciles_oversubscribed_mins(self, mr_cluster):
        space = ConfigSpace(mr_cluster, ["A", "B"])
        # All-ones vector maxes every min share; decode must scale them.
        cfg = space.decode(np.ones(space.dim))
        total_min = sum(cfg.tenant(t).min_for("map") for t in ("A", "B"))
        assert total_min <= mr_cluster.capacity("map")

    def test_distance_normalized(self, space):
        x = np.zeros(space.dim)
        y = np.ones(space.dim)
        assert space.distance(x, y) == pytest.approx(1.0)
        assert space.distance(x, x) == 0.0

    def test_project_into_ball(self, space, rng):
        center = space.random_point(rng)
        x = space.random_point(rng)
        projected = space.project(x, center, 0.1)
        assert space.distance(projected, center) <= 0.1 + 1e-9

    def test_wrong_shape_rejected(self, space):
        with pytest.raises(ValueError):
            space.decode(np.zeros(3))

    def test_needs_tenants_and_params(self, mr_cluster):
        with pytest.raises(ValueError):
            ConfigSpace(mr_cluster, [])
        with pytest.raises(ValueError):
            ConfigSpace(
                mr_cluster,
                ["A"],
                tune_weights=False,
                tune_limits=False,
                tune_timeouts=False,
            )


@settings(max_examples=60, deadline=None)
@given(radius=st.floats(0.01, 0.5), seed=st.integers(0, 1000))
def test_random_neighbor_within_radius(radius, seed):
    cluster = ClusterSpec({"slots": 16})
    space = ConfigSpace(cluster, ["A", "B"])
    rng = np.random.default_rng(seed)
    x = space.random_point(rng)
    neighbor = space.random_neighbor(x, radius, rng)
    assert space.distance(x, neighbor) <= radius + 1e-9
    assert np.all(neighbor >= 0.0) and np.all(neighbor <= 1.0)
