"""Unit and property tests for scalarizations and MGDA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scalarization import (
    conic_scalarize,
    mgda_direction,
    min_norm_weights,
    weighted_sum,
)


class TestWeightedSum:
    def test_value(self):
        assert weighted_sum([1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_sum([1.0], [1.0, 2.0])

    def test_paper_counterexample(self):
        """Equal-weight sum picks (0,7) although it violates r=(6,6)."""
        c = [0.5, 0.5]
        assert weighted_sum(c, [0.0, 7.0]) < weighted_sum(c, [5.0, 5.0])


class TestConicScalarization:
    def test_reduces_to_weighted_sum_at_alpha_zero(self):
        f = [1.0, -2.0]
        assert conic_scalarize([1.0, 1.0], f, 0.0) == pytest.approx(
            weighted_sum([1.0, 1.0], f)
        )

    def test_alpha_penalizes_imbalance(self):
        # Same weighted sum (6), but the skewed point has a larger l1
        # magnitude, which the conic term penalizes.
        balanced = conic_scalarize([1.0, 1.0], [3.0, 3.0], alpha=0.5)
        skewed = conic_scalarize([1.0, 1.0], [-1.0, 7.0], alpha=0.5)
        assert balanced < skewed

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            conic_scalarize([1.0], [1.0], alpha=-0.1)


class TestMinNormWeights:
    def test_single_objective(self):
        assert min_norm_weights(np.array([[1.0, 2.0]])) == pytest.approx([1.0])

    def test_orthogonal_equal_norm(self):
        c = min_norm_weights(np.eye(2))
        np.testing.assert_allclose(c, [0.5, 0.5], atol=1e-6)

    def test_opposing_gradients_min_norm_zero(self):
        jac = np.array([[1.0, 0.0], [-1.0, 0.0]])
        c = min_norm_weights(jac)
        d = jac.T @ c
        assert np.linalg.norm(d) < 1e-4

    def test_identical_gradients(self):
        jac = np.array([[2.0, 0.0], [2.0, 0.0]])
        c = min_norm_weights(jac)
        assert np.sum(c) == pytest.approx(1.0)
        d = jac.T @ c
        np.testing.assert_allclose(d, [2.0, 0.0], atol=1e-6)

    def test_simplex_constraints(self):
        rng = np.random.default_rng(0)
        jac = rng.normal(size=(4, 6))
        c = min_norm_weights(jac)
        assert np.all(c >= -1e-12)
        assert np.sum(c) == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(2, 5),
    n=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_mgda_direction_is_common_descent(k, n, seed):
    """g_i . d >= ||d||^2 - eps for every objective gradient g_i.

    This is the defining property of the min-norm element: if d != 0,
    stepping along -d decreases every objective to first order.
    """
    rng = np.random.default_rng(seed)
    jac = rng.normal(size=(k, n))
    d = mgda_direction(jac)
    d_norm_sq = float(d @ d)
    for g in jac:
        assert float(g @ d) >= d_norm_sq - 1e-4 * max(d_norm_sq, 1.0)
