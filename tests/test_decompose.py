"""Unit tests for workload decomposition (the §10 extension)."""

import numpy as np
import pytest

from repro.workload.decompose import (
    decompose_tenant,
    job_features,
    separation_score,
)
from repro.workload.model import Workload, single_stage_job


def bimodal_workload(n_small=20, n_big=10, seed=0):
    """One tenant mixing tiny interactive jobs with huge batch jobs."""
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for i in range(n_small):
        jobs.append(
            single_stage_job(
                "mixed", t, rng.uniform(2, 8, size=2), job_id=f"small-{i}"
            )
        )
        t += 10.0
    for i in range(n_big):
        jobs.append(
            single_stage_job(
                "mixed", t, rng.uniform(200, 600, size=12), job_id=f"big-{i}"
            )
        )
        t += 10.0
    jobs.append(single_stage_job("other", 0.0, [5.0], job_id="other-0"))
    return Workload(jobs, horizon=t)


class TestJobFeatures:
    def test_feature_vector_shape(self):
        job = single_stage_job("A", 0.0, [10.0, 20.0], job_id="j")
        f = job_features(job)
        assert f.shape == (3,)
        assert np.all(np.isfinite(f))

    def test_bigger_job_bigger_features(self):
        small = job_features(single_stage_job("A", 0.0, [5.0], job_id="s"))
        big = job_features(single_stage_job("A", 0.0, [500.0] * 10, job_id="b"))
        assert np.all(big >= small)


class TestDecomposeTenant:
    def test_bimodal_split_is_clean(self):
        result = decompose_tenant(bimodal_workload(), "mixed", k=2, seed=1)
        assert result.sub_tenants == ("mixed/c0", "mixed/c1")
        # Every small job in c0, every big job in c1 (c0 = smallest work).
        for job_id, sub in result.assignments.items():
            if job_id.startswith("small"):
                assert sub == "mixed/c0", job_id
            else:
                assert sub == "mixed/c1", job_id

    def test_other_tenants_untouched(self):
        result = decompose_tenant(bimodal_workload(), "mixed", k=2)
        assert "other" in result.workload.tenants()
        assert len(result.workload.jobs_of("other")) == 1

    def test_job_count_preserved(self):
        w = bimodal_workload()
        result = decompose_tenant(w, "mixed", k=2)
        assert len(result.workload) == len(w)

    def test_deterministic(self):
        r1 = decompose_tenant(bimodal_workload(), "mixed", k=2, seed=5)
        r2 = decompose_tenant(bimodal_workload(), "mixed", k=2, seed=5)
        assert r1.assignments == r2.assignments

    def test_validation(self):
        w = bimodal_workload(n_small=1, n_big=0)
        with pytest.raises(ValueError, match="jobs"):
            decompose_tenant(w, "mixed", k=3)
        with pytest.raises(ValueError, match="k must be"):
            decompose_tenant(bimodal_workload(), "mixed", k=1)

    def test_three_way_split_runs(self):
        result = decompose_tenant(bimodal_workload(), "mixed", k=3, seed=2)
        assert len(result.sub_tenants) == 3
        assert set(result.assignments.values()) <= set(result.sub_tenants)


class TestSeparationScore:
    def test_bimodal_scores_high(self):
        result = decompose_tenant(bimodal_workload(), "mixed", k=2, seed=1)
        score = separation_score(result.workload, result.sub_tenants)
        assert score > 5.0

    def test_homogeneous_scores_low(self):
        rng = np.random.default_rng(3)
        jobs = [
            single_stage_job("uni", 10.0 * i, rng.uniform(9, 11, size=4), job_id=f"u{i}")
            for i in range(30)
        ]
        w = Workload(jobs)
        result = decompose_tenant(w, "uni", k=2, seed=3)
        bimodal = decompose_tenant(bimodal_workload(), "mixed", k=2, seed=1)
        assert separation_score(
            result.workload, result.sub_tenants
        ) < separation_score(bimodal.workload, bimodal.sub_tenants)

    def test_empty_groups_score_zero(self):
        w = bimodal_workload()
        assert separation_score(w, ["ghost1", "ghost2"]) == 0.0
