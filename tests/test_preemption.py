"""Unit tests for starvation clocks and victim selection."""

import math
from dataclasses import dataclass

import pytest

from repro.rm.preemption import StarvationClock, select_victims


@dataclass
class FakeTask:
    tenant: str
    start_time: float
    containers: int = 1


class TestStarvationClock:
    def test_starts_when_below_entitlement_with_demand(self):
        clock = StarvationClock()
        clock.update(now=10.0, allocation=1, demand=5, min_entitlement=3, fair_entitlement=4)
        assert clock.below_min_since == 10.0
        assert clock.below_fair_since == 10.0

    def test_resets_when_satisfied(self):
        clock = StarvationClock()
        clock.update(10.0, 1, 5, 3, 4)
        clock.update(20.0, 4, 5, 3, 4)
        assert clock.below_min_since is None
        assert clock.below_fair_since is None

    def test_no_starvation_without_demand(self):
        clock = StarvationClock()
        clock.update(10.0, 1, 1, 3, 4)  # demand == allocation
        assert clock.below_min_since is None

    def test_clock_start_is_sticky(self):
        clock = StarvationClock()
        clock.update(10.0, 1, 5, 3, 4)
        clock.update(30.0, 1, 5, 3, 4)
        assert clock.below_min_since == 10.0

    def test_next_deadline(self):
        clock = StarvationClock()
        clock.update(10.0, 0, 5, 3, 4)
        assert clock.next_deadline(60.0, 120.0) == pytest.approx(70.0)
        assert clock.next_deadline(math.inf, 120.0) == pytest.approx(130.0)
        assert clock.next_deadline(math.inf, math.inf) == math.inf

    def test_triggered_level_prefers_min(self):
        clock = StarvationClock()
        clock.update(0.0, 0, 5, 3, 4)
        assert clock.triggered_level(59.0, 60.0, 60.0) is None
        assert clock.triggered_level(60.0, 60.0, 60.0) == "min"
        assert clock.triggered_level(60.0, math.inf, 60.0) == "fair"


class TestVictimSelection:
    def test_most_recent_first(self):
        running = [
            FakeTask("A", 0.0),
            FakeTask("A", 50.0),
            FakeTask("A", 100.0),
        ]
        victims = select_victims(
            running,
            needed=2,
            allocations={"A": 3},
            fair_entitlements={"A": 1},
        )
        assert [v.start_time for v in victims] == [100.0, 50.0]

    def test_never_digs_below_fair_share(self):
        running = [FakeTask("A", t) for t in (0.0, 1.0, 2.0)]
        victims = select_victims(
            running,
            needed=5,
            allocations={"A": 3},
            fair_entitlements={"A": 2},
        )
        assert len(victims) == 1  # A's surplus is only 1

    def test_protected_tenant_spared(self):
        running = [FakeTask("A", 0.0), FakeTask("B", 1.0)]
        victims = select_victims(
            running,
            needed=2,
            allocations={"A": 1, "B": 1},
            fair_entitlements={"A": 0, "B": 0},
            protected={"B"},
        )
        assert all(v.tenant == "A" for v in victims)

    def test_zero_needed(self):
        assert select_victims([FakeTask("A", 0.0)], 0, {"A": 1}, {"A": 0}) == []

    def test_multi_container_tasks(self):
        running = [FakeTask("A", 10.0, containers=3), FakeTask("A", 5.0, containers=1)]
        victims = select_victims(
            running, needed=2, allocations={"A": 4}, fair_entitlements={"A": 0}
        )
        # The 3-container recent task alone frees enough.
        assert victims[0].containers == 3

    def test_task_bigger_than_surplus_skipped(self):
        running = [FakeTask("A", 10.0, containers=3)]
        victims = select_victims(
            running, needed=3, allocations={"A": 3}, fair_entitlements={"A": 1}
        )
        # Surplus 2 < task size 3: cannot kill without digging below fair.
        assert victims == []
