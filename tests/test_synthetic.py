"""Tests for the Company-ABC and two-tenant synthetic workloads."""

import numpy as np
import pytest

from repro.rm.config import RMConfig
from repro.workload.model import MAP_POOL, REDUCE_POOL
from repro.workload.synthetic import (
    BEST_EFFORT_TENANT,
    COMPANY_ABC_TENANTS,
    DEADLINE_TENANT,
    company_abc_cluster,
    company_abc_model,
    company_abc_workload,
    expert_config,
    two_tenant_cluster,
    two_tenant_expert_config,
    two_tenant_model,
)


class TestTable1Characteristics:
    """The six tenants match Table 1's qualitative descriptions."""

    def test_six_tenants(self):
        assert [t.name for t in COMPANY_ABC_TENANTS] == [
            "BI",
            "DEV",
            "APP",
            "STR",
            "MV",
            "ETL",
        ]
        model = company_abc_model()
        assert model.tenants == sorted(t.name for t in COMPANY_ABC_TENANTS)

    def test_deadline_driven_tenants(self):
        model = company_abc_model()
        for name in ("APP", "MV", "ETL"):
            assert model.tenant_model(name).deadline_driven, name
        for name in ("BI", "DEV", "STR"):
            assert not model.tenant_model(name).deadline_driven, name

    def test_str_is_map_only_and_long_running(self):
        str_model = company_abc_model().tenant_model("STR")
        assert [s.pool for s in str_model.stages] == [MAP_POOL]
        assert str_model.stages[0].task_duration.median >= 100.0

    def test_mv_has_long_reduces(self):
        mv = company_abc_model().tenant_model("MV")
        reduce_stage = [s for s in mv.stages if s.pool == REDUCE_POOL][0]
        assert reduce_stage.task_duration.median >= 300.0

    def test_app_jobs_small_and_frequent(self):
        app = company_abc_model().tenant_model("APP")
        map_stage = app.stages[0]
        assert map_stage.task_count.median <= 4
        assert app.arrival.rate > company_abc_model().tenant_model("MV").arrival.rate

    def test_dev_is_high_variance_mixture(self):
        dev = company_abc_model().tenant_model("DEV")
        bi = company_abc_model().tenant_model("BI")
        assert dev.stages[0].task_duration.sigma > bi.stages[0].task_duration.sigma

    def test_etl_weekend_drop(self):
        etl = company_abc_model().tenant_model("ETL")
        weekday = etl.rate_pattern.factor(0.0)  # Monday burst window
        weekend = etl.rate_pattern.factor(5 * 86400.0)  # Saturday, same phase
        assert weekend < weekday

    def test_scale_parameter(self):
        base = company_abc_model(1.0).tenant_model("BI").arrival.rate
        double = company_abc_model(2.0).tenant_model("BI").arrival.rate
        assert double == pytest.approx(2 * base)
        with pytest.raises(ValueError):
            company_abc_model(0.0)


class TestWorkloadGeneration:
    def test_generates_all_tenants(self):
        w = company_abc_workload(seed=0, horizon=4 * 3600.0)
        assert w.tenants() == {"BI", "DEV", "APP", "STR", "MV", "ETL"}

    def test_fits_cluster(self):
        w = company_abc_workload(seed=1, horizon=3600.0)
        cluster = company_abc_cluster()
        for job in w:
            for _, task in job.tasks():
                assert task.containers <= cluster.capacity(task.pool)


class TestExpertConfig:
    def test_covers_all_tenants(self):
        cfg = expert_config()
        assert set(cfg.tenant_names()) == {"BI", "DEV", "APP", "STR", "MV", "ETL"}

    def test_production_tenants_favored(self):
        cfg = expert_config()
        assert cfg.tenant("ETL").weight > cfg.tenant("DEV").weight
        assert cfg.tenant("ETL").min_for(MAP_POOL) > 0
        assert cfg.tenant("BI").min_for(MAP_POOL) == 0

    def test_mins_feasible(self):
        cfg = expert_config()
        cluster = company_abc_cluster()
        for pool in (MAP_POOL, REDUCE_POOL):
            total_min = sum(
                cfg.tenant(t).min_for(pool) for t in cfg.tenant_names()
            )
            assert total_min <= cluster.capacity(pool)


class TestTwoTenantScenario:
    def test_tenants(self):
        model = two_tenant_model()
        assert set(model.tenants) == {DEADLINE_TENANT, BEST_EFFORT_TENANT}
        assert model.tenant_model(DEADLINE_TENANT).deadline_driven
        assert not model.tenant_model(BEST_EFFORT_TENANT).deadline_driven

    def test_best_effort_reduces_are_longer(self):
        """Figure 8's key asymmetry: best-effort reduces run long."""
        model = two_tenant_model()
        be = [s for s in model.tenant_model(BEST_EFFORT_TENANT).stages if s.pool == REDUCE_POOL][0]
        dl = [s for s in model.tenant_model(DEADLINE_TENANT).stages if s.pool == REDUCE_POOL][0]
        assert be.task_duration.median > dl.task_duration.median

    def test_reduce_pool_contended(self):
        """Offered reduce load lands near (but not over) saturation."""
        model = two_tenant_model()
        w = model.generate(0, 4 * 3600.0)
        cluster = two_tenant_cluster()
        reduce_work = sum(
            t.duration
            for j in w
            for s in j.stages
            for t in s.tasks
            if t.pool == REDUCE_POOL
        )
        load = reduce_work / (cluster.capacity(REDUCE_POOL) * 4 * 3600.0)
        assert 0.5 < load < 1.1

    def test_expert_config_valid(self):
        cfg = two_tenant_expert_config()
        assert isinstance(cfg, RMConfig)
        assert cfg.tenant(DEADLINE_TENANT).weight > cfg.tenant(BEST_EFFORT_TENANT).weight
