"""Unit tests for objectives, SLO sets, and QS templates."""

import math

import numpy as np
import pytest

from repro.slo.objectives import Objective, SLOSet
from repro.slo.qs import AverageResponseTime, DeadlineViolationFraction
from repro.slo.templates import (
    QSTemplate,
    deadline_slo,
    fairness_slo,
    response_time_slo,
    throughput_slo,
    utilization_slo,
)
from repro.workload.trace import JobRecord, Trace


@pytest.fixture
def trace():
    jobs = [
        JobRecord("a0", "A", 0.0, 60.0, deadline=50.0, num_tasks=1),
        JobRecord("a1", "A", 0.0, 20.0, deadline=40.0, num_tasks=1),
    ]
    return Trace([], jobs, capacity={"slots": 2}, horizon=100.0)


class TestObjective:
    def test_priority_scales_value_and_threshold(self, trace):
        obj = Objective(AverageResponseTime("A"), threshold=30.0, priority=2.0)
        assert obj.evaluate(trace) == pytest.approx(80.0)  # 2 * 40
        assert obj.raw(trace) == pytest.approx(40.0)
        assert obj.scaled_threshold == pytest.approx(60.0)

    def test_unconstrained_threshold_is_inf(self):
        obj = Objective(AverageResponseTime("A"))
        assert math.isinf(obj.scaled_threshold)

    def test_default_label(self):
        obj = Objective(AverageResponseTime("A"))
        assert obj.label == "ajr(A)"

    def test_bad_priority(self):
        with pytest.raises(ValueError):
            Objective(AverageResponseTime("A"), priority=0.0)

    def test_with_threshold(self):
        obj = Objective(AverageResponseTime("A"))
        assert obj.with_threshold(5.0).threshold == 5.0


class TestSLOSet:
    def _slos(self):
        return SLOSet(
            [
                Objective(
                    DeadlineViolationFraction("A", 0.0),
                    threshold=0.1,
                    label="DL",
                ),
                Objective(AverageResponseTime("A"), label="AJR"),
            ]
        )

    def test_evaluate_vector(self, trace):
        f = self._slos().evaluate(trace)
        assert f[0] == pytest.approx(0.5)  # one of two misses
        assert f[1] == pytest.approx(40.0)

    def test_thresholds(self):
        r = self._slos().thresholds()
        assert r[0] == pytest.approx(0.1)
        assert math.isinf(r[1])

    def test_violations_and_regret(self):
        slos = self._slos()
        f = np.array([0.5, 40.0])
        assert list(slos.violations(f)) == [True, False]
        assert slos.max_regret(f) == pytest.approx(0.4)

    def test_rebased_sets_best_effort_threshold(self):
        slos = self._slos()
        rebased = slos.rebased(np.array([0.5, 40.0]))
        assert rebased[1].threshold == pytest.approx(40.0)
        assert rebased[0].threshold == pytest.approx(0.1)  # unchanged

    def test_duplicate_labels_rejected(self):
        obj = Objective(AverageResponseTime("A"), label="X")
        with pytest.raises(ValueError):
            SLOSet([obj, Objective(AverageResponseTime("B"), label="X")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SLOSet([])


class TestTemplateBuilders:
    def test_response_time_slo(self):
        obj = response_time_slo("A", threshold=120.0)
        assert obj.threshold == 120.0
        assert obj.label == "AJR[A]"

    def test_deadline_slo(self):
        obj = deadline_slo("B", max_violation_fraction=0.05, slack=0.25)
        assert obj.threshold == 0.05
        assert obj.metric.slack == 0.25

    def test_deadline_slo_validation(self):
        with pytest.raises(ValueError):
            deadline_slo("B", max_violation_fraction=2.0)

    def test_utilization_slo_sign(self):
        obj = utilization_slo(0.7, pool="map")
        assert obj.threshold == pytest.approx(-0.7)

    def test_throughput_slo(self):
        obj = throughput_slo("A", min_jobs=10)
        assert obj.threshold == pytest.approx(-10.0)

    def test_fairness_slo(self):
        obj = fairness_slo("A", desired_share=0.3, max_deviation=0.05)
        assert obj.threshold == 0.05


class TestQSTemplate:
    def test_instantiate_deadline(self):
        tpl = QSTemplate(
            "B", "deadline", {"max_violation_fraction": 0.05, "slack": 0.25}, priority=2.0
        )
        obj = tpl.instantiate()
        assert obj.priority == 2.0
        assert obj.metric.tenant == "B"

    def test_from_dict(self):
        tpl = QSTemplate.from_dict(
            {
                "queue": "A",
                "slo": "response_time",
                "threshold": 120,
                "priority": 3,
            }
        )
        obj = tpl.instantiate()
        assert obj.threshold == 120
        assert obj.priority == 3.0

    def test_from_dict_missing_keys(self):
        with pytest.raises(ValueError, match="missing key"):
            QSTemplate.from_dict({"slo": "deadline"})

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown QS template kind"):
            QSTemplate("A", "latency_p99")

    def test_cluster_scoped_utilization(self):
        tpl = QSTemplate("*", "utilization", {"min_utilization": 0.5})
        obj = tpl.instantiate()
        assert obj.metric.tenant is None
