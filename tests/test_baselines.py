"""Unit tests for the baseline optimizers."""

import numpy as np
import pytest

from repro.core.baselines import (
    NSGAIILite,
    RandomSearchOptimizer,
    WeightedSumOptimizer,
)
from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace


@pytest.fixture
def space():
    return ConfigSpace(ClusterSpec({"slots": 8}), ["A"], tune_limits=False)


def sphere(space, center_value=0.2):
    target = np.full(space.dim, center_value)

    def evaluate(x):
        return np.array([float(np.sum((x - target) ** 2))])

    return evaluate


def two_objective(space):
    t1 = np.zeros(space.dim)
    t2 = np.ones(space.dim)

    def evaluate(x):
        return np.array(
            [float(np.sum((x - t1) ** 2)), float(np.sum((x - t2) ** 2))]
        )

    return evaluate


class TestRandomSearch:
    def test_improves_objective(self, space):
        opt = RandomSearchOptimizer(
            space, sphere(space), [np.inf], trust_radius=0.3, seed=0
        )
        res = opt.optimize(np.full(space.dim, 0.9), 20)
        assert res.f[0] < 0.5 * np.sum((0.9 - 0.2) ** 2 * np.ones(space.dim))

    def test_never_regresses(self, space):
        opt = RandomSearchOptimizer(space, sphere(space), [np.inf], seed=1)
        res = opt.optimize(np.full(space.dim, 0.9), 15)
        values = res.trajectory()[:, 0]
        assert np.all(np.diff(values) <= 1e-12)

    def test_feasibility_first_ranking(self, space):
        # Constraint on f <= 0.3: once feasible points appear they win.
        opt = RandomSearchOptimizer(
            space, sphere(space), [0.3], trust_radius=0.4, seed=2
        )
        res = opt.optimize(np.full(space.dim, 0.95), 25)
        assert res.steps[-1].max_regret <= res.steps[0].max_regret


class TestWeightedSum:
    def test_descends_weighted_sum(self, space):
        opt = WeightedSumOptimizer(
            space, two_objective(space), [np.inf, np.inf], seed=3
        )
        res = opt.optimize(np.full(space.dim, 0.9), 25)
        start = res.trajectory()[0].sum()
        end = res.trajectory()[-1].sum()
        assert end < start

    def test_weights_shape_validated(self, space):
        with pytest.raises(ValueError):
            WeightedSumOptimizer(
                space, two_objective(space), [np.inf, np.inf], weights=[1.0]
            )

    def test_ignores_constraints_by_design(self, space):
        """The documented deficiency: ranking is blind to thresholds."""
        opt = WeightedSumOptimizer(space, two_objective(space), [0.001, np.inf])
        f = np.array([10.0, 0.0])
        assert opt._rank_key(f)[0] == 0.0  # no feasibility component


class TestNSGAIILite:
    def test_runs_and_improves(self, space):
        opt = NSGAIILite(
            space, two_objective(space), [np.inf, np.inf], population=8, seed=4
        )
        res = opt.optimize(np.full(space.dim, 0.5), 6)
        assert len(res.steps) == 6
        # Elitism keeps the front, but crowding may evict the single
        # scalar-best member; require no gross regression.
        assert res.steps[-1].proxy <= res.steps[0].proxy * 1.25 + 0.1

    def test_population_validation(self, space):
        with pytest.raises(ValueError):
            NSGAIILite(space, two_objective(space), [np.inf, np.inf], population=2)

    def test_evaluation_budget_is_heavy(self, space):
        """Evolutionary search burns population-many evaluations per
        generation — the expense the paper holds against this class."""
        opt = NSGAIILite(
            space, two_objective(space), [np.inf, np.inf], population=8, seed=5
        )
        res = opt.optimize(np.full(space.dim, 0.5), 3)
        assert res.total_evaluations >= 3 * 8

    def test_crowding_extremes_infinite(self):
        front = [np.array([0.0, 1.0]), np.array([0.5, 0.5]), np.array([1.0, 0.0])]
        crowding = NSGAIILite._crowding(front)
        assert np.isinf(crowding[0]) or np.isinf(crowding[2])
