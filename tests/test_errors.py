"""Unit and property tests for RAE/RSE error metrics (Section 8.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.errors import relative_absolute_error, relative_squared_error


class TestDefinitions:
    def test_perfect_prediction_is_zero(self):
        obs = [1.0, 2.0, 3.0]
        assert relative_absolute_error(obs, obs) == 0.0
        assert relative_squared_error(obs, obs) == 0.0

    def test_mean_predictor_scores_one(self):
        obs = [1.0, 2.0, 3.0, 4.0]
        mean_pred = [2.5] * 4
        assert relative_absolute_error(mean_pred, obs) == pytest.approx(1.0)
        assert relative_squared_error(mean_pred, obs) == pytest.approx(1.0)

    def test_constant_observations_degenerate(self):
        assert relative_absolute_error([5.0], [5.0]) == 0.0
        assert math.isinf(relative_absolute_error([6.0], [5.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            relative_absolute_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_squared_error([], [])

    def test_known_value(self):
        obs = [0.0, 10.0]
        pred = [1.0, 9.0]
        # RAE = (1+1) / (5+5) = 0.2 ; RSE = sqrt((1+1)/(25+25)) = 0.2
        assert relative_absolute_error(pred, obs) == pytest.approx(0.2)
        assert relative_squared_error(pred, obs) == pytest.approx(0.2)


_observations = st.lists(st.floats(-100, 100), min_size=3, max_size=30).filter(
    lambda xs: max(xs) - min(xs) > 1e-6
)


@settings(max_examples=50, deadline=None)
@given(obs=_observations)
def test_errors_non_negative(obs):
    rng = np.random.default_rng(0)
    pred = np.asarray(obs) + rng.normal(0, 1, len(obs))
    assert relative_absolute_error(pred, obs) >= 0.0
    assert relative_squared_error(pred, obs) >= 0.0


@settings(max_examples=50, deadline=None)
@given(obs=_observations)
def test_errors_scale_invariant(obs):
    pred = [o + 1.0 for o in obs]
    rae1 = relative_absolute_error(pred, obs)
    scaled_obs = [3.0 * o for o in obs]
    scaled_pred = [3.0 * p for p in pred]
    rae2 = relative_absolute_error(scaled_pred, scaled_obs)
    assert rae1 == pytest.approx(rae2, rel=1e-9)
