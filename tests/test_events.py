"""Unit tests for the event queue."""

import math

import pytest

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_fifo_on_ties(self):
        q = EventQueue()
        for kind in ("first", "second", "third"):
            q.push(1.0, kind)
        assert [q.pop().kind for _ in range(3)] == ["first", "second", "third"]

    def test_pop_batch_collects_simultaneous(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(1.0, "b")
        q.push(2.0, "c")
        batch = q.pop_batch()
        assert [e.kind for e in batch] == ["a", "b"]
        assert len(q) == 1

    def test_pop_batch_empty(self):
        assert EventQueue().pop_batch() == []

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() == math.inf
        q.push(4.0, "x")
        assert q.peek_time() == 4.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), "x")

    def test_drain(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        assert [e.kind for e in q.drain()] == ["a", "b"]
        assert not q

    def test_payload_carried(self):
        q = EventQueue()
        q.push(1.0, "x", payload={"k": 1})
        assert q.pop().payload == {"k": 1}
