"""Unit tests for instantaneous scheduling policies."""

import pytest

from repro.rm.config import RMConfig, TenantConfig
from repro.rm.policies import (
    CapacityPolicy,
    FairSharePolicy,
    FifoPolicy,
    TenantDemand,
)


def demand(tenant, runnable, running=0, oldest=0.0):
    return TenantDemand(
        tenant=tenant,
        runnable=runnable,
        running=running,
        oldest_pending_submit=oldest,
    )


class TestFairSharePolicy:
    def test_weighted_split(self):
        cfg = RMConfig(
            {"A": TenantConfig(weight=1.0), "B": TenantConfig(weight=3.0)}
        )
        alloc = FairSharePolicy().allocate(
            "slots", 8, [demand("A", 10), demand("B", 10)], cfg
        )
        assert alloc == {"A": 2, "B": 6}

    def test_max_share_enforced(self):
        cfg = RMConfig(
            {
                "A": TenantConfig(max_share={"slots": 2}),
                "B": TenantConfig(),
            }
        )
        alloc = FairSharePolicy().allocate(
            "slots", 8, [demand("A", 10), demand("B", 10)], cfg
        )
        assert alloc["A"] == 2
        assert alloc["B"] == 6

    def test_min_share_enforced(self):
        cfg = RMConfig(
            {
                "A": TenantConfig(min_share={"slots": 6}),
                "B": TenantConfig(),
            }
        )
        alloc = FairSharePolicy().allocate(
            "slots", 8, [demand("A", 10), demand("B", 10)], cfg
        )
        assert alloc["A"] >= 6

    def test_running_counts_as_demand(self):
        cfg = RMConfig({"A": TenantConfig(), "B": TenantConfig()})
        alloc = FairSharePolicy().allocate(
            "slots", 8, [demand("A", 0, running=8), demand("B", 8)], cfg
        )
        # Both demand 8; fair split is 4/4 even though A holds everything.
        assert alloc == {"A": 4, "B": 4}


class TestFifoPolicy:
    def test_earliest_first(self):
        cfg = RMConfig({"A": TenantConfig(), "B": TenantConfig()})
        alloc = FifoPolicy().allocate(
            "slots",
            8,
            [demand("A", 10, oldest=100.0), demand("B", 10, oldest=5.0)],
            cfg,
        )
        assert alloc["B"] == 8
        assert alloc["A"] == 0

    def test_leftovers_flow_to_later_tenants(self):
        cfg = RMConfig({"A": TenantConfig(), "B": TenantConfig()})
        alloc = FifoPolicy().allocate(
            "slots",
            8,
            [demand("A", 3, oldest=1.0), demand("B", 10, oldest=2.0)],
            cfg,
        )
        assert alloc == {"A": 3, "B": 5}

    def test_max_limit_respected(self):
        cfg = RMConfig({"A": TenantConfig(max_share={"slots": 4}), "B": TenantConfig()})
        alloc = FifoPolicy().allocate(
            "slots", 8, [demand("A", 10, oldest=1.0), demand("B", 10, oldest=2.0)], cfg
        )
        assert alloc == {"A": 4, "B": 4}


class TestCapacityPolicy:
    def test_owned_fractions(self):
        policy = CapacityPolicy({"A": 0.75, "B": 0.25})
        cfg = RMConfig({"A": TenantConfig(), "B": TenantConfig()})
        alloc = policy.allocate("slots", 8, [demand("A", 10), demand("B", 10)], cfg)
        assert alloc == {"A": 6, "B": 2}

    def test_spillover_when_owner_idle(self):
        policy = CapacityPolicy({"A": 0.75, "B": 0.25})
        cfg = RMConfig({"A": TenantConfig(), "B": TenantConfig()})
        alloc = policy.allocate("slots", 8, [demand("A", 1), demand("B", 10)], cfg)
        assert alloc == {"A": 1, "B": 7}

    def test_fractions_normalized(self):
        policy = CapacityPolicy({"A": 3.0, "B": 1.0})
        cfg = RMConfig({"A": TenantConfig(), "B": TenantConfig()})
        alloc = policy.allocate("slots", 8, [demand("A", 10), demand("B", 10)], cfg)
        assert alloc == {"A": 6, "B": 2}

    def test_zero_fractions_rejected(self):
        with pytest.raises(ValueError):
            CapacityPolicy({"A": 0.0})

    def test_fair_entitlements_defaults_to_allocation(self):
        policy = CapacityPolicy({"A": 1.0})
        cfg = RMConfig({"A": TenantConfig()})
        ents = policy.fair_entitlements("slots", 4, [demand("A", 10)], cfg)
        assert ents == {"A": 4}
