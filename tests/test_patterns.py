"""Unit tests for temporal workload patterns."""

import pytest

from repro.workload.patterns import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    BurstPattern,
    DiurnalPattern,
    FlatPattern,
    WeeklyPattern,
)


class TestFlatPattern:
    def test_constant(self):
        p = FlatPattern(2.5)
        assert p.factor(0.0) == 2.5
        assert p.factor(1e6) == 2.5
        assert p.mean_factor(1000.0) == pytest.approx(2.5)


class TestDiurnalPattern:
    def test_peak_at_peak_hour(self):
        p = DiurnalPattern(base=0.2, amplitude=1.0, peak_hour=14.0)
        peak = p.factor(14 * SECONDS_PER_HOUR)
        trough = p.factor(2 * SECONDS_PER_HOUR)
        assert peak == pytest.approx(1.2)
        assert trough == pytest.approx(0.2)
        assert peak > trough

    def test_period_is_one_day(self):
        p = DiurnalPattern()
        assert p.factor(3 * SECONDS_PER_HOUR) == pytest.approx(
            p.factor(3 * SECONDS_PER_HOUR + SECONDS_PER_DAY)
        )

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            DiurnalPattern(base=-0.1)


class TestWeeklyPattern:
    def test_weekend_drop(self):
        p = WeeklyPattern()  # default: weekend factor 0.35
        monday = p.factor(0.0)
        saturday = p.factor(5 * SECONDS_PER_DAY)
        assert monday == 1.0
        assert saturday == pytest.approx(0.35)

    def test_wraps_after_a_week(self):
        p = WeeklyPattern()
        assert p.factor(0.0) == p.factor(7 * SECONDS_PER_DAY)

    def test_requires_seven_days(self):
        with pytest.raises(ValueError, match="7 entries"):
            WeeklyPattern(day_factors=(1.0, 1.0))


class TestBurstPattern:
    def test_burst_and_idle_levels(self):
        p = BurstPattern(period=100.0, burst_fraction=0.2, burst_level=5.0, idle_level=0.1)
        assert p.factor(10.0) == 5.0
        assert p.factor(50.0) == 0.1
        assert p.factor(110.0) == 5.0  # next period

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstPattern(period=0.0)
        with pytest.raises(ValueError):
            BurstPattern(burst_fraction=0.0)


class TestProductPattern:
    def test_product_composes(self):
        p = FlatPattern(2.0) * FlatPattern(3.0)
        assert p.factor(0.0) == pytest.approx(6.0)

    def test_weekly_times_burst(self):
        p = WeeklyPattern() * BurstPattern(
            period=100.0, burst_fraction=0.5, burst_level=2.0, idle_level=0.0
        )
        # Saturday burst: 0.35 * 2.
        assert p.factor(5 * SECONDS_PER_DAY + 10.0) == pytest.approx(0.7)
