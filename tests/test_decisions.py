"""Tests for the decision plane (repro.core.decisions).

Covers the guard pipeline's construction and verdict combination, the
DecisionRecord codec (bit-exact round trip), the legacy pipeline's wire
format (byte-compatible with the pre-decision-plane journal), the
predictive guard's load-normalized behavior (identical verdicts to
legacy on a stationary stream for N ∈ {1, 4} shards, churn-free under
the adversarial scenario, still reverting genuine sabotage), the freeze
churn breaker, decision durability through journal → snapshot → resume,
and the RM-callback-log converter round trip.
"""

import json
import math

import numpy as np
import pytest

from repro.core.decisions import (
    VERDICT_ACCEPT,
    VERDICT_FREEZE,
    VERDICT_HOLD,
    VERDICT_REVERT,
    VERDICTS,
    DecisionEngine,
    DecisionRecord,
    Guard,
    GuardVote,
    LegacyRevertGuard,
    PredictiveGuard,
    RevertSignals,
    SparsityGuard,
    StabilityGuard,
    TickSignals,
    verdict_counts,
)
from repro.service.daemon import ServiceConfig, TempoService
from repro.service.events import Heartbeat, JobCompleted, JobSubmitted, TaskCompleted
from repro.service.replay import (
    ScenarioReplayer,
    build_controller,
    build_service,
    convert_rm_log,
    dump_trace_events,
    events_from_trace,
    load_trace_events,
    make_scenario,
    replay_trace,
)
from repro.service.snapshot import ServiceState
from repro.slo.qs import normalized_residual, worst_residual
from repro.workload.trace import JobRecord, TaskRecord, Trace


def stationary_stream(horizon=7200.0, seed=1, heartbeat=450.0):
    """A genuinely steady telemetry stream: stable rates and durations.

    Unlike the catalog scenarios (whose production noise makes the
    observed-vs-observed guard churn), this stream's QS is stationary
    window to window, so both revert guards should agree everywhere —
    the property-test workload.
    """
    rng = np.random.default_rng(seed)
    events = []
    t, i = 5.0, 0
    while t < horizon - 300:
        for tenant in ("deadline", "besteffort"):
            job_id = f"{tenant}-{i}"
            dur = float(rng.lognormal(np.log(40), 0.2))
            resp = max(5.0, float(rng.normal(120.0, 6.0)))
            deadline = t + 1200.0 if tenant == "deadline" else None
            events.append(
                JobSubmitted(t, tenant=tenant, job_id=job_id, deadline=deadline)
            )
            record = TaskRecord(
                job_id, f"{job_id}/t0", tenant, "map", "map", t, t + 2.0, t + 2.0 + dur
            )
            events.append(TaskCompleted(record.finish_time, record=record))
            jrec = JobRecord(
                job_id, tenant, t, t + resp, deadline=deadline, num_tasks=1
            )
            events.append(JobCompleted(jrec.finish_time, record=jrec))
        t += float(rng.exponential(25.0))
        i += 1
    tick = heartbeat
    while tick <= horizon:
        events.append(Heartbeat(float(tick)))
        tick += heartbeat
    events.sort(key=lambda e: (e.time, e.__class__.__name__))
    return events


def verdict_sequence(summary):
    """Accept/revert/hold sequence of a replay's decisions."""
    out = []
    for d in summary.decisions:
        if not d.retuned:
            out.append("hold")
        elif d.iteration is not None and d.iteration.reverted:
            out.append("revert")
        else:
            out.append("accept")
    return out


class TestEngineConstruction:
    def test_default_spec_is_legacy_stack(self):
        engine = DecisionEngine.from_spec(None)
        assert [g.name for g in engine.guards] == ["sparsity", "stability", "legacy"]
        assert engine.legacy
        assert not engine.emit_records
        assert not engine.wants_prediction

    def test_predictive_spec_expands_full_stack(self):
        engine = DecisionEngine.from_spec("predictive")
        assert [g.name for g in engine.guards] == [
            "sparsity",
            "stability",
            "predictive",
        ]
        assert not engine.legacy
        assert engine.emit_records
        assert engine.wants_prediction

    def test_explicit_list_taken_literally(self):
        engine = DecisionEngine.from_spec("predictive,stability")
        assert [g.name for g in engine.guards] == ["stability", "predictive"]

    def test_freeze_after_breaks_legacy_wire_format(self):
        assert DecisionEngine.from_spec("legacy").legacy
        assert not DecisionEngine.from_spec("legacy", freeze_after=3).legacy

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown guard"):
            DecisionEngine.from_spec("psychic")
        with pytest.raises(ValueError, match="at most one revert guard"):
            DecisionEngine.from_spec("legacy,predictive")
        with pytest.raises(ValueError, match="duplicate"):
            DecisionEngine.from_spec("stability,stability")
        with pytest.raises(ValueError, match="freeze_after"):
            DecisionEngine.from_spec("legacy", freeze_after=0)

    def test_verdict_vocabulary(self):
        assert VERDICTS == ("accept", "revert", "hold", "freeze")


class TestTickPhase:
    def _signals(self, **kwargs):
        defaults = dict(
            time=900.0,
            index=0,
            jobs=10,
            min_jobs=5,
            force=False,
            first=False,
            drift_threshold=0.02,
            drift_fn=lambda: 0.5,
        )
        defaults.update(kwargs)
        return TickSignals(**defaults)

    def test_empty_window_always_held(self):
        engine = DecisionEngine([])  # no guards at all
        tick = engine.tick(self._signals(jobs=0))
        assert not tick.proceed and tick.reason == "sparse"

    def test_sparse_then_stable_then_drift(self):
        engine = DecisionEngine.from_spec("legacy")
        assert engine.tick(self._signals(jobs=3)).reason == "sparse"
        stable = engine.tick(self._signals(drift_fn=lambda: 0.001))
        assert not stable.proceed and stable.reason == "stable"
        assert stable.drift == pytest.approx(0.001)
        drifted = engine.tick(self._signals(drift_fn=lambda: 0.5))
        assert drifted.proceed and drifted.reason == "drift"
        assert drifted.drift == pytest.approx(0.5)

    def test_first_and_forced_bypass_stability(self):
        engine = DecisionEngine.from_spec("legacy")
        first = engine.tick(self._signals(first=True, drift_fn=lambda: 0.0))
        assert first.proceed and first.reason == "initial"
        assert math.isinf(first.drift)
        forced = engine.tick(self._signals(force=True, drift_fn=lambda: 0.0))
        assert forced.proceed and forced.reason == "forced"

    def test_disabled_sparsity_keeps_empty_window_floor(self):
        engine = DecisionEngine.from_spec("predictive,stability")
        assert engine.tick(self._signals(jobs=0)).reason == "sparse"
        # min_jobs floor is off: 3 < 5 jobs still proceeds.
        assert engine.tick(self._signals(jobs=3)).proceed


class TestRecordCodec:
    def _record(self):
        return DecisionRecord(
            index=7,
            time=6300.0,
            verdict=VERDICT_REVERT,
            votes=(
                GuardVote("stability", VERDICT_ACCEPT, "drift", 0.4),
                GuardVote("predictive", VERDICT_REVERT, "config-regression", 0.31),
                GuardVote("freeze", VERDICT_FREEZE, "revert-churn", math.inf),
            ),
            predicted=(1.5, -2.0),
            observed=(2.5, -1.0),
            normalized=(2.4, -1.1),
            reference=(1.9, -1.4),
            residual=0.66,
        )

    def test_round_trip_bit_identical(self):
        record = self._record()
        rebuilt = DecisionRecord.from_dict(record.to_dict())
        assert rebuilt == record
        # And the dict form is stable through a JSON round trip.
        assert (
            DecisionRecord.from_dict(json.loads(json.dumps(record.to_dict())))
            == record
        )

    def test_infinities_survive(self):
        record = DecisionRecord(
            index=0,
            time=None,
            verdict=VERDICT_HOLD,
            predicted=(math.inf, -math.inf, 1.0),
            residual=math.inf,
        )
        rebuilt = DecisionRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt == record

    def test_verdict_counts(self):
        records = [self._record(), None, DecisionRecord(0, None, VERDICT_HOLD)]
        assert verdict_counts(records) == {"revert": 1, "hold": 1}


class TestResidualHelpers:
    def test_normalized_residual_sign_convention(self):
        res = normalized_residual([2.0, 1.0], [1.0, 2.0])
        assert res[0] > 0  # worse than reference
        assert res[1] < 0  # better than reference

    def test_worst_residual_scalar(self):
        # Symmetric normalization: (2 - 1) / ((2 + 1) / 2) = 2/3.
        assert worst_residual([2.0, 1.0], [1.0, 2.0]) == pytest.approx(
            2.0 / 3.0, abs=1e-6
        )

    def test_zero_against_zero_is_zero(self):
        assert worst_residual([0.0], [0.0]) == 0.0
        assert abs(worst_residual([0.3], [0.0])) <= 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            normalized_residual([1.0], [1.0, 2.0])


class TestFreezeBreaker:
    class _AlwaysRevert(Guard):
        """Votes revert whenever a revert target exists (test stub)."""

        name = "always-revert"

        def revert_vote(self, signals):
            if signals.prev is None:
                return None
            return GuardVote(self.name, VERDICT_REVERT, "forced")

    def _signals(self, prev="baseline"):
        return RevertSignals(
            index=0,
            config=None,
            prev=None if prev is None else (None, np.array([1.0]), None),
            observed=np.array([1.0]),
            smoothed=np.array([1.0]),
            predicted=None,
            evaluate=lambda config: np.array([1.0]),
            revert_mode="regression",
            tol=0.05,
        )

    def test_freeze_after_consecutive_reverts(self):
        engine = DecisionEngine([self._AlwaysRevert()], freeze_after=2)
        verdicts = [engine.judge(self._signals()).verdict for _ in range(4)]
        assert verdicts == ["revert", "revert", "freeze", "freeze"]
        assert engine.reverts_in_row == 4

    def test_accept_resets_fuse(self):
        engine = DecisionEngine([LegacyRevertGuard()], freeze_after=1)
        engine.reverts_in_row = 5
        signals = self._signals(prev=None)  # no baseline -> accept
        assert engine.judge(signals).verdict == VERDICT_ACCEPT
        assert engine.reverts_in_row == 0

    def test_freeze_keeps_controller_config_fixed(self):
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        controller = build_controller(scenario, seed=0)
        controller.engine = DecisionEngine([self._AlwaysRevert()], freeze_after=1)
        stream = stationary_stream(horizon=2400.0)
        service = TempoService(
            controller,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
        )
        replay_trace(service, stream[: len(stream) // 2])
        # Prime a baseline, then every subsequent tick reverts/freezes.
        controller._prev = (
            controller.config,
            np.array([0.0, 0.0]),
            controller.x.copy(),
        )
        x_before = controller.x.copy()
        replay_trace(service, stream[len(stream) // 2 :])
        frozen = [
            d
            for d in service.decisions
            if d.record is not None and d.record.verdict == VERDICT_FREEZE
        ]
        assert frozen, "freeze verdicts expected after consecutive reverts"
        np.testing.assert_allclose(controller.x, x_before)


class TestLegacyWireFormat:
    """`--guards legacy` keeps the PR 4 decision wire format exactly."""

    _PR4_KEYS = {"time", "index", "retuned", "reason", "drift", "latency"}

    def _durable_run(self, tmp_path, guards, name):
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        state = ServiceState(tmp_path / name)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=3,
            state=state,
            guards=guards,
        )
        ScenarioReplayer(
            scenario, service, seed=3, continuous=True, verify_stats=False
        ).run()
        service.close()
        return state

    def test_legacy_journal_rows_have_pr4_shape(self, tmp_path):
        state = self._durable_run(tmp_path, "legacy", "legacy")
        rows = 0
        for record in state.journal.iter_records():
            if record.kind == "decision":
                assert set(record.data) == self._PR4_KEYS
                rows += 1
            elif record.kind == "config":
                assert set(record.data["decision"]) == self._PR4_KEYS
                assert "predicted" not in record.data["controller"]
                assert "guards" not in record.data["controller"]
                rows += 1
        assert rows > 0
        state.close()

    def test_predictive_journal_rows_carry_records(self, tmp_path):
        state = self._durable_run(tmp_path, "predictive", "predictive")
        carried = 0
        for record in state.journal.iter_records():
            if record.kind in ("decision", "config"):
                data = (
                    record.data
                    if record.kind == "decision"
                    else record.data["decision"]
                )
                assert "record" in data
                assert data["record"]["verdict"] in VERDICTS
                carried += 1
        assert carried > 0
        state.close()

    def test_legacy_decision_sequence_matches_default_pipeline(self, tmp_path):
        """An explicitly-built legacy engine and the default spec make
        byte-identical journals (same scenario, same seed)."""
        a = self._durable_run(tmp_path, "legacy", "a")
        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        state_b = ServiceState(tmp_path / "b")
        engine = DecisionEngine(
            [SparsityGuard(), StabilityGuard(), LegacyRevertGuard()]
        )
        controller = build_controller(scenario, seed=3, guards=engine)
        service = TempoService(
            controller,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            state=state_b,
        )
        ScenarioReplayer(
            scenario, service, seed=3, continuous=True, verify_stats=False
        ).run()
        service.close()
        rows_a = [
            (r.kind, {k: v for k, v in _payload(r).items() if k != "latency"})
            for r in a.journal.iter_records()
            if r.kind in ("decision", "config")
        ]
        rows_b = [
            (r.kind, {k: v for k, v in _payload(r).items() if k != "latency"})
            for r in state_b.journal.iter_records()
            if r.kind in ("decision", "config")
        ]
        assert rows_a == rows_b
        a.close()
        state_b.close()


def _payload(record):
    """The decision half of a decision/config journal record."""
    return record.data if record.kind == "decision" else record.data["decision"]


class TestSteadyParityProperty:
    """Satellite property: on a steady workload the predictive guard's
    accept/revert verdicts equal the legacy guard's for N ∈ {1, 4}
    shards."""

    @pytest.mark.parametrize("shards", [1, 4])
    def test_verdicts_identical_on_stationary_stream(self, shards):
        stream = stationary_stream()
        sequences = {}
        for guards in ("legacy", "predictive"):
            scenario = make_scenario("steady", scale=1.0)
            service = build_service(
                scenario,
                ServiceConfig(
                    window=900.0, retune_interval=450.0, min_window_jobs=3
                ),
                seed=0,
                guards=guards,
                shards=shards,
            )
            summary = replay_trace(service, list(stream))
            sequences[guards] = verdict_sequence(summary)
            service.close()
        assert sequences["legacy"] == sequences["predictive"]
        assert "accept" in sequences["legacy"]

    def test_shard_count_does_not_change_predictive_verdicts(self):
        stream = stationary_stream()
        per_shards = {}
        for shards in (1, 4):
            scenario = make_scenario("steady", scale=1.0)
            service = build_service(
                scenario,
                ServiceConfig(
                    window=900.0, retune_interval=450.0, min_window_jobs=3
                ),
                seed=0,
                guards="predictive",
                shards=shards,
            )
            per_shards[shards] = verdict_sequence(replay_trace(service, list(stream)))
            service.close()
        assert per_shards[1] == per_shards[4]


class TestPredictiveGuardBehavior:
    def test_adversarial_scenario_churns_legacy_not_predictive(self):
        """Satellite: the SLO-gaming tenant makes the observed-vs-
        observed guard churn while the predictive guard holds steady."""
        results = {}
        for guards in ("legacy", "predictive"):
            scenario = make_scenario("adversarial", scale=1.5, horizon=7200.0)
            service = build_service(
                scenario,
                ServiceConfig(
                    window=1800.0, retune_interval=900.0, min_window_jobs=3
                ),
                seed=0,
                guards=guards,
                revert_windows=1,
            )
            results[guards] = ScenarioReplayer(
                scenario, service, seed=0, continuous=True, verify_stats=False
            ).run()
        assert results["legacy"].reverts >= 3, "premise: legacy guard churns"
        assert results["predictive"].reverts <= results["legacy"].reverts // 3
        holds = [
            d.record
            for d in results["predictive"].decisions
            if d.retuned and d.record is not None and d.record.verdict == "hold"
        ]
        assert holds, "workload-driven regressions must be recorded as holds"
        assert any(
            vote.reason == "workload-drift"
            for record in holds
            for vote in record.votes
        )

    def test_predictive_still_reverts_sabotage(self):
        """Load normalization must not cost genuine robustness: a
        pathological configuration applied behind the tuner's back is
        still rolled back."""
        from repro.rm.config import RMConfig, TenantConfig
        from repro.core.controller import windows_from_model
        from repro.workload.synthetic import (
            BEST_EFFORT_TENANT,
            DEADLINE_TENANT,
            two_tenant_model,
        )

        scenario = make_scenario("steady", scale=1.0, horizon=3600.0)
        controller = build_controller(
            scenario, seed=0, guards="predictive", candidates=4
        )
        windows = windows_from_model(two_tenant_model(), 1800.0, 4, seed=3)
        reverted = []
        for i, window in enumerate(windows):
            record = controller.run_iteration(i, window)
            reverted.append(record.reverted)
            if i % 2 == 0:
                bad = RMConfig(
                    {
                        DEADLINE_TENANT: TenantConfig(weight=8.0),
                        BEST_EFFORT_TENANT: TenantConfig(
                            weight=0.25, max_share={"map": 2, "reduce": 1}
                        ),
                    }
                )
                controller.config = bad
                controller.x = controller.space.encode(bad)
        assert any(reverted[1::2]), "sabotaged configs must still revert"
        assert controller.last_decision is not None

    def test_decision_records_expose_prediction_chain(self):
        stream = stationary_stream(horizon=5400.0)
        scenario = make_scenario("steady", scale=1.0)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=0,
            guards="predictive",
        )
        summary = replay_trace(service, stream)
        tuned = [d for d in summary.decisions if d.retuned]
        assert all(d.record is not None for d in summary.decisions)
        later = [d for d in tuned if d.record.predicted is not None]
        assert later, "selection-time predictions must be retained"
        judged = [d for d in tuned if d.record.reference is not None]
        assert judged, "the revert target must be re-evaluated"
        for d in judged:
            assert d.record.normalized is not None
            assert len(d.record.normalized) == len(d.record.reference)
        assert any(d.record.residual is not None for d in tuned)

    def test_on_decision_listener_sees_every_tick(self):
        stream = stationary_stream(horizon=3600.0)
        scenario = make_scenario("steady", scale=1.0)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=0,
            guards="predictive",
        )
        seen = []
        service.on_decision(seen.append)
        summary = replay_trace(service, stream)
        assert len(seen) == len(summary.decisions)
        assert all(event.verdict in VERDICTS for event in seen)
        assert all(event.record is not None for event in seen)


class TestDecisionDurability:
    """Satellite: DecisionRecords survive journal → snapshot → resume
    bit-identically."""

    def _drive(self, tmp_path, kill_fraction=0.6):
        scenario = make_scenario("steady", scale=1.0, horizon=5400.0)
        state = ServiceState(tmp_path / "state")
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
            seed=3,
            state=state,
            guards="predictive",
            freeze_after=4,
        )
        stream = stationary_stream(horizon=5400.0)
        cut = int(len(stream) * kill_fraction)
        replay_trace(service, stream[:cut])
        return scenario, state, service, stream, cut

    def test_records_round_trip_resume(self, tmp_path):
        scenario, state, live, stream, cut = self._drive(tmp_path)
        live_rows = [
            None if d.record is None else d.record.to_dict()
            for d in live.decisions
        ]
        assert any(row is not None for row in live_rows)
        predicted = live.controller._predicted
        live.close()
        state.close()

        state2 = ServiceState(tmp_path / "state")
        controller = build_controller(
            scenario, seed=3, guards="predictive", freeze_after=4
        )
        resumed = TempoService.resume(
            controller,
            state2,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
        )
        resumed_rows = [
            None if d.record is None else d.record.to_dict()
            for d in resumed.decisions
        ]
        assert resumed_rows == live_rows
        if predicted is not None:
            np.testing.assert_array_equal(controller._predicted, predicted)
        assert controller.engine.reverts_in_row == live.controller.engine.reverts_in_row
        resumed.close()
        state2.close()

    def test_resumed_daemon_continues_judging(self, tmp_path):
        scenario, state, live, stream, cut = self._drive(tmp_path)
        live.close()
        state.close()
        state2 = ServiceState(tmp_path / "state")
        controller = build_controller(
            scenario, seed=3, guards="predictive", freeze_after=4
        )
        resumed = TempoService.resume(
            controller,
            state2,
            ServiceConfig(window=900.0, retune_interval=450.0, min_window_jobs=3),
        )
        before = len(resumed.decisions)
        replay_trace(resumed, stream[cut:])
        after = [d for d in list(resumed.decisions)[before:]]
        assert after, "the resumed daemon must keep deciding"
        assert all(d.record is not None for d in after)
        resumed.close()
        state2.close()


class TestConverterRoundTrip:
    """Satellite: real RM callback logs -> service trace files."""

    def _fixture_trace(self):
        tasks, jobs = [], []
        t = 0.0
        for i in range(12):
            tenant = "deadline" if i % 2 == 0 else "besteffort"
            job_id = f"j{i}"
            deadline = t + 500.0 if tenant == "deadline" else None
            tasks.append(
                TaskRecord(
                    job_id,
                    f"{job_id}/t0",
                    tenant,
                    "map",
                    "map",
                    t,
                    t + 3.0,
                    t + 3.0 + 40.0 + i,
                )
            )
            jobs.append(
                JobRecord(
                    job_id,
                    tenant,
                    t,
                    t + 80.0 + i,
                    deadline=deadline,
                    num_tasks=1,
                )
            )
            t += 60.0
        return Trace(tasks, jobs, capacity={"map": 16, "reduce": 12}, horizon=900.0)

    def test_round_trip_through_fixture_log(self, tmp_path):
        trace = self._fixture_trace()
        log = tmp_path / "callbacks.jsonl"
        log.write_text(trace.to_jsonl())
        out = tmp_path / "events.jsonl"
        count = convert_rm_log(log, out, heartbeat_interval=300.0)
        events = load_trace_events(out)
        assert len(events) == count
        # Every callback survives: submissions, task and job completions.
        submits = [e for e in events if isinstance(e, JobSubmitted)]
        task_records = [e.record for e in events if isinstance(e, TaskCompleted)]
        job_records = [e.record for e in events if isinstance(e, JobCompleted)]
        assert len(submits) == len(trace.job_records)
        assert sorted(task_records, key=lambda r: r.task_id) == sorted(
            trace.task_records, key=lambda r: r.task_id
        )
        assert sorted(job_records, key=lambda r: r.job_id) == sorted(
            trace.job_records, key=lambda r: r.job_id
        )
        # Heartbeats cover the log's span, including the closing one.
        beats = [e.time for e in events if isinstance(e, Heartbeat)]
        assert beats and beats[-1] >= 900.0
        # Events arrive in delivery order.
        assert all(a.time <= b.time for a, b in zip(events, events[1:]))

    def test_converted_log_replays_through_the_service(self, tmp_path):
        trace = self._fixture_trace()
        log = tmp_path / "callbacks.jsonl"
        log.write_text(trace.to_jsonl())
        out = tmp_path / "events.jsonl"
        convert_rm_log(log, out, heartbeat_interval=300.0)
        scenario = make_scenario("steady", scale=1.0)
        service = build_service(
            scenario,
            ServiceConfig(window=900.0, retune_interval=300.0, min_window_jobs=3),
            seed=0,
            guards="predictive",
        )
        summary = replay_trace(service, load_trace_events(out))
        assert summary.jobs_completed == len(trace.job_records)
        assert summary.tasks == len(trace.task_records)
        assert summary.decisions, "heartbeats must drive the cadence"

    def test_events_from_trace_without_heartbeats(self):
        trace = self._fixture_trace()
        events = events_from_trace(trace)
        assert not any(isinstance(e, Heartbeat) for e in events)

    def test_bad_heartbeat_interval_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            events_from_trace(self._fixture_trace(), heartbeat_interval=0.0)

    def test_dump_load_round_trip_keeps_events(self, tmp_path):
        trace = self._fixture_trace()
        events = events_from_trace(trace, heartbeat_interval=450.0)
        path = tmp_path / "events.jsonl"
        dump_trace_events(events, path)
        assert load_trace_events(path) == events
