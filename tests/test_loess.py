"""Unit and property tests for LOESS local regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.loess import LoessModel, loess_gradient, loess_smooth, tricube_weights


class TestTricube:
    def test_weight_shape(self):
        w = tricube_weights(np.array([0.0, 0.5, 1.0, 2.0]), bandwidth=1.0)
        assert w[0] == pytest.approx(1.0)
        assert 0 < w[1] < 1
        assert w[2] == pytest.approx(0.0)
        assert w[3] == pytest.approx(0.0)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            tricube_weights(np.array([1.0]), 0.0)


class TestLinearRecovery:
    def test_exact_on_linear_function(self, rng):
        """A local linear fit must recover a globally linear function."""
        coef = np.array([2.0, -3.0, 0.5])
        xs = rng.uniform(-1, 1, size=(40, 3))
        ys = xs @ coef + 7.0
        model = LoessModel(xs, ys, frac=0.7)
        fit = model.fit_at(np.zeros(3))[0]
        assert fit.value == pytest.approx(7.0, abs=1e-6)
        np.testing.assert_allclose(fit.gradient, coef, atol=1e-6)

    def test_jacobian_multi_output(self, rng):
        xs = rng.uniform(-1, 1, size=(30, 2))
        ys = np.column_stack([xs @ [1.0, 0.0], xs @ [0.0, -2.0]])
        jac = LoessModel(xs, ys, frac=0.8).jacobian([0.0, 0.0])
        np.testing.assert_allclose(jac, [[1.0, 0.0], [0.0, -2.0]], atol=1e-6)

    def test_gradient_of_quadratic_near_point(self, rng):
        xs = rng.uniform(-0.5, 0.5, size=(80, 2)) + 1.0
        ys = np.sum(xs**2, axis=1)
        grad = loess_gradient(xs, ys, [1.0, 1.0], frac=0.3)[0]
        np.testing.assert_allclose(grad, [2.0, 2.0], atol=0.3)


class TestNoiseRobustness:
    def test_smoothing_beats_raw_noise(self, rng):
        """LOESS estimate at a point is closer to truth than raw samples."""
        xs = rng.uniform(-1, 1, size=(200, 1))
        truth = 3.0 * xs[:, 0]
        ys = truth + rng.normal(0, 0.5, size=200)
        model = LoessModel(xs, ys, frac=0.4)
        estimate = model.predict([0.5])[0]
        assert abs(estimate - 1.5) < 0.25  # well under the noise sigma

    def test_gradient_stable_under_noise(self, rng):
        xs = rng.uniform(0, 1, size=(150, 3))
        ys = xs @ [1.0, 2.0, -1.0] + rng.normal(0, 0.1, 150)
        jac = loess_gradient(xs, ys, [0.5, 0.5, 0.5], frac=0.6)
        np.testing.assert_allclose(jac[0], [1.0, 2.0, -1.0], atol=0.35)


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="at least d\\+2"):
            LoessModel(np.zeros((3, 2)), np.zeros(3))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LoessModel(np.zeros((5, 1)), np.zeros(4))

    def test_bad_frac(self):
        with pytest.raises(ValueError):
            LoessModel(np.zeros((5, 1)), np.zeros(5), frac=0.0)

    def test_query_dim_mismatch(self):
        model = LoessModel(np.zeros((5, 2)), np.zeros(5))
        with pytest.raises(ValueError, match="dim"):
            model.fit_at([0.0])

    def test_degenerate_coincident_points(self):
        """All samples at one point: value recovered, gradient finite."""
        xs = np.ones((6, 2))
        ys = np.full(6, 4.0)
        fit = LoessModel(xs, ys).fit_at([1.0, 1.0])[0]
        assert fit.value == pytest.approx(4.0, abs=1e-3)
        assert np.all(np.isfinite(fit.gradient))


class TestSmooth1D:
    def test_smooth_returns_grid(self):
        x = np.linspace(0, 10, 60)
        y = np.sin(x)
        grid, smoothed = loess_smooth(x, y, frac=0.2, points=25)
        assert len(grid) == len(smoothed) == 25
        # Smoothed curve tracks the sine reasonably.
        assert np.max(np.abs(smoothed - np.sin(grid))) < 0.3


@settings(max_examples=20, deadline=None)
@given(
    coef=st.lists(st.floats(-5, 5), min_size=2, max_size=4),
    intercept=st.floats(-10, 10),
)
def test_linear_recovery_property(coef, intercept):
    """For any linear function, LOESS recovers value + gradient exactly."""
    coef = np.asarray(coef)
    rng = np.random.default_rng(3)
    xs = rng.uniform(-1, 1, size=(30, len(coef)))
    ys = xs @ coef + intercept
    fit = LoessModel(xs, ys, frac=0.9).fit_at(np.zeros(len(coef)))[0]
    assert fit.value == pytest.approx(intercept, abs=1e-5)
    np.testing.assert_allclose(fit.gradient, coef, atol=1e-5)
