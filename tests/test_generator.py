"""Unit tests for the statistical workload generator and model fitting."""

import math

import numpy as np
import pytest

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig, TenantConfig
from repro.sim.predictor import SchedulePredictor
from repro.stats.distributions import LognormalModel, PoissonProcessModel
from repro.workload.generator import (
    StageModel,
    StatisticalWorkloadModel,
    TenantWorkloadModel,
    fit_workload_model,
)
from repro.workload.patterns import BurstPattern, FlatPattern
from repro.workload.model import DEFAULT_POOL


def simple_tenant(name="T", rate_per_hour=60.0, deadline_factor=None, pattern=None):
    return TenantWorkloadModel(
        tenant=name,
        arrival=PoissonProcessModel(rate_per_hour / 3600.0),
        stages=(
            StageModel(
                "work",
                DEFAULT_POOL,
                LognormalModel(mu=math.log(4), sigma=0.4, minimum=1.0),
                LognormalModel(mu=math.log(20), sigma=0.5, minimum=1.0),
            ),
        ),
        rate_pattern=pattern or FlatPattern(),
        deadline_factor=deadline_factor,
    )


class TestTenantModel:
    def test_arrival_rate_matches(self, rng):
        tm = simple_tenant(rate_per_hour=120.0)
        arrivals = tm.sample_arrivals(rng, horizon=3600.0 * 20)
        rate = len(arrivals) / (3600.0 * 20)
        assert rate == pytest.approx(120.0 / 3600.0, rel=0.1)

    def test_pattern_thinning(self, rng):
        # Bursty pattern with mean factor ~0.5 halves the effective rate.
        pattern = BurstPattern(period=100.0, burst_fraction=0.5, burst_level=1.0, idle_level=0.0)
        tm = simple_tenant(rate_per_hour=120.0, pattern=pattern)
        arrivals = tm.sample_arrivals(rng, horizon=3600.0 * 20)
        rate = len(arrivals) / (3600.0 * 20)
        assert rate == pytest.approx(60.0 / 3600.0, rel=0.15)

    def test_job_structure(self, rng):
        job = simple_tenant().sample_job(rng, "j0", 5.0)
        assert job.submit_time == 5.0
        assert job.stages[0].name == "work"
        assert job.num_tasks >= 1

    def test_deadline_factor_applied(self, rng):
        job = simple_tenant(deadline_factor=3.0).sample_job(rng, "j0", 0.0)
        assert job.deadline is not None
        assert job.deadline >= 3.0 * job.critical_path() - 1e-9

    def test_no_deadline_by_default(self, rng):
        assert simple_tenant().sample_job(rng, "j0", 0.0).deadline is None

    def test_scaled_rate(self, rng):
        tm = simple_tenant(rate_per_hour=60.0).scaled(rate=2.0)
        arrivals = tm.sample_arrivals(rng, horizon=3600.0 * 20)
        assert len(arrivals) / 20 == pytest.approx(120.0, rel=0.15)

    def test_scaled_duration(self):
        tm = simple_tenant().scaled(duration=2.0)
        assert tm.stages[0].task_duration.median == pytest.approx(40.0)

    def test_needs_stages(self):
        with pytest.raises(ValueError):
            TenantWorkloadModel(
                tenant="X", arrival=PoissonProcessModel(0.1), stages=()
            )


class TestStatisticalModel:
    def test_generate_deterministic_per_seed(self):
        model = StatisticalWorkloadModel([simple_tenant()])
        w1 = model.generate(42, 3600.0)
        w2 = model.generate(42, 3600.0)
        assert [j.job_id for j in w1] == [j.job_id for j in w2]
        assert [j.submit_time for j in w1] == [j.submit_time for j in w2]

    def test_different_seeds_differ(self):
        model = StatisticalWorkloadModel([simple_tenant()])
        w1 = model.generate(1, 3600.0 * 4)
        w2 = model.generate(2, 3600.0 * 4)
        assert [j.submit_time for j in w1] != [j.submit_time for j in w2]

    def test_replicas_are_distinct_but_same_distribution(self):
        model = StatisticalWorkloadModel([simple_tenant(rate_per_hour=240.0)])
        replicas = model.replicas(0, 3600.0 * 4, 3)
        assert len(replicas) == 3
        counts = [len(r) for r in replicas]
        assert len(set(counts)) > 1 or counts[0] > 0
        mean = np.mean(counts)
        assert mean == pytest.approx(240.0 * 4, rel=0.25)

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError):
            StatisticalWorkloadModel([simple_tenant("X"), simple_tenant("X")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StatisticalWorkloadModel([])


class TestFitWorkloadModel:
    def _trace(self, deadline_factor=None):
        """Generate, simulate, and return the observed trace."""
        model = StatisticalWorkloadModel(
            [simple_tenant(rate_per_hour=200.0, deadline_factor=deadline_factor)]
        )
        workload = model.generate(3, 3 * 3600.0)
        cluster = ClusterSpec({DEFAULT_POOL: 16})
        cfg = RMConfig({"T": TenantConfig()})
        return SchedulePredictor(cluster).predict(workload, cfg)

    def test_fit_recovers_arrival_rate(self):
        trace = self._trace()
        fitted = fit_workload_model(trace)
        rate = fitted.tenant_model("T").arrival.rate
        assert rate == pytest.approx(200.0 / 3600.0, rel=0.25)

    def test_fit_recovers_duration_scale(self):
        trace = self._trace()
        fitted = fit_workload_model(trace)
        dur = fitted.tenant_model("T").stages[0].task_duration
        assert dur.median == pytest.approx(20.0, rel=0.3)

    def test_fit_recovers_deadline_factor(self):
        trace = self._trace(deadline_factor=3.0)
        fitted = fit_workload_model(trace)
        factor = fitted.tenant_model("T").deadline_factor
        assert factor is not None
        assert factor > 1.0

    def test_generated_workload_resembles_source(self):
        trace = self._trace()
        fitted = fit_workload_model(trace)
        regen = fitted.generate(0, 3 * 3600.0)
        observed_work = sum(
            r.service_time for r in trace.task_records if r.completed
        )
        assert regen.total_work == pytest.approx(observed_work, rel=0.4)

    def test_sparse_trace_rejected(self):
        from repro.workload.trace import Trace

        with pytest.raises(ValueError, match="sparse"):
            fit_workload_model(Trace([], [], capacity={"slots": 1}, horizon=10.0))
