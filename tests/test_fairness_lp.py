"""Unit tests for the max-min fairness LP choosing PALD's c vector."""

import numpy as np
import pytest

from repro.core.fairness import max_min_fair_weights


class TestFairnessLP:
    def test_normalized_output(self):
        jac = np.eye(3)
        c = max_min_fair_weights(jac, np.array([True, False, False]))
        assert np.linalg.norm(c) == pytest.approx(1.0)
        assert np.all(c >= -1e-12)

    def test_single_violation_targets_it(self):
        jac = np.eye(2)
        c = max_min_fair_weights(jac, np.array([True, False]))
        # Descent d = J^T c must align with the violated gradient.
        d = jac.T @ c
        assert d[0] > 0.5  # strongly weighted toward objective 0

    def test_two_violations_balanced(self):
        jac = np.eye(2)
        c = max_min_fair_weights(jac, np.array([True, True]))
        np.testing.assert_allclose(c, [np.sqrt(0.5)] * 2, atol=1e-6)

    def test_no_violation_falls_back_to_mgda(self):
        jac = np.array([[1.0, 0.0], [-1.0, 0.0]])
        c = max_min_fair_weights(jac, np.array([False, False]))
        # MGDA min-norm for opposing gradients is (0.5, 0.5).
        np.testing.assert_allclose(c, [np.sqrt(0.5)] * 2, atol=1e-3)

    def test_violated_improvement_is_max_min(self):
        """The chosen c maximizes the worst violated alignment."""
        rng = np.random.default_rng(4)
        jac = rng.normal(size=(3, 5))
        violated = np.array([True, True, False])
        c = max_min_fair_weights(jac, violated)
        d = jac.T @ c
        alignments = jac[violated] @ d
        # Compare against a few arbitrary alternative weights.
        for _ in range(30):
            alt = np.abs(rng.normal(size=3))
            alt /= np.linalg.norm(alt)
            alt_d = jac.T @ alt
            alt_align = jac[violated] @ alt_d
            assert np.min(alignments) >= np.min(alt_align) - 1e-6

    def test_conflicting_violations_fall_back_gracefully(self):
        # Two violated objectives with exactly opposing gradients: no c
        # improves both; the result must still be a valid weight vector.
        jac = np.array([[1.0, 0.0], [-1.0, 0.0]])
        c = max_min_fair_weights(jac, np.array([True, True]))
        assert np.linalg.norm(c) == pytest.approx(1.0)
        assert np.all(c >= -1e-12)

    def test_zero_gradients_fall_back(self):
        jac = np.zeros((2, 3))
        c = max_min_fair_weights(jac, np.array([True, False]))
        assert np.linalg.norm(c) == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            max_min_fair_weights(np.eye(2), np.array([True]))

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            max_min_fair_weights(np.eye(2), np.array([True, False]), epsilon=0.0)
