"""Tests for the failover plane: fault grammar, failure detector,
dead/faulted shard stand-ins, the deterministic injector, the crash
matrix (fault kind x shard count x execution mode), the kill -9
mid-replay acceptance run, the drain-barrier regression, random fault
schedules as hypothesis properties, and the ``repro chaos`` harness."""

import math
import os
import shutil
import signal
import tempfile
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.daemon import ServiceConfig, TempoService
from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    TaskCompleted,
)
from repro.service.failover import (
    FAULT_KINDS,
    DeadShard,
    FailoverConfig,
    FailureDetector,
    FaultInjector,
    FaultSpec,
    FaultedShard,
    parse_fault,
    run_chaos,
)
from repro.service.ingest import RollingWindow
from repro.service.journal import decode_event
from repro.service.replay import build_controller, build_service, make_scenario
from repro.service.sharding import (
    IngestShard,
    ShardFailedError,
    ShardRouter,
    ShardWorkerHandle,
)
from repro.service.snapshot import ServiceState
from repro.workload.trace import JobRecord, TaskRecord

TENANTS = tuple(f"tenant-{i:02d}" for i in range(11))

TELEMETRY = (JobSubmitted, TaskCompleted, JobCompleted)

#: Fast supervision for tests: detection within half a second, and the
#: tightest failover_after the >= 2x heartbeat-interval rule allows.
FAST = FailoverConfig(heartbeat_interval=0.1, failover_after=0.5)


def _task(job_id, task_id, tenant, finish, duration, **kwargs):
    start = finish - duration
    return TaskRecord(
        job_id=job_id,
        task_id=task_id,
        tenant=tenant,
        pool="map",
        stage="map",
        submit_time=max(start - 1.0, 0.0),
        start_time=start,
        finish_time=finish,
        **kwargs,
    )


def _events(seed=0, count=240, tenants=TENANTS, heartbeat_every=0):
    """Deterministic many-tenant telemetry stream, optionally punctuated
    by broadcast heartbeats (the journal boundaries failover rewinds to)."""
    rng = np.random.default_rng(seed)
    events, t = [], 0.0
    for i in range(count):
        t += float(rng.exponential(8.0))
        tenant = tenants[i % len(tenants)]
        job_id = f"{tenant}-{i}"
        events.append(JobSubmitted(t, tenant=tenant, job_id=job_id))
        duration = float(rng.lognormal(3.0 + 0.4 * (i % 3), 0.8))
        finish = t + duration
        events.append(
            TaskCompleted(
                finish,
                record=_task(
                    job_id,
                    f"{job_id}/t0",
                    tenant,
                    finish,
                    duration,
                    preempted=(i % 17 == 0),
                    failed=(i % 23 == 0),
                ),
            )
        )
        events.append(
            JobCompleted(
                finish,
                record=JobRecord(
                    job_id=job_id, tenant=tenant, submit_time=t, finish_time=finish
                ),
            )
        )
    events.sort(key=lambda e: e.time)
    if heartbeat_every:
        beats = [
            Heartbeat(events[i].time + 1e-6)
            for i in range(heartbeat_every - 1, len(events), heartbeat_every)
        ]
        events.extend(beats)
        events.sort(key=lambda e: e.time)
    return events


def _stats_close(a, b, tol=1e-9):
    assert set(a) == set(b)
    fields = (
        "jobs",
        "tasks",
        "submitted",
        "duration_samples",
        "arrival_rate",
        "mean_response",
        "log_duration_mean",
        "log_duration_std",
        "preempted_fraction",
        "failed_fraction",
    )
    for name in a:
        for field in fields:
            assert abs(getattr(a[name], field) - getattr(b[name], field)) <= tol, (
                name,
                field,
            )


def _service_config(**overrides):
    defaults = dict(window=600.0, retune_interval=300.0, min_window_jobs=3)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _scenario():
    return make_scenario("steady", scale=1.0, horizon=3600.0)


def _journaled_telemetry(root, shards):
    """Re-read every shard journal end to end (CRC-checked frame by
    frame) and return the decoded telemetry events per shard."""
    reader = ServiceState(root, shards=shards)
    try:
        out = []
        for i in range(shards):
            out.append(
                [
                    decode_event(record.data)
                    for record in reader.shard_journal(i).iter_records()
                    if record.kind == "event"
                    and record.data.get("type")
                    in ("JobSubmitted", "TaskCompleted", "JobCompleted")
                ]
            )
        return out
    finally:
        reader.close()


def _routed_telemetry(events, shards):
    """The fault-free oracle routing: telemetry per owning shard."""
    router = ShardRouter(shards)
    routed = [[] for _ in range(shards)]
    for event in events:
        if isinstance(event, TELEMETRY):
            routed[router.route(event)].append(event)
    return routed


def _oracle_stats(journaled, window, now):
    """Batch-recompute oracle: fold every journaled telemetry event into
    a fresh window, advance to the merged clock, recompute from scratch."""
    oracle = RollingWindow(window)
    oracle.ingest_many(sorted(journaled, key=lambda e: e.time))
    oracle.advance(now)
    return oracle.batch_recompute()


class TestFaultGrammar:
    def test_parse_round_trips_through_canonical(self):
        for text in (
            "kill-shard@t=2",
            "kill-shard:3@t=0",
            "stall-shard:1@t=3@for=4",
            "drop-batches@t=1.5@for=2",
            "slow-journal:0@t=2@for=3",
        ):
            spec = parse_fault(text)
            assert spec.canonical() == text
            assert parse_fault(spec.canonical()) == spec

    def test_parse_defaults(self):
        spec = parse_fault("kill-shard@t=2")
        assert spec == FaultSpec(kind="kill-shard", at=2.0, shard=None, amount=None)

    @pytest.mark.parametrize(
        "text",
        [
            "explode-shard@t=1",  # unknown kind
            "kill-shard",  # no time
            "kill-shard@t=-1",  # negative time
            "kill-shard:x@t=1",  # non-numeric shard
            "kill-shard@t=1@for=0",  # non-positive amount
            "",
        ],
    )
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            parse_fault(text)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="nope", at=1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="kill-shard", at=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="kill-shard", at=1.0, shard=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind="stall-shard", at=1.0, amount=-2.0)


class TestFailoverConfig:
    def test_defaults_valid(self):
        config = FailoverConfig()
        assert config.failover_after >= 2 * config.heartbeat_interval

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            FailoverConfig(heartbeat_interval=0.0)

    def test_rejects_failover_after_below_two_intervals(self):
        # Between beats a healthy worker's observed age legitimately
        # reaches one full interval; a smaller bound false-positives.
        with pytest.raises(ValueError, match="twice"):
            FailoverConfig(heartbeat_interval=1.0, failover_after=1.5)
        assert FailoverConfig(heartbeat_interval=1.0, failover_after=2.0)


class TestFailureDetector:
    def test_age_and_phi_track_observations(self):
        detector = FailureDetector(FailoverConfig(1.0, 5.0))
        assert detector.age(0) == 0.0
        detector.observe(0, 2.0)
        assert detector.age(0) == 2.0
        assert detector.phi(0) == pytest.approx(2.0 * math.log10(math.e))
        detector.observe(0, 0.0)
        assert detector.age(0) == 0.0
        assert not detector.suspect(0)

    def test_suspect_is_the_configured_timeout(self):
        detector = FailureDetector(FailoverConfig(1.0, 5.0))
        detector.observe(3, 5.0)
        assert not detector.suspect(3)
        detector.observe(3, 5.01)
        assert detector.suspect(3)

    def test_negative_ages_clamp_to_zero(self):
        detector = FailureDetector(FailoverConfig(1.0, 5.0))
        detector.observe(1, -4.0)
        assert detector.age(1) == 0.0


class TestDeadShard:
    def test_every_data_path_raises_shard_failed(self):
        dead = DeadShard(3, reason="killed")
        assert dead.alive is False
        assert dead.pending_batches == 0
        for call in (
            lambda: dead.window,
            lambda: dead.last_seq,
            lambda: dead.ingest([]),
            lambda: dead.fold([]),
            lambda: dead.advance(1.0),
            lambda: dead.drain_state(1.0),
            lambda: dead.drain_stats(1.0),
            lambda: dead.restore({}),
        ):
            with pytest.raises(ShardFailedError) as exc:
                call()
            assert exc.value.shard_id == 3
            assert exc.value.reason == "killed"
        assert dead.submit(Heartbeat(1.0)) is False
        dead.close()  # no-op, never raises


class TestFaultedShard:
    def _shard(self):
        return IngestShard(0, 600.0)

    def test_stall_raises_at_every_barrier(self):
        faulted = FaultedShard(self._shard(), "stall")
        for call in (
            lambda: faulted.ingest([Heartbeat(1.0)]),
            lambda: faulted.drain_state(1.0),
            lambda: faulted.drain_stats(1.0),
        ):
            with pytest.raises(ShardFailedError) as exc:
                call()
            assert exc.value.reason == "stall"

    def test_drop_counts_telemetry_only_and_exhausts(self):
        inner = self._shard()
        faulted = FaultedShard(inner, "drop", batches=1)
        events = _events(seed=1, count=2, heartbeat_every=3)
        telemetry = sum(1 for e in events if isinstance(e, TELEMETRY))
        faulted.ingest(events)  # dropped
        assert faulted.telemetry_dropped == telemetry
        assert inner.window.events_ingested == 0
        assert faulted.exhausted
        faulted.ingest(events)  # budget spent: delegates
        assert inner.window.events_ingested == telemetry

    def test_slow_delegates_every_record(self):
        inner = self._shard()
        faulted = FaultedShard(inner, "slow", batches=1)
        events = [e for e in _events(seed=2, count=3) if isinstance(e, TELEMETRY)]
        faulted.ingest(events)
        assert inner.window.events_ingested == len(events)
        assert faulted.exhausted

    def test_delegation_and_unwrap(self):
        inner = self._shard()
        faulted = FaultedShard(inner, "drop", batches=1)
        assert faulted.shard_id == 0  # __getattr__ delegation
        assert faulted.inner is inner
        with pytest.raises(ValueError):
            FaultedShard(inner, "explode")


class _StubService:
    """Minimal service surface the injector binds to (in-process)."""

    def __init__(self, shards=4, interval=300.0):
        self.config = _service_config(retune_interval=interval)
        self.num_shards = shards
        self.shards = [IngestShard(i, 600.0) for i in range(shards)]
        self.failover = FAST


class TestFaultInjector:
    def test_advance_before_arm_raises(self):
        with pytest.raises(RuntimeError, match="arm"):
            FaultInjector(["kill-shard@t=1"]).advance(1.0)

    def test_times_resolve_in_interval_units(self):
        injector = FaultInjector([FaultSpec("kill-shard", at=2.0, shard=1)])
        injector.arm(_StubService(shards=2, interval=300.0))
        assert injector.advance(599.9) == []
        fired = injector.advance(600.0)
        assert [spec.kind for spec in fired] == ["kill-shard"]
        assert injector.injected == ["kill-shard:1@600s"]
        assert injector.pending == []

    def test_unpinned_shard_is_seed_deterministic(self):
        picks = []
        for _ in range(2):
            injector = FaultInjector(["kill-shard@t=1"], seed=7)
            injector.arm(_StubService(shards=4))
            injector.advance(10**9)
            picks.append(injector.fired[0][2])
        assert picks[0] == picks[1]
        assert 0 <= picks[0] < 4

    def test_pinned_shard_out_of_range_rejected_at_arm(self):
        injector = FaultInjector(["kill-shard:5@t=1"])
        with pytest.raises(ValueError, match="shard 5"):
            injector.arm(_StubService(shards=2))

    def test_kill_and_drop_mutate_the_data_plane(self):
        service = _StubService(shards=2)
        injector = FaultInjector(
            ["kill-shard:0@t=1", "drop-batches:1@t=1@for=1"], seed=0
        )
        injector.arm(service)
        injector.advance(10**9)
        assert isinstance(service.shards[0], DeadShard)
        assert isinstance(service.shards[1], FaultedShard)
        telemetry = [e for e in _events(seed=3, count=2) if isinstance(e, TELEMETRY)]
        service.shards[1].ingest(telemetry)
        assert injector.dropped_by_shard() == {1: len(telemetry)}


class TestCrashMatrix:
    """Every fault kind x {1, 2, 4} shards x {in-process, workers}.

    The uniform post-mortem: the journals re-read CRC-clean end to end,
    surviving shards journal exactly the telemetry routed to them (minus
    what drop faults discarded before any shard saw it), and the merged
    window statistics equal a fresh batch recompute over the journaled
    survivor set to 1e-9 — the same oracle the fault-free sharding tests
    hold the data plane to.
    """

    @pytest.mark.parametrize("workers", [False, True], ids=["inproc", "workers"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_fault_matrix(self, tmp_path, kind, shards, workers):
        if workers and shards == 1:
            pytest.skip("worker data plane requires shards > 1")
        events = _events(seed=3 + shards, count=240, heartbeat_every=60)
        half = len(events) // 2
        victim = 0 if shards == 1 else 1
        amount = {
            "stall-shard": 1.0,
            "drop-batches": 2.0,
            "slow-journal": 2.0,
            # Transient partition: shorter than FAST.failover_after, so
            # it heals instead of failing over; the heal wait below
            # lets the post-mortem barrier flush the partition buffer.
            "partition": 0.3,
            "slow-net": 5.0,  # 5ms per frame: pure latency
            "drop-net": 2.0,
        }.get(kind)
        state = ServiceState(tmp_path, shards=shards)
        service = build_service(
            _scenario(),
            _service_config(),
            seed=0,
            state=state,
            shards=shards,
            shard_workers=workers,
            failover=FAST,
        )
        injector = FaultInjector(
            [FaultSpec(kind=kind, at=1.0, shard=victim, amount=amount)], seed=0
        )
        injector.arm(service)
        service.ingest_batch(events[:half])
        assert injector.advance(10**9), "the scheduled fault must fire"
        service.ingest_batch(events[half:])
        if kind == "partition":
            # Wait out the partition window so the barrier below heals
            # the link and flushes the buffered tail to the journal.
            time.sleep(amount + 0.2)

        merged = service.window  # live merged view: forces a full barrier
        snap, now = merged.snapshot(), merged.now
        failovers = list(service.failovers)
        service.close()
        state.close()

        failed = {report.shard for report in failovers}
        if kind in ("kill-shard", "stall-shard"):
            assert failed == {victim}
            report = failovers[0]
            if kind == "kill-shard":
                assert report.reason in ("killed", "process-exit")
            else:
                assert report.reason in ("stall", "reply-timeout", "heartbeat-timeout")
            assert report.latency >= 0.0
        else:
            assert failed == set()  # non-fatal faults never fail over
        if kind in ("drop-batches", "drop-net") and shards > 1:
            # Single-shard planes have no producer->shard batch boundary
            # to drop at; sharded planes must have really dropped some.
            assert sum(injector.dropped_by_shard().values()) > 0

        routed = _routed_telemetry(events, shards)
        journaled = _journaled_telemetry(tmp_path, shards)
        dropped = injector.dropped_by_shard()
        for i in range(shards):
            expected = len(routed[i]) - dropped.get(i, 0)
            if i in failed and workers:
                # A killed worker's queue residue and truncated tail are
                # the failover's bounded loss; never negative, never a
                # survivor's.
                assert 0 <= len(journaled[i]) <= expected
            else:
                assert len(journaled[i]) == expected, f"shard {i} lost events"

        _stats_close(
            snap,
            _oracle_stats(
                [e for part in journaled for e in part], service.config.window, now
            ),
        )


class TestKillNineAcceptance:
    def test_sigkill_mid_replay_bounded_recovery(self, tmp_path):
        """kill -9 one shard worker mid-stream: the service keeps
        serving, the replacement resumes from the shard journal at the
        broadcast heartbeat boundary, survivors lose nothing, merged
        stats match the batch oracle to 1e-9, and a resume restores the
        decision records bit-identically — no sleeps anywhere."""
        events = _events(seed=5, count=300, heartbeat_every=30)
        half = len(events) // 2
        state = ServiceState(tmp_path, shards=4)
        service = build_service(
            _scenario(),
            _service_config(),
            seed=0,
            state=state,
            shards=4,
            shard_workers=True,
            failover=FAST,
        )
        service.ingest_batch(events[:half])
        handle = service.shards[1]
        assert isinstance(handle, ShardWorkerHandle)
        os.kill(handle._process.pid, signal.SIGKILL)

        service.ingest_batch(events[half:])  # keeps serving
        assert [report.shard for report in service.failovers] == [1]
        report = service.failovers[0]
        assert report.reason == "process-exit"
        assert report.boundary > 0.0  # rewound to a real heartbeat edge
        assert service.shard_failures == 1
        assert service.shard_recoveries == 1

        merged = service.window
        snap, now = merged.snapshot(), merged.now
        decisions = [(d.time, d.retuned, d.reason) for d in service.decisions]
        assert decisions  # the stream spans multiple cadence ticks
        telemetry_live = service.telemetry_ingested
        service.close()
        state.close()

        routed = _routed_telemetry(events, 4)
        journaled = _journaled_telemetry(tmp_path, 4)
        for i in (0, 2, 3):  # survivors: zero loss, exactly
            assert len(journaled[i]) == len(routed[i])
        assert len(journaled[1]) <= len(routed[1])  # bounded loss
        # The live counter subtracts the truncated tail but cannot see
        # the dead worker's queue residue: journaled <= counted <= routed.
        total_routed = sum(len(part) for part in routed)
        assert sum(len(part) for part in journaled) <= telemetry_live <= total_routed

        _stats_close(
            snap,
            _oracle_stats(
                [e for part in journaled for e in part], service.config.window, now
            ),
        )

        resumed = TempoService.resume(
            build_controller(_scenario()), tmp_path, _service_config(), shards=4
        )
        assert [(d.time, d.retuned, d.reason) for d in resumed.decisions] == decisions
        assert resumed.shard_failures == 1
        assert resumed.shard_recoveries == 1
        _stats_close(resumed.window.snapshot(), snap)
        resumed.close()


class TestDrainBarrierRegression:
    """The latent hang: a worker dying mid-batch left the control plane
    blocked on a reply that would never come.  The barrier now polls the
    reply queue in short slices and checks the process between slices."""

    def test_dead_worker_mid_drain_surfaces_quickly(self):
        handle = ShardWorkerHandle(0, 600.0)  # legacy unsupervised mode
        try:
            handle.ingest([e for e in _events(seed=7, count=5)])
            handle._process.kill()
            started = time.monotonic()
            with pytest.raises(ShardFailedError) as exc:
                handle.drain_state(10.0)
            assert exc.value.reason == "process-exit"
            # Far below the 120s legacy reply timeout: the barrier saw
            # the death, it did not wait out the clock.
            assert time.monotonic() - started < 30.0
        finally:
            handle.close()

    def test_stalled_worker_hits_the_supervised_reply_bound(self):
        handle = ShardWorkerHandle(
            0, 600.0, heartbeat_interval=0.1, failover_after=0.5
        )
        try:
            handle.stall(3.0)
            started = time.monotonic()
            with pytest.raises(ShardFailedError) as exc:
                handle.drain_state(10.0)
            assert exc.value.reason == "reply-timeout"
            assert time.monotonic() - started < 30.0
        finally:
            handle.kill()  # fence it; no need to wait out the stall

    def test_service_barrier_fails_over_a_worker_killed_mid_drain(self, tmp_path):
        state = ServiceState(tmp_path, shards=2)
        service = build_service(
            _scenario(),
            _service_config(),
            seed=0,
            state=state,
            shards=2,
            shard_workers=True,
            failover=FAST,
        )
        try:
            service.ingest_batch(_events(seed=8, count=40))
            os.kill(service.shards[0]._process.pid, signal.SIGKILL)
            started = time.monotonic()
            merged = service.window  # drain barrier: must not hang
            assert time.monotonic() - started < 30.0
            assert merged.now >= 0.0
            assert [report.shard for report in service.failovers] == [0]
        finally:
            service.close()
            state.close()


@st.composite
def fault_schedule(draw, shards):
    """A random—but reproducible—fault schedule for one data plane."""
    specs = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(FAULT_KINDS))
        at = draw(
            st.floats(min_value=0.25, max_value=3.0, allow_nan=False).map(
                lambda x: round(x, 2)
            )
        )
        shard = draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=shards - 1))
        )
        amount = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=3)))
        specs.append(
            FaultSpec(
                kind=kind,
                at=at,
                shard=shard,
                amount=None if amount is None else float(amount),
            )
        )
    return specs


class TestFaultScheduleProperties:
    """Random fault schedules x random event streams (in-process plane).

    The headline invariants: journaled telemetry for every shard equals
    the routed stream minus injected producer-side drops (the in-process
    plane loses *nothing*, even on failed shards — its journals are
    parent-owned), every scheduled fault either fired or is still
    pending on the virtual clock, and the drain barrier completes in
    bounded wall time with no sleeps anywhere."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_no_survivor_loss_and_bounded_drain(self, data):
        shards = data.draw(st.integers(min_value=1, max_value=3), label="shards")
        specs = data.draw(fault_schedule(shards), label="faults")
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        count = data.draw(st.integers(min_value=20, max_value=80), label="events")
        events = _events(seed=seed, count=count, heartbeat_every=25)
        started = time.monotonic()
        root = tempfile.mkdtemp(prefix="tempo-failover-prop-")
        try:
            state = ServiceState(root, shards=shards)
            service = build_service(
                _scenario(),
                _service_config(),
                seed=0,
                state=state,
                shards=shards,
                shard_workers=False,
                failover=FAST,
            )
            injector = FaultInjector(specs, seed=seed)
            injector.arm(service)
            third = max(1, len(events) // 3)
            for i in range(0, len(events), third):
                batch = events[i : i + third]
                injector.advance(batch[-1].time)
                service.ingest_batch(batch)
            injector.advance(10**9)
            merged = service.window  # the drain barrier must complete
            assert merged.now >= 0.0
            service.close()
            state.close()

            assert len(injector.fired) + len(injector.pending) == len(specs)
            routed = _routed_telemetry(events, shards)
            journaled = _journaled_telemetry(root, shards)
            dropped = injector.dropped_by_shard()
            for i in range(shards):
                assert len(journaled[i]) == len(routed[i]) - dropped.get(i, 0)
        finally:
            shutil.rmtree(root, ignore_errors=True)
        # Bounded end to end: virtual-clock injection, no wall sleeps.
        assert time.monotonic() - started < 60.0


class TestChaosHarness:
    def test_inprocess_kill_survives_with_zero_survivor_loss(self, tmp_path):
        report = run_chaos(
            "flash-failure",
            ["kill-shard:1@t=1"],
            shards=2,
            shard_workers=False,
            horizon=2 * 3600.0,
            window=600.0,
            interval=300.0,
            heartbeat_interval=0.1,
            failover_after=0.5,
            state_dir=tmp_path,
            seed=0,
        )
        assert report.ok
        assert report.recovered
        assert report.survivor_events_lost == 0
        assert report.survivor_events_expected > 0
        assert report.injected == ("kill-shard:1@300s",)
        assert [r.shard for r in report.failovers] == [1]
        assert report.max_stats_gap < 1e-9
        assert report.lines()[-1].endswith("SURVIVED")

    def test_faults_past_the_horizon_report_unfired(self, tmp_path):
        report = run_chaos(
            "steady",
            ["kill-shard:0@t=99"],
            shards=2,
            shard_workers=False,
            horizon=1800.0,
            window=600.0,
            interval=300.0,
            heartbeat_interval=0.1,
            failover_after=0.5,
            state_dir=tmp_path,
            seed=0,
        )
        assert report.injected == ()
        assert report.unfired == ("kill-shard:0@t=99",)
        assert report.failovers == ()
        assert report.ok  # nothing fired, nothing lost
        assert report.retunes_missed == 0
