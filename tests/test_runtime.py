"""Unit tests for the shared simulator runtime bookkeeping."""

import math

import pytest

from repro.sim.runtime import (
    JobRun,
    PendingTask,
    PoolState,
    RunningTask,
    validate_workload_fits,
)
from repro.workload.model import (
    JobSpec,
    StageSpec,
    TaskSpec,
    mapreduce_job,
    single_stage_job,
)


def make_pending(job_run, index=0, stage=None, containers=1):
    stage = stage or job_run.spec.stages[0]
    task = stage.tasks[index]
    return PendingTask(job_run, task, stage.name, 0.0)


class TestJobRun:
    def test_initial_release(self):
        job = JobRun(mapreduce_job("A", 0.0, [5.0, 5.0], [7.0], job_id="j"))
        ready = job.release_ready_stages()
        assert [s.name for s in ready] == ["map"]
        assert job.release_ready_stages() == []  # idempotent

    def test_barrier_release_after_all_maps(self):
        job = JobRun(mapreduce_job("A", 0.0, [5.0, 5.0], [7.0], job_id="j"))
        job.release_ready_stages()
        assert job.complete_task("map") == []
        newly = job.complete_task("map")
        assert [s.name for s in newly] == ["reduce"]

    def test_slowstart_release(self):
        job = JobRun(
            mapreduce_job("A", 0.0, [5.0] * 4, [7.0], slowstart=0.5, job_id="j")
        )
        job.release_ready_stages()
        assert job.complete_task("map") == []
        newly = job.complete_task("map")  # 2/4 = 50% done
        assert [s.name for s in newly] == ["reduce"]

    def test_done_accounting(self):
        job = JobRun(single_stage_job("A", 0.0, [1.0, 2.0], job_id="j"))
        job.release_ready_stages()
        job.complete_task("stage0")
        assert not job.done
        job.complete_task("stage0")
        assert job.done


class TestPoolStateCounters:
    @pytest.fixture
    def state(self):
        return PoolState("slots", capacity=4)

    @pytest.fixture
    def job(self):
        run = JobRun(single_stage_job("A", 0.0, [10.0] * 3, job_id="j"))
        run.release_ready_stages()
        return run

    def test_pending_counters(self, state, job):
        for i in range(3):
            state.add_pending(make_pending(job, i))
        assert state.runnable_containers("A") == 3
        state.pop_pending("A")
        assert state.runnable_containers("A") == 2

    def test_running_counters(self, state, job):
        state.add_pending(make_pending(job, 0))
        item = state.pop_pending("A")
        run = state.start(item, now=1.0)
        assert state.running_containers("A") == 1
        assert state.total_running_containers() == 1
        state.remove_running(run)
        assert state.running_containers("A") == 0
        assert state.total_running_containers() == 0

    def test_front_requeue_order(self, state, job):
        first = make_pending(job, 0)
        second = make_pending(job, 1)
        state.add_pending(first)
        state.add_pending(second, front=True)
        assert state.peek_pending("A") is second

    def test_purge_pending(self, state, job):
        other = JobRun(single_stage_job("B", 0.0, [5.0], job_id="k"))
        other.release_ready_stages()
        state.add_pending(make_pending(job, 0))
        state.add_pending(make_pending(job, 1))
        state.add_pending(make_pending(other, 0))
        dropped = state.purge_pending("j")
        assert dropped == 2
        assert state.runnable_containers("A") == 0
        assert state.runnable_containers("B") == 1

    def test_tenants_reflect_activity(self, state, job):
        assert state.tenants() == set()
        state.add_pending(make_pending(job, 0))
        assert state.tenants() == {"A"}
        item = state.pop_pending("A")
        assert state.tenants() == set()
        state.start(item, 0.0)
        assert state.tenants() == {"A"}

    def test_oldest_pending_submit(self, state, job):
        assert state.oldest_pending_submit("A") == math.inf
        state.add_pending(make_pending(job, 0))
        assert state.oldest_pending_submit("A") == 0.0

    def test_remove_unknown_running_raises(self, state, job):
        run = RunningTask(job, job.spec.stages[0].tasks[0], "stage0", 0.0, 0)
        with pytest.raises(RuntimeError):
            state.remove_running(run)


class TestValidateWorkloadFits:
    def test_rejects_oversized(self):
        task = TaskSpec("t", 1.0, pool="slots", containers=9)
        with pytest.raises(ValueError, match="demands"):
            validate_workload_fits([task], {"slots": 4})

    def test_rejects_unknown_pool(self):
        task = TaskSpec("t", 1.0, pool="gpu")
        with pytest.raises(ValueError, match="does not have"):
            validate_workload_fits([task], {"slots": 4})

    def test_accepts_fitting(self):
        task = TaskSpec("t", 1.0, pool="slots", containers=4)
        validate_workload_fits([task], {"slots": 4})
