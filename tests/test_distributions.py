"""Unit and property tests for distribution models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import (
    EmpiricalCDF,
    LognormalModel,
    PoissonProcessModel,
    fit_lognormal,
)


class TestLognormalModel:
    def test_moments(self):
        m = LognormalModel(mu=math.log(10.0), sigma=0.5)
        assert m.median == pytest.approx(10.0)
        assert m.mean == pytest.approx(10.0 * math.exp(0.125))

    def test_sampling_respects_bounds(self, rng):
        m = LognormalModel(mu=0.0, sigma=2.0, minimum=0.5, maximum=5.0)
        draws = m.sample(rng, 500)
        assert np.all(draws >= 0.5)
        assert np.all(draws <= 5.0)

    def test_scaled_shifts_median(self):
        m = LognormalModel(mu=math.log(10.0), sigma=0.3)
        assert m.scaled(1.3).median == pytest.approx(13.0)

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            LognormalModel(mu=0.0, sigma=1.0).scaled(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalModel(mu=0.0, sigma=-1.0)
        with pytest.raises(ValueError):
            LognormalModel(mu=0.0, sigma=1.0, minimum=5.0, maximum=2.0)

    @settings(max_examples=25, deadline=None)
    @given(
        mu=st.floats(-2.0, 4.0),
        sigma=st.floats(0.05, 1.5),
    )
    def test_fit_recovers_parameters(self, mu, sigma):
        rng = np.random.default_rng(7)
        samples = np.exp(rng.normal(mu, sigma, size=4000))
        fitted = fit_lognormal(samples)
        assert fitted.mu == pytest.approx(mu, abs=0.15)
        assert fitted.sigma == pytest.approx(sigma, abs=0.15)

    def test_fit_requires_positive_samples(self):
        with pytest.raises(ValueError, match="positive samples"):
            fit_lognormal([0.0, -1.0])


class TestPoissonProcess:
    def test_rate_estimation(self, rng):
        m = PoissonProcessModel(rate=0.05)
        arrivals = m.sample_arrivals(rng, horizon=20000.0)
        fitted = PoissonProcessModel.fit(arrivals, horizon=20000.0)
        assert fitted.rate == pytest.approx(0.05, rel=0.15)

    def test_arrivals_sorted_and_in_range(self, rng):
        arrivals = PoissonProcessModel(0.1).sample_arrivals(rng, 100.0)
        assert np.all(np.diff(arrivals) >= 0)
        assert np.all((arrivals >= 0) & (arrivals < 100.0))

    def test_zero_rate(self, rng):
        assert PoissonProcessModel(0.0).sample_arrivals(rng, 100.0).size == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcessModel(-1.0)

    def test_fit_requires_positive_horizon(self):
        with pytest.raises(ValueError):
            PoissonProcessModel.fit([1.0], 0.0)


class TestEmpiricalCDF:
    def test_cdf_values(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.cdf(0.5) == 0.0
        assert cdf.cdf(2.0) == pytest.approx(0.5)
        assert cdf.cdf(10.0) == 1.0

    def test_quantile(self):
        cdf = EmpiricalCDF(list(range(101)))
        assert cdf.quantile(0.5) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_sampling_stays_in_support(self, rng):
        data = [3.0, 5.0, 9.0]
        cdf = EmpiricalCDF(data)
        draws = cdf.sample(rng, 100)
        assert set(np.unique(draws)) <= set(data)

    def test_curve_monotone(self):
        cdf = EmpiricalCDF(np.random.default_rng(0).normal(size=100))
        xs, qs = cdf.curve(50)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(qs) >= 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_cdf_is_monotone_function(self, samples):
        cdf = EmpiricalCDF(samples)
        lo, hi = min(samples) - 1, max(samples) + 1
        values = [cdf.cdf(x) for x in np.linspace(lo, hi, 20)]
        assert all(b >= a for a, b in zip(values, values[1:]))
