"""Documentation-quality gates.

Three contracts a downstream user relies on: every public item carries
a docstring, the README's quickstart snippet runs against the current
API, and the prose documentation under ``docs/`` stays truthful — its
code blocks parse, the CLI invocations it shows name real subcommands
and flags, and its scenario catalog matches the code's.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).parent.parent
DOC_PAGES = ("docs/ARCHITECTURE.md", "docs/OPERATIONS.md")


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


def _all_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in _all_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _all_modules():
            for name, obj in _public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        """Every public method has a docstring, own or inherited.

        ``inspect.getdoc`` walks the MRO, so overrides of documented
        abstract methods (e.g. the QS metrics' ``evaluate``) count as
        documented by their contract.
        """
        undocumented = []
        for module in _all_modules():
            for _, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for mname, member in vars(cls).items():
                    if mname.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (inspect.getdoc(getattr(cls, mname)) or "").strip():
                        undocumented.append(f"{cls.__module__}.{cls.__name__}.{mname}")
        assert sorted(set(undocumented)) == []


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """Extract and execute the first python block in README.md."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README must contain a python quickstart block"
        snippet = blocks[0]
        # Shrink the run so the doc test stays fast: fewer, shorter windows.
        snippet = snippet.replace("1800.0, 6", "420.0, 2")
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
        assert "controller" in namespace

    def test_readme_mentions_all_examples(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for script in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert script.name in readme, f"README missing {script.name}"


def _subcommands():
    from repro.cli import build_parser

    import argparse

    parser = build_parser()
    subs = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return subs.choices


class TestDocsPages:
    def test_docs_exist_and_are_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for page in DOC_PAGES:
            assert (REPO_ROOT / page).exists(), f"missing {page}"
            assert page in readme, f"README does not link {page}"

    def test_docs_cross_link_each_other(self):
        arch = (REPO_ROOT / "docs/ARCHITECTURE.md").read_text()
        ops = (REPO_ROOT / "docs/OPERATIONS.md").read_text()
        assert "OPERATIONS.md" in arch
        assert "ARCHITECTURE.md" in ops

    def test_python_blocks_compile(self):
        """Every python block in README and docs/ must at least parse."""
        for page in ("README.md", *DOC_PAGES):
            text = (REPO_ROOT / page).read_text()
            for i, block in enumerate(re.findall(r"```python\n(.*?)```", text, re.S)):
                compile(block, f"{page}[python block {i}]", "exec")

    def test_cli_invocations_name_real_subcommands(self):
        """`tempo-repro <sub>` / `python -m repro <sub>` must exist."""
        known = set(_subcommands())
        pattern = re.compile(r"(?:tempo-repro|python -m repro)\s+([a-z][a-z-]*)")
        for page in ("README.md", *DOC_PAGES):
            text = (REPO_ROOT / page).read_text()
            for sub in pattern.findall(text):
                assert sub in known, f"{page} references unknown subcommand {sub!r}"

    def test_operations_flags_match_cli_parsers(self):
        """Every flag OPERATIONS.md documents exists on serve/replay/resume."""
        ops = (REPO_ROOT / "docs/OPERATIONS.md").read_text()
        subs = _subcommands()
        flags = {
            s
            for name in (
                "serve",
                "replay",
                "resume",
                "compact",
                "status",
                "chaos",
                "worker",
                "dump-journal",
            )
            for action in subs[name]._actions
            for s in action.option_strings
        }
        for flag in re.findall(r"`(--[a-z][a-z-]*)`", ops):
            assert flag in flags, f"OPERATIONS.md documents unknown flag {flag}"

    def test_serve_and_replay_share_the_documented_flag_table(self):
        """The OPERATIONS flag table says 'shared by serve and replay';
        keep the two parsers' common scenario flags actually shared."""
        subs = _subcommands()
        serve = {
            s for a in subs["serve"]._actions for s in a.option_strings
        }
        replay = {
            s for a in subs["replay"]._actions for s in a.option_strings
        }
        for flag in ("--shards", "--shard-workers", "--state-dir", "--scenario"):
            assert flag in serve and flag in replay

    def test_operations_covers_scenario_catalog(self):
        from repro.service.replay import SCENARIOS

        ops = (REPO_ROOT / "docs/OPERATIONS.md").read_text()
        for name in SCENARIOS:
            assert f"`{name}`" in ops, f"OPERATIONS.md missing scenario {name}"

    def test_state_dir_layout_names_real_record_kinds(self):
        """The documented journal record kinds are the ones written."""
        ops = (REPO_ROOT / "docs/OPERATIONS.md").read_text()
        for kind in ("event", "decision", "config", "rollback"):
            assert f"`{kind}`" in ops
