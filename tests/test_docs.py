"""Documentation-quality gates.

Two contracts a downstream user relies on: every public item carries a
docstring, and the README's quickstart snippet runs against the current
API (no doc rot).
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).parent.parent


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


def _all_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in _all_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _all_modules():
            for name, obj in _public_members(module):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        """Every public method has a docstring, own or inherited.

        ``inspect.getdoc`` walks the MRO, so overrides of documented
        abstract methods (e.g. the QS metrics' ``evaluate``) count as
        documented by their contract.
        """
        undocumented = []
        for module in _all_modules():
            for _, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for mname, member in vars(cls).items():
                    if mname.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (inspect.getdoc(getattr(cls, mname)) or "").strip():
                        undocumented.append(f"{cls.__module__}.{cls.__name__}.{mname}")
        assert sorted(set(undocumented)) == []


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """Extract and execute the first python block in README.md."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README must contain a python quickstart block"
        snippet = blocks[0]
        # Shrink the run so the doc test stays fast: fewer, shorter windows.
        snippet = snippet.replace("1800.0, 6", "420.0, 2")
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
        assert "controller" in namespace

    def test_readme_mentions_all_examples(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for script in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert script.name in readme, f"README missing {script.name}"
