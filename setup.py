"""Setup shim for environments without the ``wheel`` package.

The canonical project metadata lives in ``pyproject.toml``; this file
exists so that ``pip install -e . --no-build-isolation --no-use-pep517``
(and legacy ``python setup.py develop``) work offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={
        "console_scripts": [
            "tempo-repro = repro.cli:main",
        ]
    },
)
