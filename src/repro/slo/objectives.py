"""Objectives: QS metrics bound to constraints and priorities.

The optimizer's problem (SP1) minimizes the vector of QS functions
subject to ``E[f_i(x; w)] <= r_i``.  An :class:`Objective` is one
component: a QS metric, its threshold ``r_i`` (``None`` for pure
best-effort objectives that only participate in the Pareto
minimization), and a priority weight (Section 6.1: "to promote the
priority of an SLO ... replace the QS with alpha * f_i").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.slo.qs import Interval, QSMetric
from repro.workload.trace import Trace


@dataclass
class Objective:
    """One SLO in the optimization problem.

    Attributes:
        metric: The QS metric measuring this SLO.
        threshold: The constraint ``r_i``; ``None`` means unconstrained
            (a best-effort objective to be minimized as far as possible).
        priority: Multiplier ``alpha >= 1`` promoting the SLO; both the
            QS value and the threshold are scaled so the constraint's
            meaning is unchanged while its *violations* weigh more in
            the optimizer's max-min balancing.
        label: Optional human-readable name.
    """

    metric: QSMetric
    threshold: float | None = None
    priority: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise ValueError(f"priority must be positive, got {self.priority}")
        if not self.label:
            self.label = self.metric.name

    def evaluate(self, trace: Trace, interval: Interval | None = None) -> float:
        """Priority-scaled QS value."""
        return self.priority * self.metric.evaluate(trace, interval)

    def raw(self, trace: Trace, interval: Interval | None = None) -> float:
        """Unscaled QS value (for reporting)."""
        return self.metric.evaluate(trace, interval)

    @property
    def scaled_threshold(self) -> float:
        """Priority-scaled ``r_i``; ``inf`` when unconstrained."""
        if self.threshold is None:
            return math.inf
        return self.priority * self.threshold

    def with_threshold(self, threshold: float | None) -> "Objective":
        """Copy of this objective with a different ``r_i``."""
        return Objective(
            metric=self.metric,
            threshold=threshold,
            priority=self.priority,
            label=self.label,
        )


class SLOSet:
    """The full SLO vector handed to Tempo's optimizer.

    Evaluating an :class:`SLOSet` on a trace yields the QS vector
    ``f(x; w)``; ``thresholds`` yields ``r``.
    """

    def __init__(self, objectives: Iterable[Objective]):
        self._objectives: list[Objective] = list(objectives)
        if not self._objectives:
            raise ValueError("SLOSet needs at least one objective")
        labels = [o.label for o in self._objectives]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate objective labels: {labels}")

    def __len__(self) -> int:
        return len(self._objectives)

    def __iter__(self):
        return iter(self._objectives)

    def __getitem__(self, i: int) -> Objective:
        return self._objectives[i]

    def __repr__(self) -> str:
        return f"SLOSet({', '.join(o.label for o in self._objectives)})"

    @property
    def labels(self) -> list[str]:
        return [o.label for o in self._objectives]

    def evaluate(self, trace: Trace, interval: Interval | None = None) -> np.ndarray:
        """Priority-scaled QS vector ``f`` for one observed schedule."""
        return np.array([o.evaluate(trace, interval) for o in self._objectives])

    def evaluate_raw(self, trace: Trace, interval: Interval | None = None) -> np.ndarray:
        """Unscaled QS vector (for human-facing reporting)."""
        return np.array([o.raw(trace, interval) for o in self._objectives])

    def thresholds(self) -> np.ndarray:
        """Priority-scaled constraint vector ``r`` (``inf`` = none)."""
        return np.array([o.scaled_threshold for o in self._objectives])

    def violations(self, f: Sequence[float]) -> np.ndarray:
        """Boolean mask of constraints with ``f_i >= r_i``."""
        f = np.asarray(f, dtype=float)
        r = self.thresholds()
        return f >= r

    def max_regret(self, f: Sequence[float]) -> float:
        """Largest constraint excess ``max_i (f_i - r_i)`` (can be < 0).

        PALD's max-min fairness minimizes exactly this quantity when not
        all SLOs can be met.
        """
        f = np.asarray(f, dtype=float)
        r = self.thresholds()
        finite = np.isfinite(r)
        if not np.any(finite):
            return -math.inf
        return float(np.max(f[finite] - r[finite]))

    def rebased(self, f: Sequence[float]) -> "SLOSet":
        """A copy whose unconstrained objectives get thresholds from ``f``.

        Implements the control loop's ratcheting: "Tempo's control loop
        can use the QS value attained for an SLO at the current
        configuration as the r_i for the next iteration" (Section 6.1).
        """
        f = np.asarray(f, dtype=float)
        objectives = []
        for obj, fi in zip(self._objectives, f):
            if obj.threshold is None:
                objectives.append(obj.with_threshold(fi / obj.priority))
            else:
                objectives.append(obj)
        return SLOSet(objectives)
