"""SLO layer: QS metrics (Section 5) and declarative templates.

A **QS** (Quantitative SLO) is a loss-function-style metric measuring how
well one SLO is satisfied by an observed task schedule; minimizing the QS
improves the SLO.  Templates let tenants declare SLOs like "average job
response time under two minutes" without touching RM internals.
"""

from repro.slo.qs import (
    AverageResponseTime,
    DeadlineViolationFraction,
    FairnessDeviation,
    NegativeThroughput,
    NegativeUtilization,
    QSMetric,
    normalized_residual,
    worst_residual,
)
from repro.slo.objectives import Objective, SLOSet
from repro.slo.templates import (
    QSTemplate,
    deadline_slo,
    fairness_slo,
    response_time_slo,
    throughput_slo,
    utilization_slo,
)

__all__ = [
    "QSMetric",
    "AverageResponseTime",
    "DeadlineViolationFraction",
    "NegativeUtilization",
    "NegativeThroughput",
    "FairnessDeviation",
    "normalized_residual",
    "worst_residual",
    "Objective",
    "SLOSet",
    "QSTemplate",
    "deadline_slo",
    "response_time_slo",
    "utilization_slo",
    "throughput_slo",
    "fairness_slo",
]
