"""QS metrics for the popular SLO classes (Section 5.1).

Every metric is a function of the task schedule over an interval ``L``:
``J_i`` is the set of the tenant's jobs submitted *and* completed within
the interval, ``T_i`` its tasks.  Lower is always better — Tempo's
optimizer minimizes QS vectors — so "more is better" quantities
(utilization, throughput) enter negated, exactly as the paper defines
them.

One deviation from the paper text: eq. (5.1)'s fairness metric is
written ``-|c_i + QS_UTIL|``, whose *minimization* would maximize the
deviation from the desired share.  That is an evident sign typo (QS
metrics are losses); we implement ``+|c_i + QS_UTIL|``.  See DESIGN.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workload.trace import Trace

Interval = tuple[float, float]


def normalized_residual(
    observed: Sequence[float], reference: Sequence[float], floor: float = 1e-9
) -> np.ndarray:
    """Per-metric symmetric relative residual, ``(o - r) / scale``.

    The scale is the symmetric mean magnitude ``(|o| + |r|) / 2 + floor``
    (the same normalization the stability guard's drift signal uses), so
    the residual is unitless, bounded in ``[-2, 2]``, and well behaved
    when the reference is near zero — a QS of exactly zero against a
    zero reference is a residual of zero, not an explosion.  QS metrics
    are losses (lower is better), so a positive residual means *worse
    than the reference* — the sign convention the decision plane's
    guards and records rely on.
    """
    observed = np.asarray(observed, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if observed.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: {observed.shape} vs {reference.shape}"
        )
    scale = (np.abs(observed) + np.abs(reference)) / 2.0 + floor
    return (observed - reference) / scale


def worst_residual(
    observed: Sequence[float], reference: Sequence[float], floor: float = 1e-9
) -> float:
    """Largest per-metric normalized residual (the worst regression).

    This is the scalar the decision plane journals with every verdict:
    ``> 0`` means at least one QS metric ran worse than the reference,
    and its magnitude is the relative excess.
    """
    return float(np.max(normalized_residual(observed, reference, floor)))


class QSMetric(ABC):
    """A quantitative SLO-satisfaction metric over a task schedule.

    ``evaluate`` returns the QS value (lower = better SLO satisfaction).
    ``empty_value`` is returned when the interval contains no relevant
    jobs (a schedule with no completions carries no signal about the
    SLO).
    """

    #: Short machine name, set by subclasses.
    kind: str = "abstract"

    def __init__(self, tenant: str | None, empty_value: float = 0.0):
        self.tenant = tenant
        self.empty_value = empty_value

    @abstractmethod
    def evaluate(self, trace: Trace, interval: Interval | None = None) -> float:
        """The QS value of the SLO under the observed ``trace``."""

    @property
    def name(self) -> str:
        scope = self.tenant if self.tenant is not None else "*"
        return f"{self.kind}({scope})"

    def __repr__(self) -> str:
        return self.name

    def _jobs(self, trace: Trace, interval: Interval | None):
        if self.tenant is None:
            jobs = []
            for tenant in sorted(trace.tenants()):
                jobs.extend(trace.completed_jobs(tenant, interval))
            return jobs
        return trace.completed_jobs(self.tenant, interval)

    @staticmethod
    def _span(trace: Trace, interval: Interval | None) -> Interval:
        return interval if interval is not None else (0.0, trace.horizon)


class AverageResponseTime(QSMetric):
    """QS_AJR (eq. 1): mean job response time in seconds."""

    kind = "ajr"

    def evaluate(self, trace: Trace, interval: Interval | None = None) -> float:
        jobs = self._jobs(trace, interval)
        if not jobs:
            return self.empty_value
        return sum(j.response_time for j in jobs) / len(jobs)


class DeadlineViolationFraction(QSMetric):
    """QS_DL (eq. 2): fraction of jobs missing their deadline.

    ``slack`` is the tolerance ``gamma``: a job violates only if it
    finishes later than ``deadline + gamma * response_time``, making the
    metric robust to system variability (the paper uses 25% / 50%).
    Jobs without a deadline are ignored.
    """

    kind = "deadline"

    def __init__(
        self, tenant: str | None, slack: float = 0.0, empty_value: float = 0.0
    ):
        super().__init__(tenant, empty_value)
        if slack < 0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        self.slack = slack

    def evaluate(self, trace: Trace, interval: Interval | None = None) -> float:
        jobs = [j for j in self._jobs(trace, interval) if j.deadline is not None]
        if not jobs:
            return self.empty_value
        misses = sum(1 for j in jobs if j.missed_deadline(self.slack))
        return misses / len(jobs)

    @property
    def name(self) -> str:
        scope = self.tenant if self.tenant is not None else "*"
        return f"{self.kind}({scope},slack={self.slack:g})"


class NegativeUtilization(QSMetric):
    """QS_UTIL (eq. 3): negative normalized resource usage.

    The utilization is the fraction of pool capacity occupied over the
    interval (the shaded area of Figure 4, normalized); minimizing its
    negation maximizes utilization.  ``effective=True`` excludes work of
    preempted attempts, measuring the *effective* utilization of
    Figure 1 (region I excluded).
    """

    kind = "util"

    def __init__(
        self,
        tenant: str | None = None,
        pool: str | None = None,
        *,
        effective: bool = False,
        empty_value: float = 0.0,
    ):
        super().__init__(tenant, empty_value)
        self.pool = pool
        self.effective = effective

    def evaluate(self, trace: Trace, interval: Interval | None = None) -> float:
        lo, hi = self._span(trace, interval)
        if hi <= lo or not trace.capacity:
            return self.empty_value
        pools = [self.pool] if self.pool is not None else sorted(trace.capacity)
        cap = sum(trace.capacity[p] for p in pools)
        if cap <= 0:
            return self.empty_value
        used = 0.0
        for rec in trace.task_records:
            if self.tenant is not None and rec.tenant != self.tenant:
                continue
            if rec.pool not in pools:
                continue
            if self.effective and rec.preempted:
                continue
            overlap = min(rec.finish_time, hi) - max(rec.start_time, lo)
            if overlap > 0:
                used += overlap * rec.containers
        return -used / (cap * (hi - lo))

    @property
    def name(self) -> str:
        scope = self.tenant if self.tenant is not None else "*"
        pool = self.pool if self.pool is not None else "*"
        eff = ",eff" if self.effective else ""
        return f"{self.kind}({scope},{pool}{eff})"


class NegativeThroughput(QSMetric):
    """QS_THR (eq. 4): negative count of jobs completed in the interval."""

    kind = "throughput"

    def evaluate(self, trace: Trace, interval: Interval | None = None) -> float:
        jobs = self._jobs(trace, interval)
        return -float(len(jobs))


class FairnessDeviation(QSMetric):
    """QS_FAIR: absolute deviation of the tenant's usage from its
    desired share ``c_i`` (long-term fairness).

    Implemented as ``|c_i + QS_UTIL|`` = ``|desired - actual|`` — see the
    module docstring for the sign-typo note.
    """

    kind = "fairness"

    def __init__(
        self,
        tenant: str,
        desired_share: float,
        pool: str | None = None,
        empty_value: float = 0.0,
    ):
        super().__init__(tenant, empty_value)
        if not 0.0 <= desired_share <= 1.0:
            raise ValueError(
                f"desired_share must be in [0, 1], got {desired_share}"
            )
        self.desired_share = desired_share
        self._util = NegativeUtilization(tenant, pool)

    def evaluate(self, trace: Trace, interval: Interval | None = None) -> float:
        neg_util = self._util.evaluate(trace, interval)
        return abs(self.desired_share + neg_util)

    @property
    def name(self) -> str:
        return f"{self.kind}({self.tenant},c={self.desired_share:g})"
