"""QS templates: declarative SLO specification (Section 5.2).

A QS template names (a) the tenant queue, (b) a predefined QS metric,
(c) the SLO's parameters (deadline slack, thresholds, ...), and (d) an
optional priority.  Templates make statements like

* "Average job response time of tenant A must be less than two minutes"
  -> ``response_time_slo("A", threshold=120)``
* "No more than 5% of tenant B's jobs can miss their deadline"
  -> ``deadline_slo("B", max_violation_fraction=0.05)``

They can also be parsed from plain dictionaries (e.g. loaded from YAML/
JSON by an operator tool) via :meth:`QSTemplate.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.slo.objectives import Objective
from repro.slo.qs import (
    AverageResponseTime,
    DeadlineViolationFraction,
    FairnessDeviation,
    NegativeThroughput,
    NegativeUtilization,
    QSMetric,
)


def response_time_slo(
    tenant: str,
    threshold: float | None = None,
    priority: float = 1.0,
    label: str = "",
) -> Objective:
    """SLO: average job response time of ``tenant`` below ``threshold`` s.

    With ``threshold=None`` the objective is best-effort: drive response
    time as low as possible subject to the other SLOs (how the paper
    treats BI/DEV/STR).
    """
    return Objective(
        metric=AverageResponseTime(tenant),
        threshold=threshold,
        priority=priority,
        label=label or f"AJR[{tenant}]",
    )


def deadline_slo(
    tenant: str,
    max_violation_fraction: float = 0.0,
    slack: float = 0.25,
    priority: float = 1.0,
    label: str = "",
) -> Objective:
    """SLO: at most ``max_violation_fraction`` of jobs miss deadlines.

    ``slack`` is the gamma tolerance of eq. (2); the paper's experiments
    use 0.25 and 0.5 to de-noise violation counting.
    """
    if not 0.0 <= max_violation_fraction <= 1.0:
        raise ValueError(
            f"max_violation_fraction must be in [0, 1], got {max_violation_fraction}"
        )
    return Objective(
        metric=DeadlineViolationFraction(tenant, slack=slack),
        threshold=max_violation_fraction,
        priority=priority,
        label=label or f"DL[{tenant}]",
    )


def utilization_slo(
    min_utilization: float,
    tenant: str | None = None,
    pool: str | None = None,
    priority: float = 1.0,
    label: str = "",
) -> Objective:
    """SLO: (tenant/pool) utilization at least ``min_utilization``.

    QS_UTIL is the negated utilization, so the constraint is
    ``-util <= -min_utilization``.
    """
    if not 0.0 <= min_utilization <= 1.0:
        raise ValueError(f"min_utilization must be in [0, 1], got {min_utilization}")
    scope = pool if pool is not None else "*"
    return Objective(
        metric=NegativeUtilization(tenant, pool),
        threshold=-min_utilization,
        priority=priority,
        label=label or f"UTIL[{scope}]",
    )


def throughput_slo(
    tenant: str,
    min_jobs: float | None = None,
    priority: float = 1.0,
    label: str = "",
) -> Objective:
    """SLO: at least ``min_jobs`` completions in the interval."""
    threshold = None if min_jobs is None else -float(min_jobs)
    return Objective(
        metric=NegativeThroughput(tenant),
        threshold=threshold,
        priority=priority,
        label=label or f"THR[{tenant}]",
    )


def fairness_slo(
    tenant: str,
    desired_share: float,
    max_deviation: float = 0.05,
    pool: str | None = None,
    priority: float = 1.0,
    label: str = "",
) -> Objective:
    """SLO: tenant's long-term usage within ``max_deviation`` of its share."""
    return Objective(
        metric=FairnessDeviation(tenant, desired_share, pool),
        threshold=max_deviation,
        priority=priority,
        label=label or f"FAIR[{tenant}]",
    )


#: Registry of declarative template kinds -> builder callables.
TEMPLATE_KINDS: dict[str, Callable[..., Objective]] = {
    "response_time": response_time_slo,
    "deadline": deadline_slo,
    "utilization": utilization_slo,
    "throughput": throughput_slo,
    "fairness": fairness_slo,
}


@dataclass(frozen=True)
class QSTemplate:
    """A declarative SLO specification.

    Attributes:
        queue: The tenant queue the SLO applies to (template item (a)).
        kind: Predefined QS metric name (item (b)); one of
            ``response_time``, ``deadline``, ``utilization``,
            ``throughput``, ``fairness``.
        params: Metric parameters (item (c)), e.g. ``threshold``,
            ``slack``, ``desired_share``.
        priority: Optional priority value (item (d)).
    """

    queue: str
    kind: str
    params: tuple[tuple[str, Any], ...] = ()
    priority: float = 1.0

    def __init__(
        self,
        queue: str,
        kind: str,
        params: Mapping[str, Any] | None = None,
        priority: float = 1.0,
    ):
        if kind not in TEMPLATE_KINDS:
            raise ValueError(
                f"unknown QS template kind {kind!r}; known: {sorted(TEMPLATE_KINDS)}"
            )
        object.__setattr__(self, "queue", queue)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(
            self, "params", tuple(sorted((params or {}).items()))
        )
        object.__setattr__(self, "priority", float(priority))

    def instantiate(self) -> Objective:
        """Build the concrete :class:`Objective` for this template."""
        builder = TEMPLATE_KINDS[self.kind]
        kwargs = dict(self.params)
        if self.kind == "utilization":
            # Utilization SLOs may be cluster-scoped; queue "*" means all.
            tenant = None if self.queue == "*" else self.queue
            return builder(tenant=tenant, priority=self.priority, **kwargs)
        return builder(self.queue, priority=self.priority, **kwargs)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "QSTemplate":
        """Parse a declarative spec, e.g. loaded from JSON:

        ``{"queue": "A", "slo": "deadline",
           "max_violation_fraction": 0.05, "slack": 0.25, "priority": 2}``
        """
        spec = dict(spec)
        try:
            queue = spec.pop("queue")
            kind = spec.pop("slo")
        except KeyError as exc:
            raise ValueError(f"QS template spec missing key: {exc}") from exc
        priority = float(spec.pop("priority", 1.0))
        return cls(queue=queue, kind=kind, params=spec, priority=priority)
