"""Job traces: the observed task schedule of a workload execution.

The paper (Section 3.2) captures the resources allocated to a tenant in a
fine-grained manner as the start time, end time, and resource allocation
``d`` of each task run on the tenant's behalf.  A :class:`Trace` is exactly
that artifact, plus per-job records, and is what flows around Tempo's
control loop: Step (1) extracts the recent task schedule, Step (2) feeds
job traces to the Workload Generator.

Traces serialize to JSON-lines so they can be archived and replayed.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.workload.model import (
    DEFAULT_POOL,
    JobSpec,
    StageSpec,
    TaskSpec,
    Workload,
)


@dataclass(frozen=True)
class TaskRecord:
    """One task attempt as observed in the schedule.

    ``duration`` is the service time the attempt consumed.  For preempted
    (killed) attempts the finish time marks the kill instant and the
    consumed work is wasted — the basis of the effective-utilization
    analysis in Figure 1.
    """

    job_id: str
    task_id: str
    tenant: str
    pool: str
    stage: str
    submit_time: float
    start_time: float
    finish_time: float
    containers: int = 1
    preempted: bool = False
    failed: bool = False
    attempt: int = 0

    def __post_init__(self) -> None:
        if not (self.submit_time <= self.start_time <= self.finish_time):
            raise ValueError(
                f"task {self.task_id} attempt {self.attempt}: require "
                f"submit <= start <= finish, got "
                f"({self.submit_time}, {self.start_time}, {self.finish_time})"
            )

    @property
    def service_time(self) -> float:
        """Container occupancy time of this attempt."""
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def work(self) -> float:
        """Container-seconds consumed by this attempt."""
        return self.service_time * self.containers

    @property
    def completed(self) -> bool:
        return not (self.preempted or self.failed)


@dataclass(frozen=True)
class JobRecord:
    """Completion record for one job."""

    job_id: str
    tenant: str
    submit_time: float
    finish_time: float
    deadline: float | None = None
    num_tasks: int = 0
    tags: tuple[str, ...] = ()
    stage_deps: tuple[tuple[str, tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        if self.finish_time < self.submit_time:
            raise ValueError(
                f"job {self.job_id}: finish {self.finish_time} before "
                f"submit {self.submit_time}"
            )

    @property
    def response_time(self) -> float:
        """Job latency: finish minus submission (paper eq. (1) summand)."""
        return self.finish_time - self.submit_time

    def missed_deadline(self, slack: float = 0.0) -> bool:
        """Deadline check with the paper's slack ``gamma`` (eq. (2)).

        A job violates only if it finishes later than
        ``deadline + slack * response_time``.
        """
        if self.deadline is None:
            return False
        return self.finish_time > self.deadline + slack * self.response_time


def task_record_to_dict(record: TaskRecord) -> dict:
    """JSON-ready dict for a task record (inverse of :func:`task_record_from_dict`).

    Built field-by-field rather than via ``dataclasses.asdict``: the
    record is flat, and ``asdict``'s recursive deepcopy costs ~20x on
    the journal's encode hot path (every task completion the durable
    daemon ingests passes through here).
    """
    return {
        "job_id": record.job_id,
        "task_id": record.task_id,
        "tenant": record.tenant,
        "pool": record.pool,
        "stage": record.stage,
        "submit_time": record.submit_time,
        "start_time": record.start_time,
        "finish_time": record.finish_time,
        "containers": record.containers,
        "preempted": record.preempted,
        "failed": record.failed,
        "attempt": record.attempt,
    }


def task_record_from_dict(row: Mapping) -> TaskRecord:
    """Rebuild a :class:`TaskRecord` from its dict form."""
    return TaskRecord(**dict(row))


def job_record_to_dict(record: JobRecord) -> dict:
    """JSON-ready dict for a job record (tuples become lists)."""
    return {
        "job_id": record.job_id,
        "tenant": record.tenant,
        "submit_time": record.submit_time,
        "finish_time": record.finish_time,
        "deadline": record.deadline,
        "num_tasks": record.num_tasks,
        "tags": list(record.tags),
        "stage_deps": [[s, list(d)] for s, d in record.stage_deps],
    }


def job_record_from_dict(row: Mapping) -> JobRecord:
    """Rebuild a :class:`JobRecord` from its dict form."""
    row = dict(row)
    row["tags"] = tuple(row.get("tags", ()))
    row["stage_deps"] = tuple((s, tuple(d)) for s, d in row.get("stage_deps", ()))
    return JobRecord(**row)


class Trace:
    """An observed task schedule: task attempts plus job completions.

    Attributes:
        capacity: Container pool capacities of the cluster that produced
            the trace (needed to normalize utilization QS metrics).
        horizon: Length of the observation interval ``L``.
    """

    def __init__(
        self,
        task_records: Iterable[TaskRecord],
        job_records: Iterable[JobRecord],
        *,
        capacity: Mapping[str, int] | None = None,
        horizon: float | None = None,
    ):
        self._tasks: list[TaskRecord] = sorted(
            task_records, key=lambda r: (r.start_time, r.task_id, r.attempt)
        )
        self._jobs: list[JobRecord] = sorted(
            job_records, key=lambda r: (r.submit_time, r.job_id)
        )
        self.capacity: dict[str, int] = dict(capacity or {})
        if horizon is None:
            horizon = max(
                (r.finish_time for r in self._tasks),
                default=max((j.finish_time for j in self._jobs), default=0.0),
            )
        self.horizon = float(horizon)

    # -- container protocol -------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Trace(tasks={len(self._tasks)}, jobs={len(self._jobs)}, "
            f"horizon={self.horizon:.0f}s)"
        )

    @property
    def task_records(self) -> Sequence[TaskRecord]:
        return tuple(self._tasks)

    @property
    def job_records(self) -> Sequence[JobRecord]:
        return tuple(self._jobs)

    def __len__(self) -> int:
        return len(self._tasks)

    # -- queries ------------------------------------------------------------

    def tenants(self) -> set[str]:
        """Tenants appearing in the trace."""
        return {j.tenant for j in self._jobs} | {t.tenant for t in self._tasks}

    def pools(self) -> set[str]:
        """Container pools appearing in the trace."""
        return {t.pool for t in self._tasks} or {DEFAULT_POOL}

    def jobs_of(self, tenant: str) -> list[JobRecord]:
        """Job records of ``tenant`` in submit order."""
        return [j for j in self._jobs if j.tenant == tenant]

    def tasks_of(self, tenant: str, pool: str | None = None) -> list[TaskRecord]:
        """Task attempts of ``tenant``, optionally restricted to a pool."""
        return [
            t
            for t in self._tasks
            if t.tenant == tenant and (pool is None or t.pool == pool)
        ]

    def job(self, job_id: str) -> JobRecord:
        """Look up one job record (KeyError if absent)."""
        for j in self._jobs:
            if j.job_id == job_id:
                return j
        raise KeyError(f"no job {job_id!r} in trace")

    def completed_jobs(self, tenant: str, interval: tuple[float, float] | None = None) -> list[JobRecord]:
        """Jobs of ``tenant`` submitted *and* completed within ``interval``.

        This is the job set ``J_i`` over which the QS metrics of
        Section 5.1 are defined.
        """
        lo, hi = interval if interval is not None else (0.0, self.horizon)
        return [
            j
            for j in self._jobs
            if j.tenant == tenant and j.submit_time >= lo and j.finish_time <= hi
        ]

    # -- aggregate measures ---------------------------------------------------

    def container_seconds(
        self,
        tenant: str | None = None,
        pool: str | None = None,
        *,
        include_preempted: bool = True,
    ) -> float:
        """Total container-seconds consumed, optionally excluding killed work.

        ``include_preempted=False`` yields the *effective* usage of
        Figure 1 (region I excluded).
        """
        total = 0.0
        for t in self._tasks:
            if tenant is not None and t.tenant != tenant:
                continue
            if pool is not None and t.pool != pool:
                continue
            if not include_preempted and t.preempted:
                continue
            total += t.work
        return total

    def utilization(
        self,
        tenant: str | None = None,
        pool: str | None = None,
        *,
        include_preempted: bool = True,
    ) -> float:
        """Normalized utilization in [0, 1]: share of pool capacity used.

        Corresponds to the shaded area of Figure 4 divided by the interval
        length and capacity.
        """
        if not self.capacity:
            raise ValueError("trace has no capacity information")
        if self.horizon <= 0:
            return 0.0
        pools = [pool] if pool is not None else sorted(self.capacity)
        cap = sum(self.capacity[p] for p in pools)
        if cap <= 0:
            return 0.0
        used = sum(
            self.container_seconds(tenant, p, include_preempted=include_preempted)
            for p in pools
        )
        return used / (cap * self.horizon)

    def preemption_fraction(self, tenant: str | None = None, pool: str | None = None) -> float:
        """Fraction of task attempts that were preempted (Figure 7)."""
        attempts = [
            t
            for t in self._tasks
            if (tenant is None or t.tenant == tenant)
            and (pool is None or t.pool == pool)
        ]
        if not attempts:
            return 0.0
        return sum(1 for t in attempts if t.preempted) / len(attempts)

    def response_times(self, tenant: str) -> list[float]:
        """Response times of the tenant's completed jobs."""
        return [j.response_time for j in self.jobs_of(tenant)]

    def wait_times(self, tenant: str) -> list[float]:
        """Per-task first-attempt wait times (Figure 5, bottom-right)."""
        first_attempts = [t for t in self.tasks_of(tenant) if t.attempt == 0]
        return [t.wait_time for t in first_attempts]

    # -- slicing --------------------------------------------------------------

    def window(self, start: float, end: float) -> "Trace":
        """Records for jobs submitted in ``[start, end)``, re-anchored to 0.

        Feeds the sliding-window control loop (Section 8.2.3).
        """
        if end < start:
            raise ValueError(f"window end {end} before start {start}")
        keep = {
            j.job_id for j in self._jobs if start <= j.submit_time < end
        }
        tasks = [
            shift_task(t, -start) for t in self._tasks if t.job_id in keep
        ]
        jobs = [shift_job(j, -start) for j in self._jobs if j.job_id in keep]
        return Trace(tasks, jobs, capacity=self.capacity, horizon=end - start)

    # -- replay ---------------------------------------------------------------

    def to_workload(self) -> Workload:
        """Reconstruct a replayable workload from the observed trace.

        Task durations are taken from completed attempts (killed attempts
        do not define a service time for the task; the completed retry
        does).  This is the "replaying historical traces" mode of the
        Workload Generator (Section 7.1).
        """
        tasks_by_job: dict[str, dict[str, TaskRecord]] = defaultdict(dict)
        for t in self._tasks:
            if not t.completed:
                continue
            prev = tasks_by_job[t.job_id].get(t.task_id)
            if prev is None or t.attempt > prev.attempt:
                tasks_by_job[t.job_id][t.task_id] = t

        jobs: list[JobSpec] = []
        for jrec in self._jobs:
            by_stage: dict[str, list[TaskRecord]] = defaultdict(list)
            for t in tasks_by_job.get(jrec.job_id, {}).values():
                by_stage[t.stage].append(t)
            deps = dict(jrec.stage_deps)
            # Deps are filtered to stages actually present: a windowed
            # trace may retain a stage whose upstream slid out of the
            # observation interval (same rule the generator applies when
            # an optional stage samples empty).
            stages = tuple(
                StageSpec(
                    name=stage,
                    tasks=tuple(
                        TaskSpec(
                            task_id=t.task_id,
                            duration=t.service_time,
                            pool=t.pool,
                            containers=t.containers,
                        )
                        for t in sorted(recs, key=lambda r: r.task_id)
                    ),
                    deps=tuple(d for d in deps.get(stage, ()) if d in by_stage),
                )
                for stage, recs in sorted(by_stage.items())
            )
            if not stages:
                continue
            jobs.append(
                JobSpec(
                    job_id=jrec.job_id,
                    tenant=jrec.tenant,
                    submit_time=jrec.submit_time,
                    stages=stages,
                    deadline=jrec.deadline,
                    tags=jrec.tags,
                )
            )
        return Workload(jobs, horizon=self.horizon)

    # -- serialization ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize to JSON-lines: one header, then job and task rows."""
        lines = [
            json.dumps(
                {
                    "kind": "header",
                    "capacity": self.capacity,
                    "horizon": self.horizon,
                }
            )
        ]
        for j in self._jobs:
            row = job_record_to_dict(j)
            row["kind"] = "job"
            lines.append(json.dumps(row))
        for t in self._tasks:
            row = task_record_to_dict(t)
            row["kind"] = "task"
            lines.append(json.dumps(row))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        capacity: dict[str, int] = {}
        horizon: float | None = None
        tasks: list[TaskRecord] = []
        jobs: list[JobRecord] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("kind")
            if kind == "header":
                capacity = {str(k): int(v) for k, v in row["capacity"].items()}
                horizon = float(row["horizon"])
            elif kind == "job":
                jobs.append(job_record_from_dict(row))
            elif kind == "task":
                tasks.append(task_record_from_dict(row))
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        return cls(tasks, jobs, capacity=capacity, horizon=horizon)

    @classmethod
    def merge(cls, traces: Sequence["Trace"]) -> "Trace":
        """Concatenate traces observed over the same interval."""
        if not traces:
            return cls([], [])
        capacity = dict(traces[0].capacity)
        tasks: list[TaskRecord] = []
        jobs: list[JobRecord] = []
        for tr in traces:
            tasks.extend(tr.task_records)
            jobs.extend(tr.job_records)
        horizon = max(tr.horizon for tr in traces)
        return cls(tasks, jobs, capacity=capacity, horizon=horizon)


def shift_task(t: TaskRecord, delta: float) -> TaskRecord:
    """Copy of a task record with every timestamp shifted by ``delta``."""
    return replace(
        t,
        submit_time=t.submit_time + delta,
        start_time=t.start_time + delta,
        finish_time=t.finish_time + delta,
    )


def shift_job(j: JobRecord, delta: float) -> JobRecord:
    """Copy of a job record with every timestamp shifted by ``delta``."""
    return replace(
        j,
        submit_time=j.submit_time + delta,
        finish_time=j.finish_time + delta,
        deadline=None if j.deadline is None else j.deadline + delta,
    )
