"""Core workload data model: tasks, stages, jobs, tenants, workloads.

The paper models parallel-database work as DAGs of jobs, each job a set of
parallel tasks run in containers (Section 3.2).  We represent a job as a
small DAG of *stages*; each stage holds parallel tasks that all demand
containers from one named pool.  A classic MapReduce job is the two-stage
special case (``map`` -> ``reduce``); SQL/Spark query plans map onto deeper
stage DAGs.

All times are simulated seconds from the experiment epoch (t=0); no
wall-clock time is used anywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

#: Default container pool for single-pool clusters.
DEFAULT_POOL = "slots"

#: Conventional pool names for MapReduce-style two-pool clusters.
MAP_POOL = "map"
REDUCE_POOL = "reduce"


@dataclass(frozen=True)
class TaskSpec:
    """One parallel task: a unit of work that occupies containers.

    Attributes:
        task_id: Identifier unique within the job.
        duration: Service time in seconds while running uninterrupted.
        pool: Name of the container pool the task draws from.
        containers: Resource demand ``d`` — number of containers occupied
            while the task runs (Section 3.2 uses an integer container
            count as the uni-dimensional resource vector).
    """

    task_id: str
    duration: float
    pool: str = DEFAULT_POOL
    containers: int = 1

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.task_id}: negative duration {self.duration}")
        if self.containers < 1:
            raise ValueError(
                f"task {self.task_id}: containers must be >= 1, got {self.containers}"
            )


@dataclass(frozen=True)
class StageSpec:
    """A set of parallel tasks with identical dependencies.

    Attributes:
        name: Stage name, unique within the job (e.g. ``"map"``).
        tasks: The parallel tasks of this stage.
        deps: Names of upstream stages this stage depends on.
        ready_fraction: Fraction of each upstream stage's tasks that must
            have completed before this stage becomes runnable.  1.0 is a
            strict barrier; MapReduce "slowstart" uses values below 1.0 so
            that reduce tasks can be launched while maps still run.
    """

    name: str
    tasks: tuple[TaskSpec, ...]
    deps: tuple[str, ...] = ()
    ready_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ready_fraction <= 1.0:
            raise ValueError(
                f"stage {self.name}: ready_fraction must be in (0, 1], "
                f"got {self.ready_fraction}"
            )
        if self.name in self.deps:
            raise ValueError(f"stage {self.name} depends on itself")

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def total_work(self) -> float:
        """Total container-seconds demanded by the stage."""
        return sum(t.duration * t.containers for t in self.tasks)


@dataclass(frozen=True)
class JobSpec:
    """A job: a DAG of stages submitted by a tenant at a point in time.

    Attributes:
        job_id: Globally unique job identifier.
        tenant: Name of the tenant (queue) that owns the job.
        submit_time: Simulated submission instant.
        stages: Stages keyed by dependency structure; must form a DAG.
        deadline: Absolute completion deadline, or ``None`` for
            best-effort jobs.  Recurring ETL/MV jobs carry deadlines
            (Section 2.1); ad-hoc BI/DEV/STR jobs usually do not.
        tags: Free-form labels (e.g. ``("recurring", "etl-hourly")``).
    """

    job_id: str
    tenant: str
    submit_time: float
    stages: tuple[StageSpec, ...]
    deadline: float | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: negative submit_time")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"job {self.job_id}: duplicate stage names {names}")
        known = set(names)
        for stage in self.stages:
            missing = set(stage.deps) - known
            if missing:
                raise ValueError(
                    f"job {self.job_id}: stage {stage.name} depends on "
                    f"unknown stages {sorted(missing)}"
                )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Reject cyclic stage graphs with a topological sweep."""
        deps = {s.name: set(s.deps) for s in self.stages}
        resolved: set[str] = set()
        pending = dict(deps)
        while pending:
            ready = [name for name, d in pending.items() if d <= resolved]
            if not ready:
                raise ValueError(
                    f"job {self.job_id}: stage dependency cycle among "
                    f"{sorted(pending)}"
                )
            for name in ready:
                resolved.add(name)
                del pending[name]

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    @property
    def total_work(self) -> float:
        """Total container-seconds across all stages."""
        return sum(s.total_work for s in self.stages)

    @property
    def pools(self) -> set[str]:
        """Container pools this job draws from."""
        return {t.pool for s in self.stages for t in s.tasks}

    def stage(self, name: str) -> StageSpec:
        """Look up a stage by name (KeyError if absent)."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"job {self.job_id} has no stage {name!r}")

    def tasks(self) -> Iterator[tuple[StageSpec, TaskSpec]]:
        """Iterate ``(stage, task)`` pairs in stage order."""
        for s in self.stages:
            for t in s.tasks:
                yield s, t

    def critical_path(self) -> float:
        """Barrier-semantics critical path: longest duration chain.

        Assumes unlimited containers and *strict* stage barriers, so each
        stage's span is the max task duration in the stage.  It is a
        lower bound on any schedule's makespan when every stage has
        ``ready_fraction == 1.0``; slowstart (< 1.0) can legitimately
        finish a job faster by overlapping stages.  Deadline generation
        uses it as a size proxy either way.
        """
        finish: dict[str, float] = {}
        for s in self._topological_stages():
            start = max((finish[d] for d in s.deps), default=0.0)
            span = max((t.duration for t in s.tasks), default=0.0)
            finish[s.name] = start + span
        return max(finish.values(), default=0.0)

    def _topological_stages(self) -> list[StageSpec]:
        order: list[StageSpec] = []
        resolved: set[str] = set()
        pending = list(self.stages)
        while pending:
            progressed = False
            for s in list(pending):
                if set(s.deps) <= resolved:
                    order.append(s)
                    resolved.add(s.name)
                    pending.remove(s)
                    progressed = True
            if not progressed:  # pragma: no cover - guarded by __post_init__
                raise ValueError("cycle")
        return order

    def with_submit_time(self, t: float) -> "JobSpec":
        """Copy of this job submitted at ``t`` (deadline shifted along)."""
        delta = t - self.submit_time
        deadline = None if self.deadline is None else self.deadline + delta
        return replace(self, submit_time=t, deadline=deadline)


@dataclass(frozen=True)
class Tenant:
    """A tenant: one queue in the RM, owning a workload and SLOs.

    Attributes:
        name: Queue name (unique).
        description: Human description, e.g. Table 1's characteristics.
        deadline_driven: Whether this tenant's jobs carry deadlines.
    """

    name: str
    description: str = ""
    deadline_driven: bool = False


class Workload:
    """An ordered collection of jobs over a time horizon.

    The workload is the ``w`` in the paper's QS functions ``f(x; w)``.
    Jobs are kept sorted by submission time.
    """

    def __init__(self, jobs: Iterable[JobSpec], horizon: float | None = None):
        self._jobs: list[JobSpec] = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        ids = [j.job_id for j in self._jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate job ids in workload: {dupes[:5]}")
        if horizon is None:
            horizon = max((j.submit_time for j in self._jobs), default=0.0)
        self.horizon = float(horizon)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> JobSpec:
        return self._jobs[index]

    def __repr__(self) -> str:
        return (
            f"Workload(jobs={len(self._jobs)}, tenants={sorted(self.tenants())}, "
            f"horizon={self.horizon:.0f}s)"
        )

    # -- queries ------------------------------------------------------------

    @property
    def jobs(self) -> Sequence[JobSpec]:
        return tuple(self._jobs)

    def tenants(self) -> set[str]:
        """Names of tenants with at least one job."""
        return {j.tenant for j in self._jobs}

    def pools(self) -> set[str]:
        """Container pools the workload draws from."""
        pools: set[str] = set()
        for j in self._jobs:
            pools |= j.pools
        return pools or {DEFAULT_POOL}

    @property
    def num_tasks(self) -> int:
        return sum(j.num_tasks for j in self._jobs)

    @property
    def total_work(self) -> float:
        return sum(j.total_work for j in self._jobs)

    def jobs_of(self, tenant: str) -> list[JobSpec]:
        """All jobs belonging to ``tenant`` in submit order."""
        return [j for j in self._jobs if j.tenant == tenant]

    def window(self, start: float, end: float) -> "Workload":
        """Jobs submitted in ``[start, end)``, re-anchored so start -> 0.

        The Tempo control loop feeds a sliding window of the most recent
        traces into each iteration (Section 8.2.3); this is the workload
        analogue of that slicing.
        """
        if end < start:
            raise ValueError(f"window end {end} before start {start}")
        selected = [
            j.with_submit_time(j.submit_time - start)
            for j in self._jobs
            if start <= j.submit_time < end
        ]
        return Workload(selected, horizon=end - start)

    def filter(self, predicate: Callable[[JobSpec], bool]) -> "Workload":
        """Jobs satisfying ``predicate`` (horizon preserved)."""
        return Workload([j for j in self._jobs if predicate(j)], horizon=self.horizon)

    def merged_with(self, other: "Workload") -> "Workload":
        """Union of two workloads (job ids must not collide)."""
        horizon = max(self.horizon, other.horizon)
        return Workload(list(self._jobs) + list(other.jobs), horizon=horizon)


# -- convenience constructors ----------------------------------------------

_job_counter = itertools.count()


def _auto_id(prefix: str) -> str:
    return f"{prefix}-{next(_job_counter):06d}"


def single_stage_job(
    tenant: str,
    submit_time: float,
    durations: Sequence[float],
    *,
    pool: str = DEFAULT_POOL,
    deadline: float | None = None,
    job_id: str | None = None,
    tags: tuple[str, ...] = (),
) -> JobSpec:
    """Build a one-stage job with the given task durations."""
    job_id = job_id or _auto_id(f"{tenant}-job")
    tasks = tuple(
        TaskSpec(task_id=f"{job_id}/t{i}", duration=float(d), pool=pool)
        for i, d in enumerate(durations)
    )
    stage = StageSpec(name="stage0", tasks=tasks)
    return JobSpec(
        job_id=job_id,
        tenant=tenant,
        submit_time=submit_time,
        stages=(stage,),
        deadline=deadline,
        tags=tags,
    )


def mapreduce_job(
    tenant: str,
    submit_time: float,
    map_durations: Sequence[float],
    reduce_durations: Sequence[float],
    *,
    slowstart: float = 1.0,
    deadline: float | None = None,
    job_id: str | None = None,
    tags: tuple[str, ...] = (),
) -> JobSpec:
    """Build a classic two-stage MapReduce job.

    Maps draw from the ``map`` pool and reduces from the ``reduce`` pool,
    mirroring Hadoop-1 slot scheduling which the paper's map/reduce
    preemption statistics (Figures 7-9) imply.
    """
    job_id = job_id or _auto_id(f"{tenant}-mr")
    maps = tuple(
        TaskSpec(task_id=f"{job_id}/m{i}", duration=float(d), pool=MAP_POOL)
        for i, d in enumerate(map_durations)
    )
    stages = [StageSpec(name="map", tasks=maps)]
    if len(reduce_durations) > 0:
        reduces = tuple(
            TaskSpec(task_id=f"{job_id}/r{i}", duration=float(d), pool=REDUCE_POOL)
            for i, d in enumerate(reduce_durations)
        )
        stages.append(
            StageSpec(
                name="reduce",
                tasks=reduces,
                deps=("map",),
                ready_fraction=slowstart,
            )
        )
    return JobSpec(
        job_id=job_id,
        tenant=tenant,
        submit_time=submit_time,
        stages=tuple(stages),
        deadline=deadline,
        tags=tags,
    )
