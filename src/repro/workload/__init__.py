"""Workload substrate: job/task model, traces, and workload generation.

The paper (Section 7.1) makes workload information available to Tempo in
two ways: replaying historical job traces, or sampling from a statistical
model trained on those traces.  This subpackage provides both, plus the
synthetic "Company ABC" six-tenant workload used throughout the evaluation
and a SWIM-style scaler for Facebook/Cloudera-like traces.
"""

from repro.workload.model import (
    JobSpec,
    StageSpec,
    TaskSpec,
    Tenant,
    Workload,
    mapreduce_job,
    single_stage_job,
)
from repro.workload.trace import JobRecord, TaskRecord, Trace
from repro.workload.patterns import (
    DiurnalPattern,
    FlatPattern,
    RatePattern,
    SpikePattern,
    WeeklyPattern,
)
from repro.workload.generator import (
    StageModel,
    StatisticalWorkloadModel,
    TenantWorkloadModel,
    fit_workload_model,
)
from repro.workload.synthetic import (
    BEST_EFFORT_TENANT,
    COMPANY_ABC_TENANTS,
    DEADLINE_TENANT,
    company_abc_cluster,
    company_abc_model,
    company_abc_workload,
    expert_config,
    two_tenant_cluster,
    two_tenant_expert_config,
    two_tenant_model,
    two_tenant_workload,
)
from repro.workload.swim import (
    FacebookLikeModel,
    ClouderaLikeModel,
    scale_trace,
    scale_workload,
    synthesize_swim_workload,
)
from repro.workload.decompose import (
    DecompositionResult,
    decompose_tenant,
    job_features,
    separation_score,
)

__all__ = [
    "TaskSpec",
    "StageSpec",
    "JobSpec",
    "Tenant",
    "Workload",
    "mapreduce_job",
    "single_stage_job",
    "TaskRecord",
    "JobRecord",
    "Trace",
    "RatePattern",
    "FlatPattern",
    "DiurnalPattern",
    "SpikePattern",
    "WeeklyPattern",
    "StageModel",
    "TenantWorkloadModel",
    "StatisticalWorkloadModel",
    "fit_workload_model",
    "COMPANY_ABC_TENANTS",
    "DEADLINE_TENANT",
    "BEST_EFFORT_TENANT",
    "company_abc_cluster",
    "company_abc_model",
    "company_abc_workload",
    "expert_config",
    "two_tenant_cluster",
    "two_tenant_expert_config",
    "two_tenant_model",
    "two_tenant_workload",
    "FacebookLikeModel",
    "ClouderaLikeModel",
    "scale_trace",
    "scale_workload",
    "synthesize_swim_workload",
    "DecompositionResult",
    "decompose_tenant",
    "job_features",
    "separation_score",
]
