"""Statistical workload models: fit from traces, sample synthetic workloads.

This is the paper's Workload Generator (Section 7.1).  It supports both
modes the paper describes: replaying historical traces (see
:meth:`repro.workload.trace.Trace.to_workload`) and sampling from a
statistical model trained on traces.  Following the paper's observation,
task durations are lognormal and job arrivals Poisson; both can be
modulated by temporal patterns and scaled for what-if scenarios such as
"data size grows by 30%".
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.stats.distributions import (
    LognormalModel,
    PoissonProcessModel,
    fit_lognormal,
)
from repro.workload.model import (
    DEFAULT_POOL,
    JobSpec,
    StageSpec,
    TaskSpec,
    Workload,
)
from repro.workload.patterns import FlatPattern, RatePattern
from repro.workload.trace import Trace


@dataclass(frozen=True)
class StageModel:
    """Statistical description of one stage of a tenant's jobs.

    Attributes:
        name: Stage name (e.g. ``"map"``).
        pool: Container pool tasks draw from.
        task_count: Lognormal model of the number of parallel tasks
            (rounded to an integer, at least ``1`` — or ``0`` if
            ``optional`` and the draw rounds to zero, which models jobs
            like map-only MapReduce).
        task_duration: Lognormal model of per-task service time.
        deps: Upstream stage names.
        ready_fraction: Slowstart fraction (see :class:`StageSpec`).
        optional: Whether a zero task-count draw drops the stage.
    """

    name: str
    pool: str
    task_count: LognormalModel
    task_duration: LognormalModel
    deps: tuple[str, ...] = ()
    ready_fraction: float = 1.0
    optional: bool = False

    def sample_tasks(
        self,
        rng: np.random.Generator,
        job_id: str,
        size_factor: float = 1.0,
    ) -> tuple[TaskSpec, ...]:
        """Sample task specs; ``size_factor`` scales the task count."""
        raw = float(self.task_count.scaled(max(size_factor, 1e-9)).sample(rng, 1)[0])
        count = int(round(raw))
        if count <= 0:
            if self.optional:
                return ()
            count = 1
        durations = self.task_duration.sample(rng, count)
        prefix = self.name[0] if self.name else "t"
        return tuple(
            TaskSpec(
                task_id=f"{job_id}/{prefix}{i}",
                duration=float(max(d, 0.01)),
                pool=self.pool,
            )
            for i, d in enumerate(durations)
        )


@dataclass(frozen=True)
class TenantWorkloadModel:
    """Statistical model of one tenant's workload.

    Attributes:
        tenant: Tenant (queue) name.
        arrival: Base Poisson arrival process; instantaneous rate is
            ``arrival.rate * rate_pattern.factor(t)``.
        stages: Stage models forming the job template DAG.
        rate_pattern: Temporal modulation of the arrival rate.
        size_pattern: Temporal modulation of job sizes (task counts),
            modeling e.g. input-size day-of-week effects (Section 2.2).
        deadline_factor: If set, every job gets
            ``deadline = submit + deadline_factor * critical_path`` —
            tight for small factors, loose for large ones.
        deadline_driven: Convenience flag (deadline_factor is not None).
        tags: Tags stamped on generated jobs.
    """

    tenant: str
    arrival: PoissonProcessModel
    stages: tuple[StageModel, ...]
    rate_pattern: RatePattern = field(default_factory=FlatPattern)
    size_pattern: RatePattern = field(default_factory=FlatPattern)
    deadline_factor: float | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"tenant {self.tenant}: needs at least one stage model")
        if self.deadline_factor is not None and self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")

    @property
    def deadline_driven(self) -> bool:
        return self.deadline_factor is not None

    def sample_arrivals(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        """Nonhomogeneous Poisson arrivals via thinning."""
        if horizon <= 0 or self.arrival.rate <= 0:
            return np.empty(0)
        grid = np.linspace(0.0, horizon, 257)
        max_factor = max(self.rate_pattern.factor(t) for t in grid)
        if max_factor <= 0:
            return np.empty(0)
        envelope = PoissonProcessModel(self.arrival.rate * max_factor)
        candidates = envelope.sample_arrivals(rng, horizon)
        if candidates.size == 0:
            return candidates
        accept_p = np.array(
            [self.rate_pattern.factor(t) / max_factor for t in candidates]
        )
        keep = rng.uniform(size=candidates.size) < accept_p
        return candidates[keep]

    def sample_job(
        self, rng: np.random.Generator, job_id: str, submit_time: float
    ) -> JobSpec:
        """Sample one job arriving at ``submit_time``."""
        size_factor = max(self.size_pattern.factor(submit_time), 1e-9)
        stages = []
        for sm in self.stages:
            tasks = sm.sample_tasks(rng, job_id, size_factor)
            if not tasks:
                continue
            deps = tuple(
                d for d in sm.deps if any(s.name == d for s in stages)
            )
            stages.append(
                StageSpec(
                    name=sm.name,
                    tasks=tasks,
                    deps=deps,
                    ready_fraction=sm.ready_fraction,
                )
            )
        job = JobSpec(
            job_id=job_id,
            tenant=self.tenant,
            submit_time=submit_time,
            stages=tuple(stages),
            tags=self.tags,
        )
        if self.deadline_factor is not None:
            deadline = submit_time + self.deadline_factor * max(job.critical_path(), 1.0)
            job = replace(job, deadline=deadline)
        return job

    def generate(
        self, rng: np.random.Generator, horizon: float, id_prefix: str = ""
    ) -> list[JobSpec]:
        """Sample this tenant's jobs over ``[0, horizon)``."""
        arrivals = self.sample_arrivals(rng, horizon)
        return [
            self.sample_job(rng, f"{id_prefix}{self.tenant}-{i:05d}", float(t))
            for i, t in enumerate(arrivals)
        ]

    def scaled(
        self,
        *,
        rate: float = 1.0,
        data_size: float = 1.0,
        duration: float = 1.0,
    ) -> "TenantWorkloadModel":
        """What-if scaling of arrival rate, job size, and task duration."""
        stages = tuple(
            replace(
                sm,
                task_count=sm.task_count.scaled(data_size),
                task_duration=sm.task_duration.scaled(duration),
            )
            for sm in self.stages
        )
        return replace(
            self,
            arrival=PoissonProcessModel(self.arrival.rate * rate),
            stages=stages,
        )


class StatisticalWorkloadModel:
    """A multi-tenant workload model: one :class:`TenantWorkloadModel` each.

    The central synthesis entry point: ``model.generate(seed, horizon)``
    produces a :class:`Workload` whose statistics match the model.
    """

    def __init__(self, tenants: Iterable[TenantWorkloadModel]):
        self._tenants: dict[str, TenantWorkloadModel] = {}
        for tm in tenants:
            if tm.tenant in self._tenants:
                raise ValueError(f"duplicate tenant model {tm.tenant!r}")
            self._tenants[tm.tenant] = tm
        if not self._tenants:
            raise ValueError("workload model needs at least one tenant")

    def __repr__(self) -> str:
        return f"StatisticalWorkloadModel(tenants={sorted(self._tenants)})"

    @property
    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def tenant_model(self, name: str) -> TenantWorkloadModel:
        """The per-tenant model for ``name`` (KeyError if unknown)."""
        return self._tenants[name]

    def generate(
        self,
        seed: int | np.random.Generator,
        horizon: float,
        id_prefix: str = "",
    ) -> Workload:
        """Sample a workload over ``[0, horizon)`` seconds."""
        rng = np.random.default_rng(seed)
        jobs: list[JobSpec] = []
        for name in self.tenants:
            jobs.extend(self._tenants[name].generate(rng, horizon, id_prefix))
        return Workload(jobs, horizon=horizon)

    def replicas(
        self, seed: int, horizon: float, count: int
    ) -> list[Workload]:
        """Independent same-distribution workloads for noise averaging.

        The expectation in (SP1) is estimated by averaging QS values over
        these replicas (Section 6.1).
        """
        return [
            self.generate(seed + 1009 * i, horizon, id_prefix=f"r{i}-")
            for i in range(count)
        ]

    def scaled(self, **kwargs: float) -> "StatisticalWorkloadModel":
        """Scale every tenant (see :meth:`TenantWorkloadModel.scaled`)."""
        return StatisticalWorkloadModel(
            tm.scaled(**kwargs) for tm in self._tenants.values()
        )


def fit_workload_model(
    trace: Trace,
    *,
    horizon: float | None = None,
    deadline_factors: Mapping[str, float] | None = None,
) -> StatisticalWorkloadModel:
    """Train a statistical workload model from an observed trace.

    Per tenant and stage we fit lognormal task-duration and task-count
    models; arrivals get a Poisson MLE rate.  Stage dependency structure
    is taken from the recorded ``stage_deps``.  Deadline factors are
    estimated from observed deadlines when present (median of
    ``(deadline - submit) / response_time`` is a robust stand-in for the
    critical-path multiplier), or can be pinned via ``deadline_factors``.
    """
    horizon = trace.horizon if horizon is None else horizon
    if horizon <= 0:
        raise ValueError("trace horizon must be positive to fit arrival rates")
    deadline_factors = dict(deadline_factors or {})

    models: list[TenantWorkloadModel] = []
    for tenant in sorted(trace.tenants()):
        jobs = trace.jobs_of(tenant)
        if len(jobs) < 2:
            continue
        durations_by_stage: dict[str, list[float]] = defaultdict(list)
        counts_by_stage: dict[str, list[int]] = defaultdict(list)
        per_job_counts: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for t in trace.tasks_of(tenant):
            if not t.completed:
                continue
            durations_by_stage[t.stage].append(t.service_time)
            per_job_counts[t.job_id][t.stage] += 1
        stage_pools: dict[str, str] = {}
        for t in trace.tasks_of(tenant):
            stage_pools.setdefault(t.stage, t.pool)
        for counts in per_job_counts.values():
            for stage, n in counts.items():
                counts_by_stage[stage].append(n)

        deps_union: dict[str, tuple[str, ...]] = {}
        for j in jobs:
            for stage, deps in j.stage_deps:
                deps_union.setdefault(stage, deps)

        stage_models: list[StageModel] = []
        for stage in sorted(durations_by_stage):
            durations = durations_by_stage[stage]
            counts = counts_by_stage[stage]
            if len(durations) < 2 or len(counts) < 1:
                continue
            count_model = (
                fit_lognormal([float(c) for c in counts])
                if len(set(counts)) > 1
                else LognormalModel(mu=math.log(max(counts[0], 1)), sigma=0.0)
            )
            optional = len(counts) < len(jobs)
            stage_models.append(
                StageModel(
                    name=stage,
                    pool=stage_pools.get(stage, DEFAULT_POOL),
                    task_count=count_model,
                    task_duration=fit_lognormal(durations, minimum=0.01),
                    deps=deps_union.get(stage, ()),
                    optional=optional,
                )
            )
        if not stage_models:
            continue

        arrival = PoissonProcessModel.fit([j.submit_time for j in jobs], horizon)

        factor = deadline_factors.get(tenant)
        if factor is None:
            ratios = [
                (j.deadline - j.submit_time) / max(j.response_time, 1e-9)
                for j in jobs
                if j.deadline is not None and j.response_time > 0
            ]
            factor = float(np.median(ratios)) if ratios else None

        models.append(
            TenantWorkloadModel(
                tenant=tenant,
                arrival=arrival,
                stages=tuple(stage_models),
                deadline_factor=factor,
            )
        )
    if not models:
        raise ValueError("trace too sparse to fit any tenant model")
    return StatisticalWorkloadModel(models)
