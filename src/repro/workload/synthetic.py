"""Synthetic workloads standing in for the paper's proprietary traces.

The evaluation uses production traces from "Company ABC" (a 700-node
Hadoop cluster, six tenants — Table 1), Facebook, and Cloudera customers.
Those traces are proprietary, so this module provides statistical models
whose *shapes* match everything the paper reports about them:

* six tenants with Table 1's qualitative characteristics;
* lognormal task durations, Poisson arrivals (Section 7.1);
* long-running reduce tasks concentrated in best-effort workloads
  (Figure 8) driving reduce-side preemption (Figure 7);
* diurnal/weekly patterns — ETL volume drops on weekends (Section 2.4);
* deadline-driven (ETL, MV, APP) vs best-effort (BI, DEV, STR) tenants
  (Section 2.1).

It also provides the *expert RM configuration* baseline: static settings
of the kind DBAs hand-tune (Section 3.3), used as iteration-0 of every
end-to-end experiment.
"""

from __future__ import annotations

import math

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig, TenantConfig
from repro.stats.distributions import LognormalModel, PoissonProcessModel
from repro.workload.generator import (
    StageModel,
    StatisticalWorkloadModel,
    TenantWorkloadModel,
)
from repro.workload.model import MAP_POOL, REDUCE_POOL, Tenant
from repro.workload.patterns import (
    BurstPattern,
    DiurnalPattern,
    FlatPattern,
    WeeklyPattern,
)

#: Table 1 — tenant characteristics at Company ABC.
COMPANY_ABC_TENANTS: tuple[Tenant, ...] = (
    Tenant("BI", "I/O-intensive SQL queries", deadline_driven=False),
    Tenant("DEV", "Mixture of different types of jobs", deadline_driven=False),
    Tenant("APP", "Small, lightweight jobs", deadline_driven=True),
    Tenant("STR", "Hadoop streaming jobs", deadline_driven=False),
    Tenant("MV", "Long-running, CPU-intensive", deadline_driven=True),
    Tenant("ETL", "I/O-intensive, periodic but bursty", deadline_driven=True),
)


def _ln(median: float, sigma: float, minimum: float = 0.0) -> LognormalModel:
    """Lognormal with the given median (mu = log median)."""
    return LognormalModel(mu=math.log(median), sigma=sigma, minimum=minimum)


def _per_hour(n: float) -> PoissonProcessModel:
    return PoissonProcessModel(rate=n / 3600.0)


def company_abc_cluster(name: str = "abc") -> ClusterSpec:
    """Laptop-scale stand-in for ABC's 700-node cluster (48 map + 24 reduce)."""
    return ClusterSpec({MAP_POOL: 48, REDUCE_POOL: 24}, name=name)


def company_abc_model(scale: float = 1.0) -> StatisticalWorkloadModel:
    """Six-tenant workload model matching Table 1 characteristics.

    ``scale`` multiplies every arrival rate; 1.0 loads
    :func:`company_abc_cluster` at roughly 60-70% average utilization
    with diurnal peaks near saturation, mirroring the busy production
    system the paper describes.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def mr_stages(
        map_count: LognormalModel,
        map_dur: LognormalModel,
        red_count: LognormalModel | None,
        red_dur: LognormalModel | None,
        slowstart: float = 0.8,
    ) -> tuple[StageModel, ...]:
        stages = [
            StageModel("map", MAP_POOL, map_count, map_dur),
        ]
        if red_count is not None and red_dur is not None:
            stages.append(
                StageModel(
                    "reduce",
                    REDUCE_POOL,
                    red_count,
                    red_dur,
                    deps=("map",),
                    ready_fraction=slowstart,
                    optional=True,
                )
            )
        return tuple(stages)

    tenants = [
        # BI: I/O-intensive SQL — many medium maps, some reduces; diurnal
        # interactive arrivals; best-effort.
        TenantWorkloadModel(
            tenant="BI",
            arrival=_per_hour(40 * scale),
            stages=mr_stages(
                _ln(16, 0.8, 1), _ln(30, 1.0, 1), _ln(4, 0.6, 1), _ln(60, 0.8, 1)
            ),
            rate_pattern=DiurnalPattern(base=0.3, amplitude=1.4, peak_hour=14.0),
            tags=("sql", "interactive"),
        ),
        # DEV: heterogeneous mixture — high variance everywhere; best-effort.
        TenantWorkloadModel(
            tenant="DEV",
            arrival=_per_hour(30 * scale),
            stages=mr_stages(
                _ln(8, 1.2, 1), _ln(20, 1.4, 1), _ln(2, 0.8, 1), _ln(45, 1.2, 1)
            ),
            rate_pattern=DiurnalPattern(base=0.4, amplitude=1.2, peak_hour=11.0),
            tags=("development",),
        ),
        # APP: small lightweight production jobs at high rate; tight
        # deadlines (about 30% misses under the expert config, per §2.1).
        TenantWorkloadModel(
            tenant="APP",
            arrival=_per_hour(120 * scale),
            stages=mr_stages(
                _ln(2, 0.5, 1), _ln(8, 0.6, 1), _ln(1, 0.5, 1), _ln(10, 0.5, 1)
            ),
            deadline_factor=2.5,
            tags=("production", "high-priority"),
        ),
        # STR: Hadoop streaming — long map-only jobs; best-effort.
        TenantWorkloadModel(
            tenant="STR",
            arrival=_per_hour(6 * scale),
            stages=mr_stages(_ln(6, 0.7, 1), _ln(300, 1.0, 5), None, None),
            tags=("streaming",),
        ),
        # MV: materialized views — long CPU-intensive reduces (2-6 hour
        # completions in production); deadline-driven.
        TenantWorkloadModel(
            tenant="MV",
            arrival=_per_hour(2 * scale),
            stages=mr_stages(
                _ln(8, 0.6, 1), _ln(120, 0.9, 5), _ln(6, 0.5, 1), _ln(600, 1.1, 10)
            ),
            deadline_factor=4.0,
            tags=("recurring", "materialized-view"),
        ),
        # ETL: periodic but bursty ingestion; weekday-heavy (web logs come
        # in much smaller quantities on weekends); deadline-driven.
        TenantWorkloadModel(
            tenant="ETL",
            arrival=_per_hour(12 * scale),
            stages=mr_stages(
                _ln(12, 0.7, 1), _ln(45, 0.9, 1), _ln(4, 0.5, 1), _ln(90, 0.9, 1)
            ),
            rate_pattern=BurstPattern(
                period=3600.0, burst_fraction=0.25, burst_level=3.0, idle_level=0.2
            )
            * WeeklyPattern(),
            size_pattern=WeeklyPattern(
                day_factors=(1.0, 1.1, 1.0, 1.2, 1.1, 0.5, 0.4)
            ),
            deadline_factor=3.0,
            tags=("recurring", "etl"),
        ),
    ]
    return StatisticalWorkloadModel(tenants)


def company_abc_workload(seed: int = 0, horizon: float = 6 * 3600.0, scale: float = 1.0):
    """Convenience: sample an ABC-like workload."""
    return company_abc_model(scale).generate(seed, horizon)


def expert_config(cluster: ClusterSpec | None = None) -> RMConfig:
    """The human-expert baseline RM configuration for the ABC tenants.

    Encodes the practices Section 2/3 attribute to DBAs: production
    tenants (APP, MV, ETL) get higher weights, guaranteed minimums, and
    aggressive preemption; best-effort tenants get modest weights, caps
    to protect the production work, and lazy preemption.  Static — never
    adapts to the patterns of Section 2.4, which is exactly the brittleness
    Tempo removes.
    """
    cluster = cluster or company_abc_cluster()
    m = cluster.capacity(MAP_POOL)
    r = cluster.capacity(REDUCE_POOL)

    def frac(cap: int, f: float) -> int:
        return max(1, int(cap * f))

    return RMConfig(
        {
            "BI": TenantConfig(
                weight=2.0,
                max_share={MAP_POOL: frac(m, 0.5), REDUCE_POOL: frac(r, 0.5)},
                fair_share_preemption_timeout=600.0,
            ),
            "DEV": TenantConfig(
                weight=1.0,
                max_share={MAP_POOL: frac(m, 0.35), REDUCE_POOL: frac(r, 0.35)},
                fair_share_preemption_timeout=900.0,
            ),
            "APP": TenantConfig(
                weight=3.0,
                min_share={MAP_POOL: frac(m, 0.1), REDUCE_POOL: frac(r, 0.1)},
                min_share_preemption_timeout=60.0,
                fair_share_preemption_timeout=300.0,
            ),
            "STR": TenantConfig(
                weight=1.0,
                max_share={MAP_POOL: frac(m, 0.25)},
                fair_share_preemption_timeout=900.0,
            ),
            "MV": TenantConfig(
                weight=3.0,
                min_share={MAP_POOL: frac(m, 0.15), REDUCE_POOL: frac(r, 0.25)},
                min_share_preemption_timeout=120.0,
                fair_share_preemption_timeout=300.0,
            ),
            "ETL": TenantConfig(
                weight=3.0,
                min_share={MAP_POOL: frac(m, 0.2), REDUCE_POOL: frac(r, 0.2)},
                min_share_preemption_timeout=60.0,
                fair_share_preemption_timeout=300.0,
            ),
        }
    )


# -- two-tenant scenario (the EC2 end-to-end experiments) ---------------------

DEADLINE_TENANT = "deadline"
BEST_EFFORT_TENANT = "besteffort"


def two_tenant_cluster(name: str = "ec2") -> ClusterSpec:
    """Stand-in for the 20-node EC2 m3.xlarge cluster (16 map + 12 reduce)."""
    return ClusterSpec({MAP_POOL: 16, REDUCE_POOL: 12}, name=name)


def two_tenant_model(scale: float = 1.0) -> StatisticalWorkloadModel:
    """Deadline-driven + best-effort tenants (Sections 8.2.1-8.2.3).

    Matching Figure 8: the best-effort tenant's reduces are mostly
    long-running, so under contention it is the main preemption victim
    on the reduce side (Figure 7).  Load is calibrated so the reduce pool
    of :func:`two_tenant_cluster` runs near 90% — the contention regime
    where SLO trade-offs are real.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    deadline = TenantWorkloadModel(
        tenant=DEADLINE_TENANT,
        arrival=_per_hour(30 * scale),
        stages=(
            StageModel("map", MAP_POOL, _ln(8, 0.5, 1), _ln(25, 0.6, 1)),
            StageModel(
                "reduce",
                REDUCE_POOL,
                _ln(3, 0.3, 1),
                _ln(50, 0.6, 1),
                deps=("map",),
                ready_fraction=0.8,
                optional=True,
            ),
        ),
        deadline_factor=3.0,
        tags=("recurring", "production"),
    )
    best_effort = TenantWorkloadModel(
        tenant=BEST_EFFORT_TENANT,
        arrival=_per_hour(50 * scale),
        stages=(
            StageModel("map", MAP_POOL, _ln(10, 0.8, 1), _ln(20, 1.0, 1)),
            StageModel(
                "reduce",
                REDUCE_POOL,
                _ln(3, 0.5, 1),
                _ln(120, 1.0, 2),
                deps=("map",),
                ready_fraction=0.8,
                optional=True,
            ),
        ),
        tags=("adhoc",),
    )
    return StatisticalWorkloadModel([deadline, best_effort])


def two_tenant_workload(seed: int = 0, horizon: float = 2 * 3600.0, scale: float = 1.0):
    """Convenience: sample a two-tenant workload (default 2h, as in Fig 10)."""
    return two_tenant_model(scale).generate(seed, horizon)


def two_tenant_expert_config(cluster: ClusterSpec | None = None) -> RMConfig:
    """Expert baseline for the two-tenant scenario.

    Mirrors production practice: the deadline tenant is favored with a
    2x weight, guaranteed minimums and fast preemption; the best-effort
    tenant is capped and preempts lazily.
    """
    cluster = cluster or two_tenant_cluster()
    m = cluster.capacity(MAP_POOL)
    r = cluster.capacity(REDUCE_POOL)
    return RMConfig(
        {
            DEADLINE_TENANT: TenantConfig(
                weight=2.0,
                min_share={MAP_POOL: max(1, m // 4), REDUCE_POOL: max(1, r // 4)},
                min_share_preemption_timeout=60.0,
                fair_share_preemption_timeout=300.0,
            ),
            BEST_EFFORT_TENANT: TenantConfig(
                weight=1.0,
                max_share={
                    MAP_POOL: max(1, int(m * 0.75)),
                    REDUCE_POOL: max(1, int(r * 0.75)),
                },
                fair_share_preemption_timeout=600.0,
            ),
        }
    )
