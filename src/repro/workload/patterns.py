"""Temporal workload patterns: diurnal and day-of-week modulation.

Section 2.2/2.4 of the paper observes that input sizes and arrival rates
show strong temporal patterns — ETL input varies across days within a week
but is stable across weeks, and Web-activity volume drops on weekends.
These classes model a non-negative multiplicative modulation ``m(t)``
applied to arrival rates and job sizes as a function of simulated time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class RatePattern:
    """Base class: a multiplicative modulation of rate/size over time."""

    def factor(self, t: float) -> float:
        """Modulation factor at simulated time ``t`` (non-negative)."""
        raise NotImplementedError

    def mean_factor(self, horizon: float, samples: int = 512) -> float:
        """Approximate average factor over ``[0, horizon]``."""
        if horizon <= 0:
            return self.factor(0.0)
        step = horizon / samples
        return sum(self.factor(i * step) for i in range(samples)) / samples

    def __mul__(self, other: "RatePattern") -> "RatePattern":
        return _ProductPattern(self, other)


@dataclass(frozen=True)
class FlatPattern(RatePattern):
    """Constant modulation (no temporal pattern)."""

    level: float = 1.0

    def factor(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class DiurnalPattern(RatePattern):
    """Smooth day/night cycle.

    ``factor(t) = base + amplitude * (1 + cos(2*pi*(t - peak)/day)) / 2``
    peaks at ``peak_hour`` and bottoms out half a day away.
    """

    base: float = 0.25
    amplitude: float = 1.5
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.amplitude < 0:
            raise ValueError("diurnal base and amplitude must be non-negative")

    def factor(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.peak_hour * SECONDS_PER_HOUR) / SECONDS_PER_DAY
        return self.base + self.amplitude * (1.0 + math.cos(phase)) / 2.0


@dataclass(frozen=True)
class WeeklyPattern(RatePattern):
    """Piecewise-constant day-of-week factors, Monday-first.

    The default models the paper's observation that ETL volume is much
    smaller on weekends (Section 2.4).
    """

    day_factors: tuple[float, ...] = (1.0, 1.0, 1.0, 1.0, 1.0, 0.35, 0.35)

    def __post_init__(self) -> None:
        if len(self.day_factors) != 7:
            raise ValueError("day_factors must have exactly 7 entries")
        if any(f < 0 for f in self.day_factors):
            raise ValueError("day factors must be non-negative")

    def factor(self, t: float) -> float:
        day = int(t // SECONDS_PER_DAY) % 7
        return self.day_factors[day]


@dataclass(frozen=True)
class BurstPattern(RatePattern):
    """Periodic bursts: factor ``burst_level`` during the first
    ``burst_fraction`` of every ``period`` seconds, ``idle_level``
    otherwise.  Models the "periodic but bursty" ETL tenant of Table 1.

    ``phase`` shifts where in the period the burst sits (as a fraction
    of the period): ``phase=0.75, burst_fraction=0.25`` bursts through
    the *last* quarter of every period — the shape of an SLO-gaming
    tenant timing its load against a known retune cadence.
    """

    period: float = SECONDS_PER_HOUR
    burst_fraction: float = 0.2
    burst_level: float = 4.0
    idle_level: float = 0.1
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be in (0, 1]")
        if not 0.0 <= self.phase < 1.0:
            raise ValueError("phase must be in [0, 1)")

    def factor(self, t: float) -> float:
        where = ((t % self.period) / self.period - self.phase) % 1.0
        return self.burst_level if where < self.burst_fraction else self.idle_level


@dataclass(frozen=True)
class SpikePattern(RatePattern):
    """One-shot level shift: ``level`` inside ``[start, start + duration)``,
    ``base`` everywhere else.

    Two scenario families of the serving layer are built on it: flash
    crowds (``base=1``, ``level >> 1`` — a sudden surge of arrivals) and
    bounded tenant lifetimes for churn scenarios (``base=0``, ``level=1``
    — the tenant only submits while "joined").
    """

    start: float
    duration: float
    level: float = 5.0
    base: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.level < 0 or self.base < 0:
            raise ValueError("spike level and base must be non-negative")

    def factor(self, t: float) -> float:
        if self.start <= t < self.start + self.duration:
            return self.level
        return self.base


@dataclass(frozen=True)
class _ProductPattern(RatePattern):
    left: RatePattern
    right: RatePattern

    def factor(self, t: float) -> float:
        return self.left.factor(t) * self.right.factor(t)
