"""SWIM-style workload scaling and Facebook/Cloudera-like synthesis.

The paper's end-to-end experiments replay production traces from
Facebook and Cloudera customers on a small EC2 cluster using SWIM
(Chen, Alspaugh, Katz — "Interactive analytical processing in big data
systems", PVLDB 2012).  SWIM's essence is: take a trace from a large
cluster, scale it down (shrink job input sizes, keep the arrival
process), and replay it on a small cluster.

We reproduce both halves of that machinery:

* :func:`scale_workload` / :func:`scale_trace` — the scale-down replayer;
* :class:`FacebookLikeModel` / :class:`ClouderaLikeModel` — synthetic
  sources with the cross-industry shape reported by the SWIM paper:
  heavy-tailed job sizes (the vast majority of jobs are small, a thin
  tail is enormous) and bursty arrivals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.stats.distributions import LognormalModel, PoissonProcessModel
from repro.workload.generator import (
    StageModel,
    StatisticalWorkloadModel,
    TenantWorkloadModel,
)
from repro.workload.model import (
    MAP_POOL,
    REDUCE_POOL,
    JobSpec,
    StageSpec,
    TaskSpec,
    Workload,
)
from repro.workload.patterns import DiurnalPattern, FlatPattern
from repro.workload.trace import Trace


def scale_workload(
    workload: Workload,
    *,
    time_scale: float = 1.0,
    size_scale: float = 1.0,
    duration_scale: float = 1.0,
) -> Workload:
    """SWIM-style scale-down of a workload.

    Args:
        workload: Source workload (typically from a big cluster's trace).
        time_scale: Multiplier on submission times (< 1 compresses the
            replay into a shorter wall-clock window).
        size_scale: Multiplier on per-stage task counts (< 1 shrinks jobs
            for a smaller cluster); counts round but never drop below 1.
        duration_scale: Multiplier on task durations.

    Deadlines scale with time so that a job feasible in the original
    trace remains comparably feasible in the scaled replay.
    """
    for name, v in (
        ("time_scale", time_scale),
        ("size_scale", size_scale),
        ("duration_scale", duration_scale),
    ):
        if v <= 0:
            raise ValueError(f"{name} must be positive, got {v}")

    jobs: list[JobSpec] = []
    for job in workload:
        submit = job.submit_time * time_scale
        stages = []
        for stage in job.stages:
            count = max(1, round(len(stage.tasks) * size_scale))
            # Keep the first `count` tasks (SWIM samples representative
            # tasks; durations within a stage are exchangeable).
            kept = stage.tasks[:count]
            tasks = tuple(
                TaskSpec(
                    task_id=t.task_id,
                    duration=t.duration * duration_scale,
                    pool=t.pool,
                    containers=t.containers,
                )
                for t in kept
            )
            stages.append(
                StageSpec(
                    name=stage.name,
                    tasks=tasks,
                    deps=stage.deps,
                    ready_fraction=stage.ready_fraction,
                )
            )
        deadline = None
        if job.deadline is not None:
            slack = (job.deadline - job.submit_time) * time_scale * duration_scale
            deadline = submit + slack
        jobs.append(
            JobSpec(
                job_id=job.job_id,
                tenant=job.tenant,
                submit_time=submit,
                stages=tuple(stages),
                deadline=deadline,
                tags=job.tags,
            )
        )
    return Workload(jobs, horizon=workload.horizon * time_scale)


def scale_trace(trace: Trace, **kwargs: float) -> Workload:
    """Scale an observed trace into a replayable workload (SWIM replay)."""
    return scale_workload(trace.to_workload(), **kwargs)


def _heavy_tail_count(median: float, sigma: float) -> LognormalModel:
    """Heavy-tailed task-count model: lognormal with a large sigma.

    With sigma around 1.5-2.0 the mass sits at a handful of tasks while
    the upper percentiles reach thousands — the SWIM paper's signature
    shape.
    """
    return LognormalModel(mu=math.log(median), sigma=sigma, minimum=1.0)


@dataclass(frozen=True)
class FacebookLikeModel:
    """Facebook-like tenant: extremely heavy-tailed, interactive, bursty.

    Most jobs are tiny ad-hoc queries; the tail is huge batch jobs.
    Best-effort (no deadlines).
    """

    tenant: str = "fb"
    jobs_per_hour: float = 90.0

    def build(self) -> TenantWorkloadModel:
        """Materialize the tenant workload model."""
        return TenantWorkloadModel(
            tenant=self.tenant,
            arrival=PoissonProcessModel(self.jobs_per_hour / 3600.0),
            stages=(
                StageModel(
                    "map", MAP_POOL, _heavy_tail_count(3, 1.6),
                    LognormalModel(mu=math.log(15), sigma=1.1, minimum=1.0),
                ),
                StageModel(
                    "reduce",
                    REDUCE_POOL,
                    _heavy_tail_count(1, 1.2),
                    LognormalModel(mu=math.log(80), sigma=1.2, minimum=2.0),
                    deps=("map",),
                    ready_fraction=0.8,
                    optional=True,
                ),
            ),
            rate_pattern=DiurnalPattern(base=0.35, amplitude=1.3, peak_hour=13.0),
            tags=("swim", "facebook-like"),
        )


@dataclass(frozen=True)
class ClouderaLikeModel:
    """Cloudera-customer-like tenant: recurring pipelines with deadlines.

    Moderate-size periodic jobs — the enterprise-customer shape in the
    SWIM cross-industry study.  Deadline-driven.
    """

    tenant: str = "cdh"
    jobs_per_hour: float = 24.0
    deadline_factor: float = 3.0

    def build(self) -> TenantWorkloadModel:
        """Materialize the tenant workload model."""
        return TenantWorkloadModel(
            tenant=self.tenant,
            arrival=PoissonProcessModel(self.jobs_per_hour / 3600.0),
            stages=(
                StageModel(
                    "map", MAP_POOL, _heavy_tail_count(8, 0.7),
                    LognormalModel(mu=math.log(30), sigma=0.7, minimum=1.0),
                ),
                StageModel(
                    "reduce",
                    REDUCE_POOL,
                    _heavy_tail_count(3, 0.5),
                    LognormalModel(mu=math.log(60), sigma=0.7, minimum=2.0),
                    deps=("map",),
                    ready_fraction=0.8,
                    optional=True,
                ),
            ),
            rate_pattern=FlatPattern(1.0),
            deadline_factor=self.deadline_factor,
            tags=("swim", "cloudera-like"),
        )


def synthesize_swim_workload(
    seed: int = 0,
    horizon: float = 2 * 3600.0,
    *,
    facebook_tenant: str = "besteffort",
    cloudera_tenant: str = "deadline",
    scale: float = 1.0,
) -> Workload:
    """The two-hour EC2 experiment mix (Figure 10, right panel).

    A Facebook-like best-effort tenant plus a Cloudera-like
    deadline-driven tenant, as replayed on the paper's EC2 cluster.
    """
    model = StatisticalWorkloadModel(
        [
            FacebookLikeModel(
                tenant=facebook_tenant, jobs_per_hour=90.0 * scale
            ).build(),
            ClouderaLikeModel(
                tenant=cloudera_tenant, jobs_per_hour=24.0 * scale
            ).build(),
        ]
    )
    return model.generate(seed, horizon)
