"""Workload decomposition for mixed statistical characteristics (§10).

Tempo's optimization "exploits the observation that workloads from the
same tenant follow relatively fixed statistical characteristics"; for
tenants that mix disparate job populations the paper proposes to
"decompose the workloads and then distribute the workloads to separate
tenants".  This module implements that decomposition: it clusters a
tenant's jobs by size/duration signature (k-means in log space on a
small feature vector) and rewrites the workload with per-cluster
sub-tenant names (``tenant/c0``, ``tenant/c1``, ...), ready to pair
with :mod:`repro.rm.hierarchy` sub-queues and per-cluster SLOs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.workload.model import JobSpec, Workload


@dataclass(frozen=True)
class DecompositionResult:
    """Outcome of decomposing one tenant's jobs.

    Attributes:
        workload: The rewritten workload (sub-tenant names installed).
        assignments: job_id -> sub-tenant name.
        centroids: Cluster centers in feature space (log task-count,
            log mean-duration, log total-work).
        sub_tenants: The sub-tenant names, ``<tenant>/c<i>``.
    """

    workload: Workload
    assignments: dict[str, str]
    centroids: np.ndarray
    sub_tenants: tuple[str, ...]


def job_features(job: JobSpec) -> np.ndarray:
    """Log-scale signature of a job: (task count, mean duration, work)."""
    durations = [t.duration for _, t in job.tasks()]
    count = max(len(durations), 1)
    mean_duration = max(float(np.mean(durations)) if durations else 0.0, 1e-3)
    work = max(job.total_work, 1e-3)
    return np.array([math.log(count), math.log(mean_duration), math.log(work)])


def _kmeans(features: np.ndarray, k: int, seed: int, iterations: int = 50):
    """Tiny deterministic k-means (k is 2-4 in practice)."""
    rng = np.random.default_rng(seed)
    n = features.shape[0]
    # k-means++ style seeding: spread initial centroids.
    centroids = [features[rng.integers(n)]]
    while len(centroids) < k:
        d2 = np.min(
            [np.sum((features - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = float(np.sum(d2))
        if total <= 0:
            centroids.append(features[rng.integers(n)])
            continue
        centroids.append(features[rng.choice(n, p=d2 / total)])
    centers = np.vstack(centroids)
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        dists = np.linalg.norm(features[:, None, :] - centers[None, :, :], axis=2)
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = features[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    # Stable ordering: sort clusters by total-work centroid (ascending),
    # so c0 is always the "smallest jobs" cluster.
    order = np.argsort(centers[:, 2])
    remap = {int(old): int(new) for new, old in enumerate(order)}
    labels = np.array([remap[int(l)] for l in labels])
    centers = centers[order]
    return labels, centers


def decompose_tenant(
    workload: Workload,
    tenant: str,
    k: int = 2,
    seed: int = 0,
) -> DecompositionResult:
    """Split ``tenant``'s jobs into ``k`` statistical sub-tenants.

    Jobs of other tenants pass through unchanged.  Raises if the tenant
    has fewer jobs than clusters.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    target_jobs = workload.jobs_of(tenant)
    if len(target_jobs) < k:
        raise ValueError(
            f"tenant {tenant!r} has {len(target_jobs)} jobs, need >= {k}"
        )
    features = np.vstack([job_features(j) for j in target_jobs])
    labels, centers = _kmeans(features, k, seed)

    sub_names = tuple(f"{tenant}/c{i}" for i in range(k))
    assignments: dict[str, str] = {}
    rewritten: list[JobSpec] = []
    by_id = {j.job_id: l for j, l in zip(target_jobs, labels)}
    for job in workload:
        if job.tenant != tenant:
            rewritten.append(job)
            continue
        sub = sub_names[by_id[job.job_id]]
        assignments[job.job_id] = sub
        rewritten.append(replace(job, tenant=sub))
    return DecompositionResult(
        workload=Workload(rewritten, horizon=workload.horizon),
        assignments=assignments,
        centroids=centers,
        sub_tenants=sub_names,
    )


def separation_score(
    workload: Workload, sub_tenants: Sequence[str]
) -> float:
    """How well the decomposition separated the statistics.

    Ratio of between-cluster to within-cluster variance of the job
    feature vectors (higher = cleaner separation; ~0 = useless split).
    """
    groups = []
    for name in sub_tenants:
        jobs = workload.jobs_of(name)
        if jobs:
            groups.append(np.vstack([job_features(j) for j in jobs]))
    if len(groups) < 2:
        return 0.0
    overall = np.vstack(groups).mean(axis=0)
    between = sum(
        len(g) * float(np.sum((g.mean(axis=0) - overall) ** 2)) for g in groups
    )
    within = sum(float(np.sum((g - g.mean(axis=0)) ** 2)) for g in groups)
    if within <= 0:
        return math.inf if between > 0 else 0.0
    return between / within
