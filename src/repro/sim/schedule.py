"""The task schedule artifact produced by simulators.

A :class:`TaskSchedule` is a :class:`~repro.workload.trace.Trace` — the
(start, end, resource) record per task that Section 3.2 defines — with
provenance attached: which cluster and RM configuration produced it.
QS metrics consume it directly.
"""

from __future__ import annotations

from typing import Iterable

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig
from repro.workload.trace import JobRecord, TaskRecord, Trace


class TaskSchedule(Trace):
    """A trace plus the cluster/config provenance that produced it."""

    def __init__(
        self,
        task_records: Iterable[TaskRecord],
        job_records: Iterable[JobRecord],
        *,
        cluster: ClusterSpec,
        config: RMConfig | None = None,
        horizon: float | None = None,
    ):
        super().__init__(
            task_records,
            job_records,
            capacity=cluster.as_dict(),
            horizon=horizon,
        )
        self.cluster = cluster
        self.config = config

    def __repr__(self) -> str:
        return (
            f"TaskSchedule(tasks={len(self.task_records)}, "
            f"jobs={len(self.job_records)}, cluster={self.cluster.name}, "
            f"horizon={self.horizon:.0f}s)"
        )
