"""Schedule simulators: the time-warp predictor and the noisy ground truth.

Two engines produce the same artifact (a :class:`TaskSchedule`):

* :class:`~repro.sim.predictor.SchedulePredictor` — Tempo's fast,
  deterministic *time-warp* simulator (Section 7.2): it touches only
  task submission, tentative finish, and possible preemption instants,
  never running tasks or synchronizing an RM.
* :class:`~repro.sim.simulator.ClusterSimulator` — a heartbeat-granularity
  simulator with injected noise (task failures, user kills, node
  restarts, stragglers) standing in for the production cluster that the
  paper validates against (Section 8.1).  Its stepwise
  :class:`~repro.sim.simulator.SimulationSession` mode advances the
  same run in caller-controlled slices with mid-run configuration
  swaps and live capacity loss — the continuous-replay substrate of
  the serving layer.
"""

from repro.sim.events import EventQueue
from repro.sim.schedule import TaskSchedule
from repro.sim.noise import NoiseModel
from repro.sim.predictor import SchedulePredictor
from repro.sim.simulator import ClusterSimulator, SimulationSession

__all__ = [
    "EventQueue",
    "TaskSchedule",
    "NoiseModel",
    "SchedulePredictor",
    "ClusterSimulator",
    "SimulationSession",
]
