"""Shared runtime bookkeeping for both simulators.

Tracks per-job stage progress (including MapReduce slowstart via
``ready_fraction``) and the per-pool pending/running queues that the
allocation policies act on.  Kept independent of *how* time advances so
the time-warp predictor and the heartbeat simulator share semantics.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

from repro.workload.model import JobSpec, StageSpec, TaskSpec


class JobRun:
    """Runtime state of one job: stage progress and task accounting."""

    __slots__ = (
        "spec",
        "stage_total",
        "stage_completed",
        "released",
        "tasks_left",
    )

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.stage_total = {s.name: len(s.tasks) for s in spec.stages}
        self.stage_completed = {s.name: 0 for s in spec.stages}
        self.released: set[str] = set()
        self.tasks_left = spec.num_tasks

    def _stage_ready(self, stage: StageSpec) -> bool:
        """All dependencies have met the stage's slowstart threshold."""
        for dep in stage.deps:
            need = math.ceil(stage.ready_fraction * self.stage_total[dep])
            if self.stage_completed[dep] < need:
                return False
        return True

    def release_ready_stages(self) -> list[StageSpec]:
        """Stages that just became runnable and were not yet released."""
        ready: list[StageSpec] = []
        for stage in self.spec.stages:
            if stage.name in self.released:
                continue
            if self._stage_ready(stage):
                self.released.add(stage.name)
                ready.append(stage)
        return ready

    def complete_task(self, stage_name: str) -> list[StageSpec]:
        """Mark one task of ``stage_name`` complete; return newly ready stages."""
        self.stage_completed[stage_name] += 1
        self.tasks_left -= 1
        return self.release_ready_stages()

    @property
    def done(self) -> bool:
        return self.tasks_left == 0


class PendingTask:
    """A runnable task attempt waiting for containers."""

    __slots__ = ("job", "task", "stage", "ready_time", "attempt")

    def __init__(
        self,
        job: JobRun,
        task: TaskSpec,
        stage: str,
        ready_time: float,
        attempt: int = 0,
    ):
        self.job = job
        self.task = task
        self.stage = stage
        self.ready_time = ready_time
        self.attempt = attempt


class RunningTask:
    """A task attempt occupying containers.

    ``remaining`` is used by the heartbeat simulator (work left in
    seconds); the time-warp predictor relies on the scheduled finish
    event instead and leaves it untouched.  The ``tenant``/``start_time``
    /``containers`` attribute names satisfy the victim-selection
    protocol in :mod:`repro.rm.preemption`.
    """

    __slots__ = (
        "job",
        "task",
        "stage",
        "tenant",
        "start_time",
        "attempt",
        "cancelled",
        "remaining",
        "speed",
    )

    def __init__(
        self,
        job: JobRun,
        task: TaskSpec,
        stage: str,
        start_time: float,
        attempt: int,
    ):
        self.job = job
        self.task = task
        self.stage = stage
        self.tenant = job.spec.tenant
        self.start_time = start_time
        self.attempt = attempt
        self.cancelled = False
        self.remaining = task.duration
        self.speed = 1.0

    @property
    def containers(self) -> int:
        return self.task.containers


class PoolState:
    """Pending/running queues for one container pool.

    Container counts per tenant are maintained incrementally so that the
    per-event scheduling pass is O(tenants), not O(queued tasks).  All
    queue mutations must go through the methods below.
    """

    __slots__ = (
        "pool",
        "capacity",
        "pending",
        "running",
        "_pending_containers",
        "_running_containers",
        "_total_running",
    )

    def __init__(self, pool: str, capacity: int):
        self.pool = pool
        self.capacity = capacity
        self.pending: dict[str, deque[PendingTask]] = {}
        self.running: dict[str, list[RunningTask]] = {}
        self._pending_containers: dict[str, int] = {}
        self._running_containers: dict[str, int] = {}
        self._total_running = 0

    def add_pending(self, item: PendingTask, *, front: bool = False) -> None:
        """Queue a runnable task (restarts go to the queue head)."""
        tenant = item.job.spec.tenant
        queue = self.pending.setdefault(tenant, deque())
        if front:
            queue.appendleft(item)
        else:
            queue.append(item)
        self._pending_containers[tenant] = (
            self._pending_containers.get(tenant, 0) + item.task.containers
        )

    def peek_pending(self, tenant: str) -> PendingTask | None:
        """Head of the tenant's queue without removing it."""
        queue = self.pending.get(tenant)
        return queue[0] if queue else None

    def pop_pending(self, tenant: str) -> PendingTask:
        """Remove and return the tenant's queue head."""
        item = self.pending[tenant].popleft()
        self._pending_containers[tenant] -= item.task.containers
        return item

    def purge_pending(self, job_id: str) -> int:
        """Drop all pending tasks of one job; returns how many."""
        dropped = 0
        for tenant, queue in self.pending.items():
            kept = [p for p in queue if p.job.spec.job_id != job_id]
            removed = [p for p in queue if p.job.spec.job_id == job_id]
            if removed:
                queue.clear()
                queue.extend(kept)
                self._pending_containers[tenant] -= sum(
                    p.task.containers for p in removed
                )
                dropped += len(removed)
        return dropped

    def tenants(self) -> set[str]:
        """Tenants with any pending or running work in this pool."""
        active = {t for t, q in self.pending.items() if q}
        active |= {t for t, r in self.running.items() if r}
        return active

    def runnable_containers(self, tenant: str) -> int:
        """Containers demanded by the tenant's pending tasks (O(1))."""
        return self._pending_containers.get(tenant, 0)

    def running_containers(self, tenant: str) -> int:
        """Containers the tenant currently occupies (O(1))."""
        return self._running_containers.get(tenant, 0)

    def total_running_containers(self) -> int:
        """Total occupied containers across tenants (O(1))."""
        return self._total_running

    def oldest_pending_submit(self, tenant: str) -> float:
        """Submit time of the queue-head job.

        Queues are FIFO in readiness order (restarted tasks re-enter at
        the front with their original, older job), so the head is the
        oldest job for FIFO-ordering purposes.
        """
        head = self.peek_pending(tenant)
        return head.job.spec.submit_time if head is not None else math.inf

    def all_running(self) -> list[RunningTask]:
        """Every running task in the pool (victim-selection input)."""
        tasks: list[RunningTask] = []
        for runs in self.running.values():
            tasks.extend(runs)
        return tasks

    def start(self, item: PendingTask, now: float) -> RunningTask:
        """Launch a pending task; returns its running record."""
        run = RunningTask(item.job, item.task, item.stage, now, item.attempt)
        self.running.setdefault(run.tenant, []).append(run)
        self._running_containers[run.tenant] = (
            self._running_containers.get(run.tenant, 0) + run.containers
        )
        self._total_running += run.containers
        return run

    def remove_running(self, run: RunningTask) -> None:
        """Take a task out of the running set (completion or kill)."""
        runs = self.running.get(run.tenant, [])
        try:
            runs.remove(run)
        except ValueError:  # pragma: no cover - internal invariant
            raise RuntimeError(
                f"task {run.task.task_id} not in running set of {run.tenant}"
            ) from None
        self._running_containers[run.tenant] -= run.containers
        self._total_running -= run.containers


def validate_workload_fits(workload_tasks: Iterable[TaskSpec], capacity: dict[str, int]) -> None:
    """Reject tasks that can never be placed (demand exceeds pool size)."""
    for task in workload_tasks:
        cap = capacity.get(task.pool)
        if cap is None:
            raise ValueError(
                f"task {task.task_id} demands pool {task.pool!r} which the "
                f"cluster does not have (pools: {sorted(capacity)})"
            )
        if task.containers > cap:
            raise ValueError(
                f"task {task.task_id} demands {task.containers} containers "
                f"but pool {task.pool!r} only has {cap}"
            )
