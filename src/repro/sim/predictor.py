"""The time-warp Schedule Predictor (Section 7.2).

Tempo needs to evaluate many candidate RM configurations per control
loop, so schedule prediction must be very fast.  Following the paper,
the predictor "computes the cluster resource usage at only the
submission time, tentative finish time, and possible preemption time of
each task" — a discrete-event (time-warp) simulation that never runs
tasks or synchronizes an RM.  It is deterministic: a fixed workload,
cluster, policy, and configuration always yield the identical schedule.

The per-instant semantics are those of a YARN/Mesos-style fair
scheduler (Section 3.2):

* target allocations per pool come from the pluggable
  :class:`~repro.rm.policies.SchedulingPolicy` (weighted max-min fair
  with min/max limits by default);
* tenants below their entitlement start a starvation clock; after the
  configured two-level timeout, the most recently launched tasks of
  over-share tenants are killed (losing their work) and the freed
  containers are handed to the starving tenant;
* killed tasks restart from scratch, re-entering the queue head.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig
from repro.rm.policies import FairSharePolicy, SchedulingPolicy, TenantDemand
from repro.rm.preemption import StarvationClock, select_victims
from repro.sim.events import EventQueue
from repro.sim.runtime import (
    JobRun,
    PendingTask,
    PoolState,
    RunningTask,
    validate_workload_fits,
)
from repro.sim.schedule import TaskSchedule
from repro.workload.model import JobSpec, Workload
from repro.workload.trace import JobRecord, TaskRecord

#: Event kinds used by the predictor.
_ARRIVAL = "arrival"
_FINISH = "finish"
_PREEMPT = "preempt"


class SchedulePredictor:
    """Fast deterministic task-schedule prediction for a workload.

    Args:
        cluster: The cluster whose RM is being simulated.
        policy: Instantaneous allocation policy (fair share by default,
            matching the RMs the paper tunes).

    Usage::

        predictor = SchedulePredictor(cluster)
        schedule = predictor.predict(workload, rm_config)
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: SchedulingPolicy | None = None,
    ):
        self.cluster = cluster
        self.policy = policy or FairSharePolicy()

    def predict(self, workload: Workload, config: RMConfig) -> TaskSchedule:
        """Simulate ``workload`` under ``config`` and return the schedule."""
        run = _PredictorRun(self.cluster, self.policy, workload, config)
        return run.execute()


class _PredictorRun:
    """One prediction: all mutable simulation state lives here."""

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: SchedulingPolicy,
        workload: Workload,
        config: RMConfig,
    ):
        self.cluster = cluster
        self.policy = policy
        self.workload = workload
        self.config = config
        validate_workload_fits(
            (t for job in workload for _, t in job.tasks()), cluster.as_dict()
        )
        self.pools: dict[str, PoolState] = {
            pool: PoolState(pool, cap) for pool, cap in cluster.items()
        }
        self.clocks: dict[tuple[str, str], StarvationClock] = {}
        self.events = EventQueue()
        self.task_records: list[TaskRecord] = []
        self.job_records: list[JobRecord] = []
        self._scheduled_preempt = math.inf
        self._task_ready_time: dict[tuple[str, str], float] = {}

    # -- main loop -----------------------------------------------------------

    def execute(self) -> TaskSchedule:
        for job in self.workload:
            self.events.push(job.submit_time, _ARRIVAL, job)
        now = 0.0
        while self.events:
            batch = self.events.pop_batch()
            now = batch[0].time
            if now >= self._scheduled_preempt - 1e-9:
                self._scheduled_preempt = math.inf
            for event in batch:
                if event.kind == _ARRIVAL:
                    self._handle_arrival(event.payload, now)
                elif event.kind == _FINISH:
                    self._handle_finish(event.payload, now)
                # _PREEMPT events carry no state change; the reschedule
                # below performs the starvation check.
            self._reschedule_all(now)
        horizon = max(now, self.workload.horizon)
        return TaskSchedule(
            self.task_records,
            self.job_records,
            cluster=self.cluster,
            config=self.config,
            horizon=horizon,
        )

    # -- event handlers --------------------------------------------------------

    def _handle_arrival(self, spec: JobSpec, now: float) -> None:
        job = JobRun(spec)
        if job.tasks_left == 0:
            self._record_job(job, now)
            return
        self._release_stages(job, job.release_ready_stages(), now)

    def _handle_finish(self, run: RunningTask, now: float) -> None:
        if run.cancelled:
            return
        pool = self.pools[run.task.pool]
        pool.remove_running(run)
        self.task_records.append(
            TaskRecord(
                job_id=run.job.spec.job_id,
                task_id=run.task.task_id,
                tenant=run.tenant,
                pool=run.task.pool,
                stage=run.stage,
                submit_time=self._ready_time(run),
                start_time=run.start_time,
                finish_time=now,
                containers=run.containers,
                preempted=False,
                attempt=run.attempt,
            )
        )
        newly_ready = run.job.complete_task(run.stage)
        self._release_stages(run.job, newly_ready, now)
        if run.job.done:
            self._record_job(run.job, now)

    def _record_job(self, job: JobRun, now: float) -> None:
        spec = job.spec
        self.job_records.append(
            JobRecord(
                job_id=spec.job_id,
                tenant=spec.tenant,
                submit_time=spec.submit_time,
                finish_time=max(now, spec.submit_time),
                deadline=spec.deadline,
                num_tasks=spec.num_tasks,
                tags=spec.tags,
                stage_deps=tuple((s.name, s.deps) for s in spec.stages),
            )
        )

    def _release_stages(self, job: JobRun, stages, now: float) -> None:
        for stage in stages:
            for task in stage.tasks:
                self._task_ready_time[(task.task_id, stage.name)] = now
                self.pools[task.pool].add_pending(
                    PendingTask(job, task, stage.name, now)
                )

    def _ready_time(self, run: RunningTask) -> float:
        return self._task_ready_time.get(
            (run.task.task_id, run.stage), run.job.spec.submit_time
        )

    # -- scheduling core ----------------------------------------------------------

    def _reschedule_all(self, now: float) -> None:
        next_deadline = math.inf
        for pool_state in self.pools.values():
            deadline = self._reschedule_pool(pool_state, now)
            next_deadline = min(next_deadline, deadline)
        if next_deadline < self._scheduled_preempt - 1e-9:
            self._scheduled_preempt = next_deadline
            self.events.push(next_deadline, _PREEMPT)

    def _compute_targets(
        self, pool_state: PoolState, now: float
    ) -> tuple[dict[str, int], dict[str, TenantDemand]]:
        demands: dict[str, TenantDemand] = {}
        for tenant in sorted(pool_state.tenants()):
            demands[tenant] = TenantDemand(
                tenant=tenant,
                runnable=pool_state.runnable_containers(tenant),
                running=pool_state.running_containers(tenant),
                oldest_pending_submit=pool_state.oldest_pending_submit(tenant),
            )
        if not demands:
            return {}, {}
        targets = self.policy.allocate(
            pool_state.pool, pool_state.capacity, list(demands.values()), self.config
        )
        return targets, demands

    def _launch(
        self, pool_state: PoolState, targets: Mapping[str, int], now: float
    ) -> None:
        """Hand free containers to tenants below target, round-robin."""
        free = pool_state.capacity - pool_state.total_running_containers()
        progressed = True
        while free > 0 and progressed:
            progressed = False
            for tenant in sorted(
                targets,
                key=lambda t: targets[t] - pool_state.running_containers(t),
                reverse=True,
            ):
                if free <= 0:
                    break
                item = pool_state.peek_pending(tenant)
                if item is None:
                    continue
                if pool_state.running_containers(tenant) >= targets.get(tenant, 0):
                    continue
                if item.task.containers > free:
                    continue
                pool_state.pop_pending(tenant)
                run = pool_state.start(item, now)
                self.events.push(now + item.task.duration, _FINISH, run)
                free -= item.task.containers
                progressed = True

    def _reschedule_pool(self, pool_state: PoolState, now: float) -> float:
        """Allocate, launch, update starvation clocks, maybe preempt.

        Returns the earliest future preemption deadline for this pool.
        """
        targets, demands = self._compute_targets(pool_state, now)
        if demands:
            self._launch(pool_state, targets, now)

        # Re-read state after launches for the starvation accounting.
        kills = self._starvation_pass(pool_state, targets, demands, now)
        if kills:
            # Freed containers: recompute targets (demand shifted) and
            # hand them out, then refresh the clocks once more.
            targets, demands = self._compute_targets(pool_state, now)
            if demands:
                self._launch(pool_state, targets, now)
            self._starvation_pass(pool_state, targets, demands, now, allow_kills=False)

        return self._next_preemption_deadline(pool_state)

    def _starvation_pass(
        self,
        pool_state: PoolState,
        targets: Mapping[str, int],
        demands: Mapping[str, TenantDemand],
        now: float,
        *,
        allow_kills: bool = True,
    ) -> int:
        """Update clocks; fire due preemptions.  Returns kill count."""
        total_kills = 0
        # Tenants with no work in this pool must not accumulate starvation.
        for (pool, tenant), clock in self.clocks.items():
            if pool == pool_state.pool and tenant not in demands:
                clock.below_min_since = None
                clock.below_fair_since = None
        for tenant, demand in demands.items():
            cfg = self.config.tenant(tenant)
            clock = self.clocks.setdefault(
                (pool_state.pool, tenant), StarvationClock()
            )
            running = pool_state.running_containers(tenant)
            runnable = pool_state.runnable_containers(tenant)
            total_demand = running + runnable
            min_ent = min(cfg.min_for(pool_state.pool), total_demand)
            fair_ent = targets.get(tenant, 0)
            clock.update(now, running, total_demand, min_ent, fair_ent)
            if not allow_kills:
                continue
            level = clock.triggered_level(
                now,
                cfg.min_share_preemption_timeout,
                cfg.fair_share_preemption_timeout,
            )
            if level is None:
                continue
            entitlement = min_ent if level == "min" else fair_ent
            needed = entitlement - running
            if needed > 0:
                victims = select_victims(
                    pool_state.all_running(),
                    needed,
                    allocations={
                        t: pool_state.running_containers(t)
                        for t in pool_state.running
                    },
                    fair_entitlements=dict(targets),
                    protected={tenant},
                )
                for victim in victims:
                    self._kill(pool_state, victim, now)
                total_kills += len(victims)
            # Restart the clock: one kill volley per timeout period.
            if level == "min":
                clock.below_min_since = now
            else:
                clock.below_fair_since = now
        return total_kills

    def _kill(self, pool_state: PoolState, run: RunningTask, now: float) -> None:
        """Preempt a running task: record the wasted attempt, requeue it."""
        run.cancelled = True
        pool_state.remove_running(run)
        self.task_records.append(
            TaskRecord(
                job_id=run.job.spec.job_id,
                task_id=run.task.task_id,
                tenant=run.tenant,
                pool=run.task.pool,
                stage=run.stage,
                submit_time=self._ready_time(run),
                start_time=run.start_time,
                finish_time=now,
                containers=run.containers,
                preempted=True,
                attempt=run.attempt,
            )
        )
        pool_state.add_pending(
            PendingTask(run.job, run.task, run.stage, now, run.attempt + 1),
            front=True,
        )

    def _next_preemption_deadline(self, pool_state: PoolState) -> float:
        deadline = math.inf
        for tenant in pool_state.tenants():
            cfg = self.config.tenant(tenant)
            clock = self.clocks.get((pool_state.pool, tenant))
            if clock is None:
                continue
            deadline = min(
                deadline,
                clock.next_deadline(
                    cfg.min_share_preemption_timeout,
                    cfg.fair_share_preemption_timeout,
                ),
            )
        return deadline
