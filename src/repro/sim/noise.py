"""Noise injection for the ground-truth cluster simulator.

Section 8.1 stresses that the validation traces were "collected in a
noisy environment where there were job and task failures, jobs killed by
users and DBAs, and node blacklisting and restarts", and that killed and
failed tasks have inaccurately recorded start/finish times.  This module
models exactly those effects so that the predictor-vs-ground-truth
comparison (Table 2) exercises the same robustness the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Stochastic disturbances applied by :class:`ClusterSimulator`.

    All rates are per task-second (exponential hazards), applied at
    heartbeat granularity.

    Attributes:
        task_failure_rate: Hazard of a running task failing; failed tasks
            restart from scratch (a new attempt).
        job_kill_rate: Hazard, per running *job*-second, of a user/DBA
            killing the whole job; killed jobs leave the system with all
            their running tasks marked failed.
        straggler_probability: Chance that a launching task is a
            straggler.
        straggler_slowdown: Service-speed divisor for stragglers
            (e.g. 2.0 means half speed).
        node_restart_rate: Hazard of a node restart event per second;
            each event removes ``node_restart_capacity_fraction`` of every
            pool's capacity for ``node_restart_duration`` seconds,
            failing the most recently launched tasks that no longer fit.
        node_restart_capacity_fraction: See above.
        node_restart_duration: See above.
        record_jitter: Standard deviation (seconds) of recording error
            added to killed/failed attempts' start/finish times in the
            emitted trace (the paper's "not recorded accurately").
        duration_noise: Multiplicative lognormal sigma applied to every
            task's actual service time (systemic runtime variability).
    """

    task_failure_rate: float = 0.0
    job_kill_rate: float = 0.0
    straggler_probability: float = 0.0
    straggler_slowdown: float = 2.0
    node_restart_rate: float = 0.0
    node_restart_capacity_fraction: float = 0.1
    node_restart_duration: float = 120.0
    record_jitter: float = 0.0
    duration_noise: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "task_failure_rate",
            "job_kill_rate",
            "straggler_probability",
            "node_restart_rate",
            "record_jitter",
            "duration_noise",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if not 0.0 <= self.node_restart_capacity_fraction < 1.0:
            raise ValueError("node_restart_capacity_fraction must be in [0, 1)")
        if self.node_restart_duration <= 0:
            raise ValueError("node_restart_duration must be positive")

    @classmethod
    def quiet(cls) -> "NoiseModel":
        """No noise: the ground truth degenerates to exact execution."""
        return cls()

    @classmethod
    def production(cls) -> "NoiseModel":
        """Noise levels qualitatively matching the paper's environment."""
        return cls(
            task_failure_rate=2e-5,
            job_kill_rate=2e-6,
            straggler_probability=0.05,
            straggler_slowdown=2.0,
            node_restart_rate=1e-4,
            node_restart_capacity_fraction=0.08,
            node_restart_duration=180.0,
            record_jitter=3.0,
            duration_noise=0.15,
        )

    @classmethod
    def harsh(cls) -> "NoiseModel":
        """Aggressive noise for validation experiments.

        A simulated ground truth shares the predictor's scheduling
        engine, so unlike the paper's real cluster it has no *systematic*
        model error; this profile compensates with heavy stochastic
        disturbance (large duration variance, frequent stragglers and
        failures, coarse record jitter) so that predictor-vs-truth
        comparisons are not trivially exact.
        """
        return cls(
            task_failure_rate=1e-4,
            job_kill_rate=4e-6,
            straggler_probability=0.12,
            straggler_slowdown=2.5,
            node_restart_rate=2e-4,
            node_restart_capacity_fraction=0.10,
            node_restart_duration=240.0,
            record_jitter=10.0,
            duration_noise=0.4,
        )

    @property
    def is_quiet(self) -> bool:
        return (
            self.task_failure_rate == 0.0
            and self.job_kill_rate == 0.0
            and self.straggler_probability == 0.0
            and self.node_restart_rate == 0.0
            and self.record_jitter == 0.0
            and self.duration_noise == 0.0
        )

    # -- draws -------------------------------------------------------------

    def actual_duration(self, rng: np.random.Generator, nominal: float) -> float:
        """Realized service time for a launching task."""
        duration = nominal
        if self.duration_noise > 0:
            duration *= float(
                np.exp(rng.normal(0.0, self.duration_noise))
            )
        if self.straggler_probability > 0 and rng.uniform() < self.straggler_probability:
            duration *= self.straggler_slowdown
        return max(duration, 1e-6)

    def task_fails(self, rng: np.random.Generator, dt: float) -> bool:
        """Whether a running task fails within a ``dt``-second heartbeat."""
        if self.task_failure_rate <= 0:
            return False
        return rng.uniform() < -np.expm1(-self.task_failure_rate * dt)

    def job_killed(self, rng: np.random.Generator, dt: float) -> bool:
        """Whether a user/DBA kills a running job within ``dt`` seconds."""
        if self.job_kill_rate <= 0:
            return False
        return rng.uniform() < -np.expm1(-self.job_kill_rate * dt)

    def node_restarts(self, rng: np.random.Generator, dt: float) -> bool:
        """Whether a node-restart event strikes within ``dt`` seconds."""
        if self.node_restart_rate <= 0:
            return False
        return rng.uniform() < -np.expm1(-self.node_restart_rate * dt)

    def jittered(self, rng: np.random.Generator, t: float, lo: float) -> float:
        """A recorded timestamp with measurement error, floored at ``lo``."""
        if self.record_jitter <= 0:
            return t
        return max(lo, t + float(rng.normal(0.0, self.record_jitter)))
