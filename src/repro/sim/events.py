"""Discrete-event primitives: a deterministic priority event queue."""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled event; ordering is (time, sequence number)."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of events with deterministic FIFO tie-breaking.

    Events at equal timestamps pop in insertion order, which keeps the
    time-warp simulation fully deterministic for a fixed input.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event; returns the stored record."""
        if math.isnan(time):
            raise ValueError("event time must not be NaN")
        event = Event(time=time, seq=next(self._seq), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float:
        """Timestamp of the next event; ``inf`` when empty."""
        return self._heap[0].time if self._heap else math.inf

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def pop_batch(self, epsilon: float = 1e-9) -> list[Event]:
        """Pop every event sharing the earliest timestamp (within eps).

        Processing simultaneous events as one batch lets the simulator
        recompute allocations once per instant instead of once per event.
        """
        if not self._heap:
            return []
        t0 = self._heap[0].time
        batch = [heapq.heappop(self._heap)]
        while self._heap and self._heap[0].time <= t0 + epsilon:
            batch.append(heapq.heappop(self._heap))
        return batch

    def drain(self) -> Iterator[Event]:
        """Yield every remaining event in time order, emptying the queue."""
        while self._heap:
            yield heapq.heappop(self._heap)
