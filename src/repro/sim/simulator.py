"""Heartbeat-granularity cluster simulator: the noisy "ground truth".

The paper validates Tempo's Schedule Predictor against a real 700-node
production cluster (Section 8.1) and runs its end-to-end experiments on
a 20-node EC2 cluster (Section 8.2).  Neither is available here, so this
simulator plays the production side: it executes a workload under a
YARN-fair-scheduler-like RM at fixed heartbeat granularity while a
:class:`~repro.sim.noise.NoiseModel` injects task failures, user/DBA job
kills, node restarts (temporary capacity loss), stragglers, duration
variability, and measurement jitter on killed/failed attempts' recorded
timestamps — the exact disturbances Section 8.1 enumerates.

With a quiet noise model and a small heartbeat it converges to the same
schedule as the time-warp predictor, which is the predictor's
correctness oracle in the test suite.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig
from repro.rm.policies import FairSharePolicy, SchedulingPolicy, TenantDemand
from repro.rm.preemption import StarvationClock, select_victims
from repro.sim.noise import NoiseModel
from repro.sim.runtime import (
    JobRun,
    PendingTask,
    PoolState,
    RunningTask,
    validate_workload_fits,
)
from repro.sim.schedule import TaskSchedule
from repro.workload.model import JobSpec, Workload
from repro.workload.trace import JobRecord, TaskRecord


class ClusterSimulator:
    """Execute a workload on a simulated noisy cluster.

    Args:
        cluster: Cluster being simulated.
        policy: Instantaneous allocation policy (fair share by default).
        noise: Disturbance model; ``NoiseModel.quiet()`` for exactness.
        heartbeat: Scheduling interval in seconds (YARN-style).
        seed: Default RNG seed for the noise draws.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: SchedulingPolicy | None = None,
        noise: NoiseModel | None = None,
        heartbeat: float = 5.0,
        seed: int = 0,
    ):
        if heartbeat <= 0:
            raise ValueError(f"heartbeat must be positive, got {heartbeat}")
        self.cluster = cluster
        self.policy = policy or FairSharePolicy()
        self.noise = noise or NoiseModel.quiet()
        self.heartbeat = heartbeat
        self.seed = seed

    def run(
        self,
        workload: Workload,
        config: RMConfig,
        *,
        seed: int | None = None,
        max_time: float | None = None,
    ) -> TaskSchedule:
        """Execute ``workload`` under ``config``; returns the observed trace.

        ``max_time`` bounds the drain phase after the last submission
        (default: three times the horizon plus two hours); jobs still
        incomplete at that point are dropped from the job records, like
        jobs that never finished within an observation window.
        """
        return self.session(workload, config, seed=seed, max_time=max_time).execute()

    def session(
        self,
        workload: Workload,
        config: RMConfig,
        *,
        seed: int | None = None,
        max_time: float | None = None,
    ) -> "SimulationSession":
        """Open a stepwise simulation of ``workload`` starting at t=0.

        Unlike :meth:`run`, the returned :class:`SimulationSession` is
        advanced in slices by the caller (``advance_to``/``drain``) and
        supports swapping the RM configuration and shrinking capacity
        *mid-run* — the continuous-replay mode of the serving layer,
        where backlog carries across retune intervals instead of every
        interval starting from an empty cluster.
        """
        return SimulationSession(
            self.cluster,
            self.policy,
            self.noise,
            self.heartbeat,
            workload,
            config,
            np.random.default_rng(self.seed if seed is None else seed),
            max_time,
        )


class SimulationSession:
    """One (possibly stepwise) simulation run and all its mutable state.

    :meth:`execute` runs the whole workload to completion — that is what
    :meth:`ClusterSimulator.run` does.  The session API advances the
    same heartbeat loop in caller-controlled slices instead:

    * :meth:`advance_to` runs every heartbeat strictly before a target
      time and returns the task/job records observed since the last
      call — pending and running work *carries over* to the next slice;
    * :meth:`set_config` swaps the live RM configuration between
      heartbeats (the next allocation pass sees the new shares, limits,
      and preemption timeouts);
    * :meth:`lose_capacity` permanently removes containers from a pool
      (observed node loss), evicting freshly started tasks that no
      longer fit exactly like a node-restart capacity dip does —
      :meth:`restore_capacity` is its inverse (node recovery), clamped
      so a pool never exceeds its provisioned size;
    * :meth:`drain` runs until all admitted work completes (bounded by
      ``max_time``).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: SchedulingPolicy,
        noise: NoiseModel,
        heartbeat: float,
        workload: Workload,
        config: RMConfig,
        rng: np.random.Generator,
        max_time: float | None,
    ):
        self.cluster = cluster
        self.policy = policy
        self.noise = noise
        self.dt = heartbeat
        self.workload = workload
        self.config = config
        self.rng = rng
        validate_workload_fits(
            (t for job in workload for _, t in job.tasks()), cluster.as_dict()
        )
        self.max_time = (
            max_time
            if max_time is not None
            else workload.horizon * 3.0 + 7200.0
        )
        self.pools: dict[str, PoolState] = {
            pool: PoolState(pool, cap) for pool, cap in cluster.items()
        }
        self.clocks: dict[tuple[str, str], StarvationClock] = {}
        self.capacity_penalty: dict[str, int] = {p: 0 for p in cluster.pool_names}
        self.penalty_until: float = -math.inf
        self.capacity_lost: dict[str, int] = {p: 0 for p in cluster.pool_names}
        self.task_records: list[TaskRecord] = []
        self.job_records: list[JobRecord] = []
        self.killed_jobs: set[str] = set()
        self.now = 0.0
        self._arrivals: list[JobSpec] = sorted(
            workload, key=lambda j: (j.submit_time, j.job_id), reverse=True
        )
        self._ready_time: dict[tuple[str, str], float] = {}
        self._outstanding = 0  # tasks not yet completed across live jobs
        self._task_cursor = 0
        self._job_cursor = 0

    # -- main loop ---------------------------------------------------------

    def execute(self) -> TaskSchedule:
        """Run the whole workload to completion (the one-shot mode)."""
        while self.now <= self.max_time:
            self._heartbeat(self.now)
            if self.idle:
                break
            self.now += self.dt
        horizon = max(self.now, self.workload.horizon)
        return TaskSchedule(
            self.task_records,
            self.job_records,
            cluster=self.cluster,
            config=self.config,
            horizon=horizon,
        )

    def _heartbeat(self, now: float) -> None:
        self._admit_arrivals(now)
        self._advance_running(now)
        self._apply_noise(now)
        self._schedule(now)

    # -- session API ----------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No arrivals pending and no admitted task left incomplete."""
        return not self._arrivals and self._outstanding == 0

    def advance_to(
        self, until: float
    ) -> tuple[list[TaskRecord], list[JobRecord]]:
        """Run every heartbeat with time strictly below ``until``.

        Returns the task and job records produced since the previous
        ``advance_to``/``drain`` call.  Incomplete jobs stay queued or
        running in the session — the backlog the next slice inherits.
        """
        while self.now < until:
            self._heartbeat(self.now)
            self.now += self.dt
        return self._new_records()

    def drain(
        self, max_time: float | None = None
    ) -> tuple[list[TaskRecord], list[JobRecord]]:
        """Run until all admitted work completes (bounded by ``max_time``)."""
        limit = self.max_time if max_time is None else max_time
        while self.now <= limit:
            self._heartbeat(self.now)
            if self.idle:
                break
            self.now += self.dt
        return self._new_records()

    def set_config(self, config: RMConfig) -> None:
        """Swap the live RM configuration; takes effect next heartbeat."""
        self.config = config

    def lose_capacity(self, pool: str, containers: int) -> int:
        """Permanently remove ``containers`` from ``pool`` (node loss).

        Every pool retains at least one container (a cluster that loses
        its last container would strand its queued tasks forever).
        Tasks that no longer fit are evicted newest-first and requeued,
        exactly like a transient node-restart dip.  Returns the
        containers actually removed after clamping; unknown pools are
        ignored (a real RM may report losses for pools the tuner does
        not manage).
        """
        if containers < 0:
            raise ValueError(f"containers must be >= 0, got {containers}")
        pool_state = self.pools.get(pool)
        if pool_state is None:
            return 0
        already = self.capacity_lost[pool]
        allowed = max(0, min(containers, pool_state.capacity - 1 - already))
        if allowed == 0:
            return 0
        self.capacity_lost[pool] = already + allowed
        self._evict_overflow(pool_state, self._effective_capacity(pool), self.now)
        return allowed

    def restore_capacity(self, pool: str, containers: int) -> int:
        """Return previously lost containers to ``pool`` (node recovery).

        The symmetric partner of :meth:`lose_capacity`: restoration is
        clamped to the capacity currently lost, so a pool can never grow
        past its provisioned size.  The freed containers are picked up
        by the next heartbeat's allocation pass — no eviction or
        requeue is needed when capacity grows.  Returns the containers
        actually restored; unknown pools are ignored.
        """
        if containers < 0:
            raise ValueError(f"containers must be >= 0, got {containers}")
        if pool not in self.pools:
            return 0
        restored = min(containers, self.capacity_lost[pool])
        if restored == 0:
            return 0
        self.capacity_lost[pool] -= restored
        return restored

    def _new_records(self) -> tuple[list[TaskRecord], list[JobRecord]]:
        tasks = self.task_records[self._task_cursor :]
        jobs = self.job_records[self._job_cursor :]
        self._task_cursor = len(self.task_records)
        self._job_cursor = len(self.job_records)
        return tasks, jobs

    # -- phases ----------------------------------------------------------------

    def _admit_arrivals(self, now: float) -> None:
        while self._arrivals and self._arrivals[-1].submit_time <= now:
            spec = self._arrivals.pop()
            job = JobRun(spec)
            if job.tasks_left == 0:
                self._record_job(job, now)
                continue
            self._outstanding += job.tasks_left
            self._release_stages(job, job.release_ready_stages(), now)

    def _advance_running(self, now: float) -> None:
        """Progress running tasks by one heartbeat; complete the done ones."""
        for pool_state in self.pools.values():
            completed: list[RunningTask] = []
            for runs in pool_state.running.values():
                for run in runs:
                    run.remaining -= self.dt
                    if run.remaining <= 1e-9:
                        completed.append(run)
            for run in completed:
                self._complete(pool_state, run, now + run.remaining)

    def _complete(self, pool_state: PoolState, run: RunningTask, finish: float) -> None:
        pool_state.remove_running(run)
        finish = max(finish, run.start_time)
        self.task_records.append(
            TaskRecord(
                job_id=run.job.spec.job_id,
                task_id=run.task.task_id,
                tenant=run.tenant,
                pool=run.task.pool,
                stage=run.stage,
                submit_time=self._task_ready(run),
                start_time=run.start_time,
                finish_time=finish,
                containers=run.containers,
                preempted=False,
                attempt=run.attempt,
            )
        )
        self._outstanding -= 1
        newly_ready = run.job.complete_task(run.stage)
        self._release_stages(run.job, newly_ready, finish)
        if run.job.done:
            self._record_job(run.job, finish)

    def _apply_noise(self, now: float) -> None:
        if self.noise.is_quiet:
            return
        self._fail_random_tasks(now)
        self._kill_random_jobs(now)
        self._maybe_restart_nodes(now)

    def _fail_random_tasks(self, now: float) -> None:
        for pool_state in self.pools.values():
            victims = [
                run
                for run in pool_state.all_running()
                if self.noise.task_fails(self.rng, self.dt)
            ]
            for run in victims:
                self._fail(pool_state, run, now, requeue=True)

    def _kill_random_jobs(self, now: float) -> None:
        live_jobs: dict[str, JobRun] = {}
        for pool_state in self.pools.values():
            for run in pool_state.all_running():
                live_jobs.setdefault(run.job.spec.job_id, run.job)
        for job_id, job in live_jobs.items():
            if job_id in self.killed_jobs:
                continue
            if self.noise.job_killed(self.rng, self.dt):
                self._kill_job(job, now)

    def _kill_job(self, job: JobRun, now: float) -> None:
        """A user/DBA kills the whole job: purge its tasks everywhere."""
        job_id = job.spec.job_id
        self.killed_jobs.add(job_id)
        for pool_state in self.pools.values():
            for run in [
                r for r in pool_state.all_running() if r.job.spec.job_id == job_id
            ]:
                self._fail(pool_state, run, now, requeue=False)
            self._outstanding -= pool_state.purge_pending(job_id)
        # Tasks not yet released to any queue also leave the system.
        unreleased = sum(
            len(s.tasks)
            for s in job.spec.stages
            if s.name not in job.released
        )
        self._outstanding -= unreleased

    def _maybe_restart_nodes(self, now: float) -> None:
        if now >= self.penalty_until:
            for pool in self.capacity_penalty:
                self.capacity_penalty[pool] = 0
        if not self.noise.node_restarts(self.rng, self.dt):
            return
        self.penalty_until = now + self.noise.node_restart_duration
        for pool, pool_state in self.pools.items():
            lost = int(pool_state.capacity * self.noise.node_restart_capacity_fraction)
            if lost <= 0:
                continue
            self.capacity_penalty[pool] = lost
            self._evict_overflow(pool_state, self._effective_capacity(pool), now)

    def _evict_overflow(
        self, pool_state: PoolState, effective: int, now: float
    ) -> None:
        """Kill newest-started tasks until the pool fits its capacity."""
        overflow = pool_state.total_running_containers() - effective
        if overflow <= 0:
            return
        victims = sorted(
            pool_state.all_running(), key=lambda r: r.start_time, reverse=True
        )
        freed = 0
        for run in victims:
            if freed >= overflow:
                break
            self._fail(pool_state, run, now, requeue=True)
            freed += run.containers

    def _fail(
        self, pool_state: PoolState, run: RunningTask, now: float, *, requeue: bool
    ) -> None:
        """A task attempt dies (failure/kill); optionally restarts."""
        pool_state.remove_running(run)
        ready = self._task_ready(run)
        start = self.noise.jittered(self.rng, run.start_time, ready)
        finish = self.noise.jittered(self.rng, now, start)
        self.task_records.append(
            TaskRecord(
                job_id=run.job.spec.job_id,
                task_id=run.task.task_id,
                tenant=run.tenant,
                pool=run.task.pool,
                stage=run.stage,
                submit_time=ready,
                start_time=start,
                finish_time=finish,
                containers=run.containers,
                preempted=False,
                failed=True,
                attempt=run.attempt,
            )
        )
        if requeue:
            pool_state.add_pending(
                PendingTask(run.job, run.task, run.stage, now, run.attempt + 1),
                front=True,
            )
        else:
            self._outstanding -= 1

    # -- scheduling ---------------------------------------------------------------

    def _effective_capacity(self, pool: str) -> int:
        return max(
            0,
            self.pools[pool].capacity
            - self.capacity_penalty[pool]
            - self.capacity_lost[pool],
        )

    def _schedule(self, now: float) -> None:
        for pool, pool_state in self.pools.items():
            capacity = self._effective_capacity(pool)
            targets, demands = self._compute_targets(pool_state, capacity, now)
            if demands:
                self._launch(pool_state, capacity, targets, now)
            kills = self._starvation_pass(pool_state, capacity, targets, demands, now)
            if kills:
                targets, demands = self._compute_targets(pool_state, capacity, now)
                if demands:
                    self._launch(pool_state, capacity, targets, now)
                self._starvation_pass(
                    pool_state, capacity, targets, demands, now, allow_kills=False
                )

    def _compute_targets(
        self, pool_state: PoolState, capacity: int, now: float
    ) -> tuple[dict[str, int], dict[str, TenantDemand]]:
        demands: dict[str, TenantDemand] = {}
        for tenant in sorted(pool_state.tenants()):
            demands[tenant] = TenantDemand(
                tenant=tenant,
                runnable=pool_state.runnable_containers(tenant),
                running=pool_state.running_containers(tenant),
                oldest_pending_submit=pool_state.oldest_pending_submit(tenant),
            )
        if not demands:
            return {}, {}
        targets = self.policy.allocate(
            pool_state.pool, capacity, list(demands.values()), self.config
        )
        return targets, demands

    def _launch(
        self,
        pool_state: PoolState,
        capacity: int,
        targets: Mapping[str, int],
        now: float,
    ) -> None:
        free = capacity - pool_state.total_running_containers()
        progressed = True
        while free > 0 and progressed:
            progressed = False
            for tenant in sorted(
                targets,
                key=lambda t: targets[t] - pool_state.running_containers(t),
                reverse=True,
            ):
                if free <= 0:
                    break
                item = pool_state.peek_pending(tenant)
                if item is None:
                    continue
                if pool_state.running_containers(tenant) >= targets.get(tenant, 0):
                    continue
                if item.task.containers > free:
                    continue
                pool_state.pop_pending(tenant)
                run = pool_state.start(item, now)
                run.remaining = self.noise.actual_duration(self.rng, item.task.duration)
                free -= item.task.containers
                progressed = True

    def _starvation_pass(
        self,
        pool_state: PoolState,
        capacity: int,
        targets: Mapping[str, int],
        demands: Mapping[str, TenantDemand],
        now: float,
        *,
        allow_kills: bool = True,
    ) -> int:
        total_kills = 0
        for (pool, tenant), clock in self.clocks.items():
            if pool == pool_state.pool and tenant not in demands:
                clock.below_min_since = None
                clock.below_fair_since = None
        for tenant in demands:
            cfg = self.config.tenant(tenant)
            clock = self.clocks.setdefault((pool_state.pool, tenant), StarvationClock())
            running = pool_state.running_containers(tenant)
            runnable = pool_state.runnable_containers(tenant)
            total_demand = running + runnable
            min_ent = min(cfg.min_for(pool_state.pool), total_demand)
            fair_ent = targets.get(tenant, 0)
            clock.update(now, running, total_demand, min_ent, fair_ent)
            if not allow_kills:
                continue
            level = clock.triggered_level(
                now,
                cfg.min_share_preemption_timeout,
                cfg.fair_share_preemption_timeout,
            )
            if level is None:
                continue
            entitlement = min_ent if level == "min" else fair_ent
            needed = entitlement - running
            if needed > 0:
                victims = select_victims(
                    pool_state.all_running(),
                    needed,
                    allocations={
                        t: pool_state.running_containers(t) for t in pool_state.running
                    },
                    fair_entitlements=dict(targets),
                    protected={tenant},
                )
                for victim in victims:
                    self._preempt(pool_state, victim, now)
                total_kills += len(victims)
            if level == "min":
                clock.below_min_since = now
            else:
                clock.below_fair_since = now
        return total_kills

    def _preempt(self, pool_state: PoolState, run: RunningTask, now: float) -> None:
        pool_state.remove_running(run)
        ready = self._task_ready(run)
        start = self.noise.jittered(self.rng, run.start_time, ready)
        finish = self.noise.jittered(self.rng, now, start)
        self.task_records.append(
            TaskRecord(
                job_id=run.job.spec.job_id,
                task_id=run.task.task_id,
                tenant=run.tenant,
                pool=run.task.pool,
                stage=run.stage,
                submit_time=ready,
                start_time=start,
                finish_time=finish,
                containers=run.containers,
                preempted=True,
                attempt=run.attempt,
            )
        )
        pool_state.add_pending(
            PendingTask(run.job, run.task, run.stage, now, run.attempt + 1),
            front=True,
        )

    # -- bookkeeping -----------------------------------------------------------

    def _release_stages(self, job: JobRun, stages, now: float) -> None:
        if job.spec.job_id in self.killed_jobs:
            return
        for stage in stages:
            for task in stage.tasks:
                self._ready_time[(task.task_id, stage.name)] = now
                self.pools[task.pool].add_pending(
                    PendingTask(job, task, stage.name, now)
                )

    def _task_ready(self, run: RunningTask) -> float:
        return self._ready_time.get(
            (run.task.task_id, run.stage), run.job.spec.submit_time
        )

    def _record_job(self, job: JobRun, now: float) -> None:
        spec = job.spec
        self.job_records.append(
            JobRecord(
                job_id=spec.job_id,
                tenant=spec.tenant,
                submit_time=spec.submit_time,
                finish_time=max(now, spec.submit_time),
                deadline=spec.deadline,
                num_tasks=spec.num_tasks,
                tags=spec.tags,
                stage_deps=tuple((s.name, s.deps) for s in spec.stages),
            )
        )
