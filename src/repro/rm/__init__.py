"""Resource-Manager substrate: cluster model, configuration space, policies.

Models the per-tenant RM configuration surface of Section 3.2 — resource
shares, resource limits, and two-level preemption timeouts — plus the
weighted max-min fair allocation machinery that YARN/Mesos-style fair
schedulers implement.
"""

from repro.rm.cluster import ClusterSpec
from repro.rm.config import (
    ConfigSpace,
    ParamSpec,
    RMConfig,
    TenantConfig,
)
from repro.rm.fair import fair_shares, weighted_water_fill
from repro.rm.policies import (
    CapacityPolicy,
    FairSharePolicy,
    FifoPolicy,
    SchedulingPolicy,
    TenantDemand,
)
from repro.rm.preemption import StarvationClock, select_victims
from repro.rm.hierarchy import QueueNode, flatten_hierarchy, hierarchy, leaf

__all__ = [
    "QueueNode",
    "flatten_hierarchy",
    "hierarchy",
    "leaf",
    "ClusterSpec",
    "TenantConfig",
    "RMConfig",
    "ConfigSpace",
    "ParamSpec",
    "fair_shares",
    "weighted_water_fill",
    "SchedulingPolicy",
    "FairSharePolicy",
    "FifoPolicy",
    "CapacityPolicy",
    "TenantDemand",
    "StarvationClock",
    "select_victims",
]
