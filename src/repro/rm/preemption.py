"""Preemption machinery: starvation clocks and victim selection.

Section 3.2 describes two levels of preemption timeouts: a tenant whose
allocation has stayed below its configured *minimum limit* for the
min-share timeout, or below its *fair share* for the fair-share timeout,
may preempt tasks from tenants that hold resources rightly owed to it.
Preemption is by killing the most recently launched tasks of over-share
tenants (Figure 1's semantics), which wastes their unfinished work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Protocol, Sequence


@dataclass
class StarvationClock:
    """Tracks how long a tenant has been starving at each level.

    A level's clock starts when the tenant first drops below the
    corresponding entitlement *while having unmet demand*, and resets when
    the entitlement is met (or demand vanishes).
    """

    below_min_since: float | None = None
    below_fair_since: float | None = None

    def update(
        self,
        now: float,
        allocation: int,
        demand: int,
        min_entitlement: int,
        fair_entitlement: int,
    ) -> None:
        """Advance the clocks given the current instantaneous state."""
        wants_more = demand > allocation
        starving_min = wants_more and allocation < min_entitlement
        starving_fair = wants_more and allocation < fair_entitlement
        if starving_min:
            if self.below_min_since is None:
                self.below_min_since = now
        else:
            self.below_min_since = None
        if starving_fair:
            if self.below_fair_since is None:
                self.below_fair_since = now
        else:
            self.below_fair_since = None

    def next_deadline(self, min_timeout: float, fair_timeout: float) -> float:
        """Earliest future instant at which a preemption could trigger."""
        deadlines = []
        if self.below_min_since is not None and not math.isinf(min_timeout):
            deadlines.append(self.below_min_since + min_timeout)
        if self.below_fair_since is not None and not math.isinf(fair_timeout):
            deadlines.append(self.below_fair_since + fair_timeout)
        return min(deadlines, default=math.inf)

    def triggered_level(
        self, now: float, min_timeout: float, fair_timeout: float
    ) -> str | None:
        """Which level (if any) has expired by ``now``.

        Returns ``"min"`` (the more critical level), ``"fair"``, or
        ``None``.
        """
        if (
            self.below_min_since is not None
            and not math.isinf(min_timeout)
            and now >= self.below_min_since + min_timeout - 1e-9
        ):
            return "min"
        if (
            self.below_fair_since is not None
            and not math.isinf(fair_timeout)
            and now >= self.below_fair_since + fair_timeout - 1e-9
        ):
            return "fair"
        return None


class RunningTask(Protocol):
    """Minimal view of a running task that victim selection needs."""

    tenant: str
    start_time: float
    containers: int


def select_victims(
    running: Iterable[RunningTask],
    needed: int,
    allocations: Mapping[str, int],
    fair_entitlements: Mapping[str, int],
    protected: frozenset[str] | set[str] = frozenset(),
) -> list[RunningTask]:
    """Pick tasks to kill to free ``needed`` containers.

    Only tenants holding more than their fair entitlement lose tasks, and
    each loses at most its surplus — preemption reclaims resources
    "rightly owed" to the starving tenant, never digs a victim below its
    own fair share.  Within the eligible set, the most recently launched
    tasks die first (minimizing wasted work per Figure 1's narrative).

    Args:
        running: Currently running tasks across all tenants.
        needed: Containers to free (non-negative).
        allocations: Current per-tenant allocation in this pool.
        fair_entitlements: Per-tenant fair entitlement in this pool.
        protected: Tenants exempt from preemption (e.g. the starving
            tenant itself).

    Returns:
        Tasks to kill, most recent first; may free fewer than ``needed``
        containers if surpluses are insufficient.
    """
    if needed <= 0:
        return []
    surplus: dict[str, int] = {}
    for tenant, alloc in allocations.items():
        if tenant in protected:
            continue
        surplus[tenant] = max(0, alloc - fair_entitlements.get(tenant, 0))
    candidates = sorted(
        (t for t in running if surplus.get(t.tenant, 0) > 0),
        key=lambda t: t.start_time,
        reverse=True,
    )
    victims: list[RunningTask] = []
    freed = 0
    for task in candidates:
        if freed >= needed:
            break
        if surplus.get(task.tenant, 0) < task.containers:
            continue
        victims.append(task)
        surplus[task.tenant] -= task.containers
        freed += task.containers
    return victims
