"""Cluster model: named pools of interchangeable containers.

Section 3.2 adopts a uni-dimensional resource representation — an integer
number of containers (slots) — as done in Mesos and YARN.  We generalize
minimally to *named pools* of containers (e.g. separate map and reduce
slots) because the evaluation reports per-pool utilizations (Figure 9)
and per-pool preemption counts (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster: a fixed total number of containers per pool.

    Attributes:
        pools: Mapping from pool name to container count.
        name: Label used in reports.
    """

    pools: tuple[tuple[str, int], ...]
    name: str = "cluster"

    def __init__(self, pools: Mapping[str, int], name: str = "cluster"):
        items = tuple(sorted((str(k), int(v)) for k, v in pools.items()))
        if not items:
            raise ValueError("cluster needs at least one pool")
        for pool, cap in items:
            if cap < 1:
                raise ValueError(f"pool {pool!r} capacity must be >= 1, got {cap}")
        object.__setattr__(self, "pools", items)
        object.__setattr__(self, "name", name)

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}={c}" for p, c in self.pools)
        return f"ClusterSpec({self.name}: {inner})"

    def capacity(self, pool: str) -> int:
        """Container count of ``pool``; raises KeyError if unknown."""
        for p, c in self.pools:
            if p == pool:
                return c
        raise KeyError(f"cluster has no pool {pool!r}")

    @property
    def pool_names(self) -> list[str]:
        return [p for p, _ in self.pools]

    @property
    def total_capacity(self) -> int:
        return sum(c for _, c in self.pools)

    def as_dict(self) -> dict[str, int]:
        """Pools as a plain ``{name: capacity}`` dict."""
        return dict(self.pools)

    def items(self) -> Iterator[tuple[str, int]]:
        """Iterate ``(pool, capacity)`` pairs in name order."""
        return iter(self.pools)

    def shrunk(
        self, losses: Mapping[str, int], name: str | None = None
    ) -> "ClusterSpec":
        """A cluster with ``losses[pool]`` containers removed per pool.

        Models live capacity loss (failed nodes): the online serving
        layer feeds observed :class:`~repro.service.events.NodeLost`
        telemetry through this so the what-if model predicts schedules
        on the capacity that actually remains.  Unknown pools are
        ignored and every pool keeps at least one container.
        """
        pools = {
            p: max(1, c - int(losses.get(p, 0))) for p, c in self.pools
        }
        for pool, lost in losses.items():
            if lost < 0:
                raise ValueError(f"losses[{pool!r}] must be >= 0, got {lost}")
        label = name if name is not None else self.name
        return ClusterSpec(pools, name=label)

    def grown(
        self, gains: Mapping[str, int], name: str | None = None
    ) -> "ClusterSpec":
        """A cluster with ``gains[pool]`` containers added per pool.

        The symmetric partner of :meth:`shrunk`, for callers modeling
        capacity coming back (e.g. what-if analyses of node repair).
        Note the serving daemon itself restores observed
        :class:`~repro.service.events.NodeRecovered` capacity by
        shrinking the provisioned spec by the *net* remaining loss —
        recovery clamped to the loss actually observed — rather than
        growing a shrunken spec, so a recovered cluster can never
        exceed its provisioned size.  Unknown pools are ignored.
        """
        for pool, gained in gains.items():
            if gained < 0:
                raise ValueError(f"gains[{pool!r}] must be >= 0, got {gained}")
        pools = {p: c + int(gains.get(p, 0)) for p, c in self.pools}
        label = name if name is not None else self.name
        return ClusterSpec(pools, name=label)

    def scaled(self, fraction: float, name: str | None = None) -> "ClusterSpec":
        """A cluster with every pool scaled by ``fraction`` (at least 1).

        Used by the provisioning experiment (Section 8.2.4) to model the
        100% / 50% / 25% cluster sizes.
        """
        if fraction <= 0:
            raise ValueError(f"fraction must be positive, got {fraction}")
        pools = {p: max(1, round(c * fraction)) for p, c in self.pools}
        label = name if name is not None else f"{self.name}x{fraction:g}"
        return ClusterSpec(pools, name=label)
