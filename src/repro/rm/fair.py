"""Weighted max-min fair allocation with minimum/maximum limits.

Implements the allocation semantics of Section 3.2's worked examples:

* shares 1:2:3 over 12 containers with full demand -> 2, 4, 6;
* tenant C idle -> A and B get 4 and 8 (unused quota redistributed in
  proportion to the remaining tenants' shares);
* max limit 3 on C -> 3, 6, 3.

The continuous solution is a weighted water-fill; integer containers are
then assigned by largest-remainder rounding that respects each tenant's
bounds.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def weighted_water_fill(
    capacity: float,
    weights: Mapping[str, float],
    floors: Mapping[str, float],
    ceilings: Mapping[str, float],
) -> dict[str, float]:
    """Continuous weighted max-min allocation.

    Finds the water level ``lam`` such that every tenant receives
    ``clamp(lam * weight, floor, ceiling)`` and the total equals
    ``min(capacity, sum(ceilings))``.  Floors are assumed feasible
    (``sum(floors) <= capacity``); callers pre-scale them otherwise.
    """
    tenants = sorted(weights)
    if not tenants:
        return {}
    for t in tenants:
        if weights[t] < 0:
            raise ValueError(f"negative weight for {t!r}")
        if floors.get(t, 0.0) > ceilings.get(t, math.inf):
            raise ValueError(f"floor above ceiling for {t!r}")
    total_ceiling = sum(ceilings.get(t, math.inf) for t in tenants)
    target = min(capacity, total_ceiling)
    total_floor = sum(floors.get(t, 0.0) for t in tenants)
    if total_floor > capacity + 1e-9:
        raise ValueError(
            f"floors sum to {total_floor}, exceeding capacity {capacity}"
        )
    if target <= total_floor:
        return {t: floors.get(t, 0.0) for t in tenants}

    floor_list = [floors.get(t, 0.0) for t in tenants]
    ceil_list = [ceilings.get(t, math.inf) for t in tenants]
    weight_list = [weights[t] for t in tenants]

    def allocated(lam: float) -> float:
        total = 0.0
        for w, lo, hi in zip(weight_list, floor_list, ceil_list):
            value = lam * w
            if value < lo:
                value = lo
            elif value > hi:
                value = hi
            total += value
        return total

    # The allocation is a piecewise-linear non-decreasing function of
    # the water level lam with breakpoints where a tenant enters or
    # leaves its clamp; walk the (at most 2n) segments and interpolate
    # exactly instead of bisecting.
    breakpoints = {0.0}
    for w, lo, hi in zip(weight_list, floor_list, ceil_list):
        if w > 0:
            breakpoints.add(lo / w)
            if math.isfinite(hi):
                breakpoints.add(hi / w)
    levels = sorted(breakpoints)

    lam = levels[-1]
    reached = False
    prev_level, prev_alloc = levels[0], allocated(levels[0])
    if prev_alloc >= target:
        lam, reached = prev_level, True
    else:
        for level in levels[1:]:
            alloc = allocated(level)
            if alloc >= target:
                # Linear on this segment: interpolate the exact level.
                if alloc > prev_alloc:
                    lam = prev_level + (target - prev_alloc) * (
                        level - prev_level
                    ) / (alloc - prev_alloc)
                else:
                    lam = level
                reached = True
                break
            prev_level, prev_alloc = level, alloc
    if not reached:
        # Beyond the last breakpoint only unbounded-ceiling tenants grow.
        slope = sum(
            w
            for w, hi in zip(weight_list, ceil_list)
            if w > 0 and math.isinf(hi)
        )
        if slope > 0:
            lam = prev_level + (target - prev_alloc) / slope
        # else: target is unreachable (zero-weight floors); keep lam at
        # the last breakpoint, allocating as much as the clamps allow.
    return {
        t: min(max(lam * weights[t], floors.get(t, 0.0)), ceilings.get(t, math.inf))
        for t in tenants
    }


def fair_shares(
    capacity: int,
    demands: Mapping[str, int],
    weights: Mapping[str, float] | None = None,
    min_shares: Mapping[str, int] | None = None,
    max_shares: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Integer weighted max-min fair shares for one container pool.

    Args:
        capacity: Total containers in the pool.
        demands: Runnable-container demand per tenant; tenants with zero
            demand receive zero (their quota redistributes).
        weights: Resource-share weights (default 1 each).
        min_shares: Guaranteed minimums (clipped to demand; scaled down
            proportionally if collectively infeasible).
        max_shares: Hard per-tenant caps.

    Returns:
        Integer allocation per tenant summing to
        ``min(capacity, total effective demand)``.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    tenants = sorted(demands)
    weights = dict(weights or {})
    min_shares = dict(min_shares or {})
    max_shares = dict(max_shares or {})

    ceilings: dict[str, float] = {}
    floors: dict[str, float] = {}
    eff_weights: dict[str, float] = {}
    for t in tenants:
        demand = max(int(demands[t]), 0)
        cap_t = min(demand, int(max_shares.get(t, capacity)))
        ceilings[t] = float(cap_t)
        floors[t] = float(min(int(min_shares.get(t, 0)), cap_t))
        eff_weights[t] = float(weights.get(t, 1.0))
        if eff_weights[t] < 0:
            raise ValueError(f"negative weight for tenant {t!r}")

    total_floor = sum(floors.values())
    if total_floor > capacity:
        # Guaranteed minimums oversubscribe the pool: scale proportionally
        # (the "if all SLOs cannot be satisfied" degenerate case at the
        # allocation layer).
        scale = capacity / total_floor
        floors = {t: f * scale for t, f in floors.items()}

    continuous = weighted_water_fill(float(capacity), eff_weights, floors, ceilings)
    return _round_preserving_sum(continuous, floors, ceilings)


def _round_preserving_sum(
    continuous: Mapping[str, float],
    floors: Mapping[str, float],
    ceilings: Mapping[str, float],
) -> dict[str, int]:
    """Largest-remainder rounding that respects floors/ceilings.

    The integer total equals ``round(sum(continuous))`` (the water-fill
    already made that ``min(capacity, total demand)`` up to float error).
    """
    tenants = sorted(continuous)
    target = int(round(sum(continuous.values())))
    alloc = {t: int(math.floor(continuous[t] + 1e-9)) for t in tenants}
    # Never round below a ceil of the floor's integer part requirement:
    # floors may be fractional after scaling; integer allocations only
    # need to respect ceilings here.
    leftover = target - sum(alloc.values())
    if leftover > 0:
        remainders = sorted(
            tenants,
            key=lambda t: (continuous[t] - alloc[t], continuous[t]),
            reverse=True,
        )
        idx = 0
        while leftover > 0 and idx < 10 * len(tenants) + 10:
            t = remainders[idx % len(remainders)]
            if alloc[t] + 1 <= ceilings[t] + 1e-9:
                alloc[t] += 1
                leftover -= 1
            idx += 1
    elif leftover < 0:  # pragma: no cover - floor() cannot overshoot
        over = sorted(tenants, key=lambda t: continuous[t] - alloc[t])
        idx = 0
        while leftover < 0 and idx < 10 * len(tenants) + 10:
            t = over[idx % len(over)]
            if alloc[t] > 0:
                alloc[t] -= 1
                leftover += 1
            idx += 1
    return alloc
