"""Hierarchical tenants: fine-grained SLOs within one tenant (§10).

The paper's SLO abstraction applies per tenant queue; its suggested
workaround for finer-grained SLOs is "to create hierarchical tenants as
used in the Hadoop Capacity Scheduler".  This module implements that
workaround as a first-class feature: a tree of queues where each node
carries a weight (and optional limits) *relative to its siblings*, and
only leaves receive work.

The tree flattens into an equivalent single-level :class:`RMConfig`
whose leaf weights are the products of the relative weights along each
root-to-leaf path, scaled so that every subtree's total weight equals
the weight the parent was assigned.  With weighted max-min fair
allocation this reproduces hierarchical fair scheduling exactly in the
common case (every subtree saturated or idle as a unit) and
approximates it otherwise — the same fidelity the Hadoop workaround
offers.  Min shares flatten additively top-down; max shares and
preemption timeouts are inherited by children unless overridden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.rm.config import NO_PREEMPTION, RMConfig, TenantConfig


@dataclass(frozen=True)
class QueueNode:
    """One node of the tenant hierarchy.

    Attributes:
        name: Queue name; leaf names must be globally unique (they become
            the flat tenant names jobs are submitted to).
        weight: Share relative to siblings.
        children: Sub-queues; empty for leaves.
        min_share: Per-pool guaranteed minimum for this subtree.  Parent
            minimums are distributed over children in proportion to
            their weights (after honoring the children's own minimums).
        max_share: Per-pool cap for this subtree; children inherit the
            tighter of their own and their ancestors' caps.
        min_share_preemption_timeout / fair_share_preemption_timeout:
            Preemption settings; inherited by children unless overridden
            (``None`` = inherit).
    """

    name: str
    weight: float = 1.0
    children: tuple["QueueNode", ...] = ()
    min_share: Mapping[str, int] = field(default_factory=dict)
    max_share: Mapping[str, int] = field(default_factory=dict)
    min_share_preemption_timeout: float | None = None
    fair_share_preemption_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"queue {self.name}: weight must be positive")
        names = [c.name for c in self.children]
        if len(set(names)) != len(names):
            raise ValueError(f"queue {self.name}: duplicate child names {names}")

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> list["QueueNode"]:
        """All leaf queues of this subtree, in tree order."""
        if self.is_leaf:
            return [self]
        out: list[QueueNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out


def flatten_hierarchy(root: QueueNode) -> RMConfig:
    """Flatten a queue tree into an equivalent single-level RMConfig.

    Leaf weights multiply down the tree (normalized per sibling group so
    a subtree's children split exactly their parent's weight); minimum
    shares distribute top-down in weight proportion; maximum shares take
    the tightest ancestor cap; preemption timeouts inherit.
    """
    leaves: dict[str, TenantConfig] = {}

    def walk(
        node: QueueNode,
        weight: float,
        inherited_min: dict[str, float],
        inherited_max: dict[str, int],
        min_timeout: float,
        fair_timeout: float,
    ) -> None:
        # Merge this node's own settings with what it inherited.
        node_min: dict[str, float] = dict(inherited_min)
        for pool, value in node.min_share.items():
            node_min[pool] = max(node_min.get(pool, 0.0), float(value))
        node_max = dict(inherited_max)
        for pool, value in node.max_share.items():
            node_max[pool] = min(node_max.get(pool, value), value)
        if node.min_share_preemption_timeout is not None:
            min_timeout = node.min_share_preemption_timeout
        if node.fair_share_preemption_timeout is not None:
            fair_timeout = node.fair_share_preemption_timeout

        if node.is_leaf:
            if node.name in leaves:
                raise ValueError(f"duplicate leaf queue name {node.name!r}")
            min_share = {p: int(round(v)) for p, v in node_min.items() if v >= 1.0}
            max_share = dict(node_max)
            for pool in list(min_share):
                cap = max_share.get(pool)
                if cap is not None and min_share[pool] > cap:
                    min_share[pool] = cap
            leaves[node.name] = TenantConfig(
                weight=weight,
                min_share=min_share,
                max_share=max_share,
                min_share_preemption_timeout=min_timeout,
                fair_share_preemption_timeout=fair_timeout,
            )
            return

        total = sum(c.weight for c in node.children)
        for child in node.children:
            fraction = child.weight / total
            child_min = {p: v * fraction for p, v in node_min.items()}
            walk(
                child,
                weight * fraction,
                child_min,
                node_max,
                min_timeout,
                fair_timeout,
            )

    walk(
        root,
        weight=root.weight,
        inherited_min={p: float(v) for p, v in root.min_share.items()},
        inherited_max=dict(root.max_share),
        min_timeout=(
            root.min_share_preemption_timeout
            if root.min_share_preemption_timeout is not None
            else NO_PREEMPTION
        ),
        fair_timeout=(
            root.fair_share_preemption_timeout
            if root.fair_share_preemption_timeout is not None
            else NO_PREEMPTION
        ),
    )
    if not leaves:
        raise ValueError("hierarchy has no leaf queues")
    return RMConfig(leaves)


def hierarchy(name: str, *children: QueueNode, weight: float = 1.0, **kwargs) -> QueueNode:
    """Terse builder: ``hierarchy("root", leaf("a", 2), leaf("b"))``."""
    return QueueNode(name=name, weight=weight, children=tuple(children), **kwargs)


def leaf(name: str, weight: float = 1.0, **kwargs) -> QueueNode:
    """Terse leaf builder."""
    return QueueNode(name=name, weight=weight, **kwargs)
