"""RM configuration: per-tenant knobs and the tunable configuration space.

The configuration parameters follow Section 3.2 exactly:

* **Resource shares** — a weight giving the tenant's proportion of total
  resources relative to other tenants.
* **Resource limits** — per-pool minimum and maximum container counts.
* **Resource preemption** — two timeout levels: one for when the tenant
  is below its fair share, and a more critical one for when it is below
  its configured minimum limit.

:class:`ConfigSpace` is the set ``X`` of (SP1): it enumerates the tunable
parameters with bounds, encodes configurations as vectors in the unit
cube (so the *normalized l2-norm* trust-region distance of Section 4 is
just Euclidean distance divided by sqrt(n)), and decodes vectors back to
:class:`RMConfig` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.rm.cluster import ClusterSpec

#: Timeouts at or above this value disable the corresponding preemption.
NO_PREEMPTION = math.inf


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant RM settings (Section 3.2).

    Attributes:
        weight: Resource share relative to other tenants (> 0).
        min_share: Per-pool guaranteed minimum containers.
        max_share: Per-pool maximum containers (absent pool = unlimited).
        min_share_preemption_timeout: Seconds a tenant starving below its
            *minimum limit* waits before preempting others (the "more
            critical" level).
        fair_share_preemption_timeout: Seconds below the *fair share*
            before preempting.  ``math.inf`` disables either level.
    """

    weight: float = 1.0
    min_share: Mapping[str, int] = field(default_factory=dict)
    max_share: Mapping[str, int] = field(default_factory=dict)
    min_share_preemption_timeout: float = NO_PREEMPTION
    fair_share_preemption_timeout: float = NO_PREEMPTION

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        for pool, v in self.min_share.items():
            if v < 0:
                raise ValueError(f"min_share[{pool!r}] must be >= 0, got {v}")
        for pool, v in self.max_share.items():
            if v < 1:
                raise ValueError(f"max_share[{pool!r}] must be >= 1, got {v}")
            if self.min_share.get(pool, 0) > v:
                raise ValueError(
                    f"min_share[{pool!r}]={self.min_share.get(pool)} exceeds "
                    f"max_share[{pool!r}]={v}"
                )
        if self.min_share_preemption_timeout <= 0:
            raise ValueError("min_share_preemption_timeout must be positive")
        if self.fair_share_preemption_timeout <= 0:
            raise ValueError("fair_share_preemption_timeout must be positive")

    def min_for(self, pool: str) -> int:
        """Guaranteed minimum containers in ``pool`` (0 if unset)."""
        return int(self.min_share.get(pool, 0))

    def max_for(self, pool: str, capacity: int) -> int:
        """Effective cap in ``pool``: own limit clipped to capacity."""
        return int(min(self.max_share.get(pool, capacity), capacity))


#: Shared immutable default returned for tenants without explicit settings.
_DEFAULT_TENANT_CONFIG = TenantConfig()


@dataclass(frozen=True)
class RMConfig:
    """A complete RM configuration: settings for every tenant queue."""

    tenants: Mapping[str, TenantConfig]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", dict(self.tenants))
        if not self.tenants:
            raise ValueError("RMConfig needs at least one tenant")

    def tenant(self, name: str) -> TenantConfig:
        """Settings for ``name``; unknown tenants get defaults."""
        cfg = self.tenants.get(name)
        return cfg if cfg is not None else _DEFAULT_TENANT_CONFIG

    def tenant_names(self) -> list[str]:
        """Sorted names of explicitly configured tenants."""
        return sorted(self.tenants)

    def with_tenant(self, name: str, cfg: TenantConfig) -> "RMConfig":
        """Copy of this config with ``name``'s settings replaced."""
        merged = dict(self.tenants)
        merged[name] = cfg
        return RMConfig(merged)

    def describe(self) -> str:
        """Human-readable multi-line summary (for reports and examples)."""
        lines = []
        for name in self.tenant_names():
            t = self.tenant(name)
            mins = ",".join(f"{p}={v}" for p, v in sorted(t.min_share.items())) or "-"
            maxs = ",".join(f"{p}={v}" for p, v in sorted(t.max_share.items())) or "-"
            pre_min = (
                "off"
                if math.isinf(t.min_share_preemption_timeout)
                else f"{t.min_share_preemption_timeout:.0f}s"
            )
            pre_fair = (
                "off"
                if math.isinf(t.fair_share_preemption_timeout)
                else f"{t.fair_share_preemption_timeout:.0f}s"
            )
            lines.append(
                f"{name}: weight={t.weight:.2f} min[{mins}] max[{maxs}] "
                f"preempt(min={pre_min}, fair={pre_fair})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ParamSpec:
    """One tunable scalar in the configuration space.

    Attributes:
        tenant: Owning tenant queue.
        kind: One of ``weight``, ``min_share``, ``max_share``,
            ``min_timeout``, ``fair_timeout``.
        pool: Pool name for share limits; empty for weights/timeouts.
        lo, hi: Inclusive bounds in natural units.
        log: Encode on a log scale (used for timeouts and weights whose
            effect is multiplicative).
        integer: Round decoded value to an integer.
    """

    tenant: str
    kind: str
    pool: str
    lo: float
    hi: float
    log: bool = False
    integer: bool = False

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError(f"{self.name}: hi {self.hi} must exceed lo {self.lo}")
        if self.log and self.lo <= 0:
            raise ValueError(f"{self.name}: log scale requires positive lo")

    @property
    def name(self) -> str:
        suffix = f".{self.pool}" if self.pool else ""
        return f"{self.tenant}.{self.kind}{suffix}"

    def encode(self, value: float) -> float:
        """Natural units -> [0, 1]."""
        value = min(max(value, self.lo), self.hi)
        if self.log:
            return (math.log(value) - math.log(self.lo)) / (
                math.log(self.hi) - math.log(self.lo)
            )
        return (value - self.lo) / (self.hi - self.lo)

    def decode(self, unit: float) -> float:
        """[0, 1] -> natural units (clipped, optionally rounded)."""
        unit = min(max(unit, 0.0), 1.0)
        if self.log:
            value = math.exp(
                math.log(self.lo) + unit * (math.log(self.hi) - math.log(self.lo))
            )
        else:
            value = self.lo + unit * (self.hi - self.lo)
        if self.integer:
            value = round(value)
        return float(min(max(value, self.lo), self.hi))


class ConfigSpace:
    """The tunable RM configuration space ``X`` with vector codec.

    Vectors live in the unit cube ``[0, 1]^n``; the normalized l2
    distance between two configurations is
    ``||x - x'||_2 / sqrt(n)`` which is what the DBA's risk-tolerance
    radius bounds (Section 4).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        tenants: Sequence[str],
        *,
        tune_weights: bool = True,
        tune_limits: bool = True,
        tune_timeouts: bool = True,
        weight_bounds: tuple[float, float] = (0.25, 8.0),
        timeout_bounds: tuple[float, float] = (15.0, 1800.0),
        base_config: RMConfig | None = None,
    ):
        if not tenants:
            raise ValueError("config space needs at least one tenant")
        self.cluster = cluster
        self.tenant_names = sorted(tenants)
        self._base = base_config
        self._params: list[ParamSpec] = []
        for tenant in self.tenant_names:
            if tune_weights:
                self._params.append(
                    ParamSpec(tenant, "weight", "", *weight_bounds, log=True)
                )
            if tune_limits:
                for pool, cap in cluster.items():
                    self._params.append(
                        ParamSpec(tenant, "min_share", pool, 0.0, float(cap), integer=True)
                    )
                    self._params.append(
                        ParamSpec(tenant, "max_share", pool, 1.0, float(cap), integer=True)
                    )
            if tune_timeouts:
                self._params.append(
                    ParamSpec(tenant, "min_timeout", "", *timeout_bounds, log=True)
                )
                self._params.append(
                    ParamSpec(tenant, "fair_timeout", "", *timeout_bounds, log=True)
                )
        if not self._params:
            raise ValueError("config space has no tunable parameters")

    # -- introspection --------------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self._params)

    @property
    def params(self) -> Sequence[ParamSpec]:
        return tuple(self._params)

    def param_names(self) -> list[str]:
        """Human-readable names of the tunable parameters, in order."""
        return [p.name for p in self._params]

    # -- codec ----------------------------------------------------------------

    def encode(self, config: RMConfig) -> np.ndarray:
        """RMConfig -> unit-cube vector (untuned params use defaults)."""
        x = np.empty(self.dim)
        for i, p in enumerate(self._params):
            t = config.tenant(p.tenant)
            if p.kind == "weight":
                value = t.weight
            elif p.kind == "min_share":
                value = float(t.min_for(p.pool))
            elif p.kind == "max_share":
                value = float(t.max_for(p.pool, self.cluster.capacity(p.pool)))
            elif p.kind == "min_timeout":
                value = _finite_timeout(t.min_share_preemption_timeout, p.hi)
            elif p.kind == "fair_timeout":
                value = _finite_timeout(t.fair_share_preemption_timeout, p.hi)
            else:  # pragma: no cover - kinds fixed at construction
                raise AssertionError(p.kind)
            x[i] = p.encode(value)
        return x

    def decode(self, x: Sequence[float]) -> RMConfig:
        """Unit-cube vector -> RMConfig.

        Guarantees validity: decoded min shares are clamped below max
        shares, and per-pool min shares never oversubscribe the pool.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dim,):
            raise ValueError(f"vector has shape {x.shape}, expected ({self.dim},)")
        values: dict[str, dict[str, object]] = {
            t: {"min_share": {}, "max_share": {}} for t in self.tenant_names
        }
        for i, p in enumerate(self._params):
            v = p.decode(float(x[i]))
            slot = values[p.tenant]
            if p.kind == "weight":
                slot["weight"] = v
            elif p.kind == "min_share":
                slot["min_share"][p.pool] = int(v)  # type: ignore[index]
            elif p.kind == "max_share":
                slot["max_share"][p.pool] = int(v)  # type: ignore[index]
            elif p.kind == "min_timeout":
                slot["min_timeout"] = v
            elif p.kind == "fair_timeout":
                slot["fair_timeout"] = v

        self._reconcile_min_shares(values)

        tenants: dict[str, TenantConfig] = {}
        for name in self.tenant_names:
            slot = values[name]
            base = self._base.tenant(name) if self._base is not None else TenantConfig()
            min_share: dict[str, int] = dict(base.min_share)
            min_share.update(slot["min_share"])  # type: ignore[arg-type]
            max_share: dict[str, int] = dict(base.max_share)
            max_share.update(slot["max_share"])  # type: ignore[arg-type]
            for pool in list(min_share):
                hi = max_share.get(pool)
                if hi is not None and min_share[pool] > hi:
                    min_share[pool] = hi
            tenants[name] = TenantConfig(
                weight=float(slot.get("weight", base.weight)),
                min_share=min_share,
                max_share=max_share,
                min_share_preemption_timeout=float(
                    slot.get("min_timeout", base.min_share_preemption_timeout)
                ),
                fair_share_preemption_timeout=float(
                    slot.get("fair_timeout", base.fair_share_preemption_timeout)
                ),
            )
        return RMConfig(tenants)

    def _reconcile_min_shares(self, values: dict[str, dict[str, object]]) -> None:
        """Scale down per-pool min shares that oversubscribe a pool."""
        for pool, cap in self.cluster.items():
            total = sum(
                int(values[t]["min_share"].get(pool, 0))  # type: ignore[union-attr]
                for t in self.tenant_names
            )
            if total <= cap:
                continue
            scale = cap / total
            for t in self.tenant_names:
                mins = values[t]["min_share"]  # type: ignore[assignment]
                if pool in mins:  # type: ignore[operator]
                    mins[pool] = int(mins[pool] * scale)  # type: ignore[index]

    # -- geometry ---------------------------------------------------------------

    def distance(self, x: Sequence[float], y: Sequence[float]) -> float:
        """Normalized l2 distance (Section 4's risk metric), in [0, 1]."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return float(np.linalg.norm(x - y) / math.sqrt(self.dim))

    def clip(self, x: Sequence[float]) -> np.ndarray:
        """Project a vector onto the unit cube."""
        return np.clip(np.asarray(x, dtype=float), 0.0, 1.0)

    def project(
        self, x: Sequence[float], center: Sequence[float], radius: float
    ) -> np.ndarray:
        """Project ``x`` into the trust region around ``center``.

        The trust region is the normalized-l2 ball of the given radius
        intersected with the unit cube.
        """
        x = self.clip(x)
        center = np.asarray(center, dtype=float)
        d = self.distance(x, center)
        if d <= radius or d == 0.0:
            return x
        pulled = center + (x - center) * (radius / d)
        return self.clip(pulled)

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random configuration vector."""
        return rng.uniform(0.0, 1.0, size=self.dim)

    def random_neighbor(
        self, x: Sequence[float], radius: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform perturbation within the trust region around ``x``.

        This is how the Optimizer "meticulously generates configurations
        only within a given maximum distance to the currently used RM
        configuration" (Section 4).
        """
        x = np.asarray(x, dtype=float)
        direction = rng.normal(size=self.dim)
        norm = np.linalg.norm(direction)
        if norm == 0.0:
            return self.clip(x)
        direction /= norm
        # Scale so normalized-l2 distance is uniform in (0, radius].
        dist = radius * rng.uniform() ** (1.0 / self.dim)
        step = direction * dist * math.sqrt(self.dim)
        return self.project(x + step, x, radius)


def _finite_timeout(timeout: float, cap: float) -> float:
    """Map an 'infinite' (disabled) timeout to the bound's upper edge."""
    return cap if math.isinf(timeout) else timeout
