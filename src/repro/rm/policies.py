"""Instantaneous scheduling policies: fair share, FIFO, capacity.

A policy answers one question for one pool at one decision instant:
*given tenant demands and the RM configuration, what is each tenant's
target allocation?*  Simulators then launch/preempt tasks to track that
target.  The fair policy reproduces the YARN/Mesos fair scheduler the
paper tunes; FIFO and capacity policies serve as baselines and as
substrates for the related-work comparisons.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig
from repro.rm.fair import fair_shares


@dataclass(frozen=True)
class TenantDemand:
    """A tenant's instantaneous demand in one pool.

    Attributes:
        tenant: Queue name.
        runnable: Containers' worth of runnable (pending) tasks.
        running: Containers currently held.
        oldest_pending_submit: Submission time of the oldest pending
            task's job (drives FIFO ordering); ``inf`` when none pending.
    """

    tenant: str
    runnable: int
    running: int
    oldest_pending_submit: float = float("inf")

    @property
    def total_demand(self) -> int:
        """Containers the tenant could use right now."""
        return self.runnable + self.running


class SchedulingPolicy(ABC):
    """Maps (pool state, RM config) to per-tenant target allocations."""

    @abstractmethod
    def allocate(
        self,
        pool: str,
        capacity: int,
        demands: Sequence[TenantDemand],
        config: RMConfig,
    ) -> dict[str, int]:
        """Target integer allocation per tenant; sums to <= capacity."""

    def fair_entitlements(
        self,
        pool: str,
        capacity: int,
        demands: Sequence[TenantDemand],
        config: RMConfig,
    ) -> dict[str, int]:
        """Entitlements used for preemption decisions.

        Defaults to the allocation itself; the fair policy overrides
        nothing because its targets *are* the fair shares.
        """
        return self.allocate(pool, capacity, demands, config)


class FairSharePolicy(SchedulingPolicy):
    """Weighted max-min fair scheduler with min/max limits (Section 3.2)."""

    def allocate(
        self,
        pool: str,
        capacity: int,
        demands: Sequence[TenantDemand],
        config: RMConfig,
    ) -> dict[str, int]:
        demand_map = {d.tenant: d.total_demand for d in demands}
        weights = {d.tenant: config.tenant(d.tenant).weight for d in demands}
        mins = {d.tenant: config.tenant(d.tenant).min_for(pool) for d in demands}
        maxs = {
            d.tenant: config.tenant(d.tenant).max_for(pool, capacity)
            for d in demands
        }
        return fair_shares(capacity, demand_map, weights, mins, maxs)


class FifoPolicy(SchedulingPolicy):
    """First-in-first-out across tenants (no fairness).

    Tenants are served in order of their oldest pending work; each takes
    as much as its demand (and max limit) allows before the next is
    considered.  Models the "low-priority tenant who submitted tasks
    earlier ... can cause the high-priority tenant to miss deadlines"
    pathology the paper motivates preemption with.
    """

    def allocate(
        self,
        pool: str,
        capacity: int,
        demands: Sequence[TenantDemand],
        config: RMConfig,
    ) -> dict[str, int]:
        order = sorted(
            demands,
            key=lambda d: (
                min(d.oldest_pending_submit, 0.0 if d.running else float("inf")),
                d.tenant,
            ),
        )
        remaining = capacity
        alloc: dict[str, int] = {}
        for d in order:
            cap_t = config.tenant(d.tenant).max_for(pool, capacity)
            take = min(d.total_demand, cap_t, remaining)
            alloc[d.tenant] = take
            remaining -= take
        return alloc


class CapacityPolicy(SchedulingPolicy):
    """Capacity-scheduler style: fixed fractions with elastic spillover.

    Each tenant owns ``fraction * capacity`` containers; unused capacity
    spills over to tenants with outstanding demand proportionally to
    their fractions.  Implemented as weighted max-min with floors at the
    owned capacity, which is the fair scheduler's semantics with
    ``min_share = owned`` and ``weight = fraction``.
    """

    def __init__(self, fractions: Mapping[str, float]):
        total = sum(fractions.values())
        if total <= 0:
            raise ValueError("capacity fractions must sum to a positive value")
        self._fractions = {t: f / total for t, f in fractions.items()}

    def allocate(
        self,
        pool: str,
        capacity: int,
        demands: Sequence[TenantDemand],
        config: RMConfig,
    ) -> dict[str, int]:
        demand_map = {d.tenant: d.total_demand for d in demands}
        weights = {
            d.tenant: self._fractions.get(d.tenant, 1e-6) for d in demands
        }
        mins = {
            d.tenant: int(self._fractions.get(d.tenant, 0.0) * capacity)
            for d in demands
        }
        maxs = {
            d.tenant: config.tenant(d.tenant).max_for(pool, capacity)
            for d in demands
        }
        # Floors may exceed caps for idle tenants; clip to demand first.
        mins = {t: min(mins[t], demand_map[t]) for t in mins}
        return fair_shares(capacity, demand_map, weights, mins, maxs)
