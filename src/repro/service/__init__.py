"""Online serving layer: the streaming Tempo daemon.

The batch reproduction runs one-shot control loops over materialized
workloads; this subpackage turns it into an operable online system, as
the paper's deployment story requires (a long-running tuner beside a
live Resource Manager):

* :mod:`repro.service.events` — typed telemetry events and a bounded
  thread-safe event bus;
* :mod:`repro.service.ingest` — O(1)-per-event rolling-window workload
  statistics with a batch-recompute verification path;
* :mod:`repro.service.daemon` — :class:`TempoService`, the cadence loop
  with stability/sparsity guards and atomic config snapshot/rollback;
* :mod:`repro.service.journal` — the append-only, CRC-framed,
  segment-rotated write-ahead journal of every event, decision, applied
  configuration, and rollback;
* :mod:`repro.service.sharding` — the per-tenant sharded data plane:
  :class:`ShardRouter` (stable tenant-hash routing), :class:`IngestShard`
  (own bus + window + journal per shard, in-process or as
  ``multiprocessing`` workers), merged by the control plane at each
  retune cadence;
* :mod:`repro.service.snapshot` — periodic full-state snapshots over
  the journal and the :class:`ServiceState` facade owning a state
  directory, enabling :meth:`TempoService.resume` crash recovery;
* :mod:`repro.service.replay` — a scenario catalog (flash crowd,
  diurnal wave, tenant churn, failure storm) and the replay driver that
  feeds scenarios through the service — continuously by default, so
  backlog compounds across retune intervals — at a speedup factor;
* :mod:`repro.service.failover` — the failover plane: heartbeat
  failure detection, supervised shard replacement with bounded journal
  replay, and the deterministic :class:`FaultInjector` / ``repro
  chaos`` harness that makes every failure mode a reproducible test;
* :mod:`repro.service.transport` — the network data plane:
  length-prefixed CRC-framed TCP transport, ``repro worker`` shard
  servers, and :class:`RemoteShardHandle` — retrying, deduping,
  partition-tolerant — presenting the same shard surface as the
  in-process and ``multiprocessing`` planes.
"""

from repro.service.events import (
    DecisionMade,
    EventBus,
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    NodeRecovered,
    ServiceEvent,
    ShardFailed,
    ShardPartitioned,
    ShardReconnected,
    ShardRecovered,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.failover import (
    ChaosReport,
    FailoverConfig,
    FailoverReport,
    FailureDetector,
    FaultInjector,
    FaultSpec,
    parse_fault,
    run_chaos,
)
from repro.service.ingest import (
    RollingWindow,
    TenantWindowStats,
    stats_gap,
    window_drift,
)
from repro.service.daemon import (
    ConfigSnapshot,
    RetuneDecision,
    ServiceConfig,
    TempoService,
)
from repro.service.journal import (
    EventJournal,
    JournalError,
    JournalRecord,
    decode_event,
    encode_event,
)
from repro.service.sharding import (
    IngestShard,
    ShardFailedError,
    ShardHandle,
    ShardPartitionedError,
    ShardRouter,
    ShardWorkerHandle,
    stable_shard,
    tenant_of,
)
from repro.service.snapshot import ServiceState, SnapshotStore
from repro.service.transport import (
    RemoteShardHandle,
    ShardServer,
    TransportConfig,
    TransportError,
    WorkerLauncher,
    serve_shard,
    start_remote_shards,
)
from repro.service.replay import (
    SCENARIOS,
    ReplaySummary,
    Scenario,
    ScenarioReplayer,
    build_controller,
    build_service,
    convert_rm_log,
    dump_trace_events,
    events_from_trace,
    load_trace_events,
    make_scenario,
    replay_trace,
)

__all__ = [
    "ServiceEvent",
    "JobSubmitted",
    "TaskCompleted",
    "JobCompleted",
    "NodeLost",
    "NodeRecovered",
    "TenantJoined",
    "TenantLeft",
    "Heartbeat",
    "ShardFailed",
    "ShardPartitioned",
    "ShardReconnected",
    "ShardRecovered",
    "DecisionMade",
    "EventBus",
    "RollingWindow",
    "TenantWindowStats",
    "stats_gap",
    "window_drift",
    "ServiceConfig",
    "RetuneDecision",
    "ConfigSnapshot",
    "TempoService",
    "EventJournal",
    "JournalError",
    "JournalRecord",
    "encode_event",
    "decode_event",
    "ServiceState",
    "SnapshotStore",
    "IngestShard",
    "ShardFailedError",
    "ShardHandle",
    "ShardPartitionedError",
    "ShardRouter",
    "ShardWorkerHandle",
    "stable_shard",
    "tenant_of",
    "RemoteShardHandle",
    "ShardServer",
    "TransportConfig",
    "TransportError",
    "WorkerLauncher",
    "serve_shard",
    "start_remote_shards",
    "FailoverConfig",
    "FailureDetector",
    "FailoverReport",
    "FaultSpec",
    "parse_fault",
    "FaultInjector",
    "ChaosReport",
    "run_chaos",
    "Scenario",
    "SCENARIOS",
    "make_scenario",
    "build_controller",
    "build_service",
    "ScenarioReplayer",
    "ReplaySummary",
    "dump_trace_events",
    "load_trace_events",
    "replay_trace",
    "events_from_trace",
    "convert_rm_log",
]
