"""Incremental rolling-window maintenance of per-tenant workload statistics.

The batch control loop recomputes workload statistics from a fully
materialized window trace on every iteration.  A serving daemon cannot
afford that: telemetry arrives one event at a time and windows overlap
almost entirely between consecutive retunes.  :class:`RollingWindow`
maintains the statistics the Workload Generator needs — Poisson arrival
rates and lognormal task-duration parameters (Section 7.1), plus
response-time and preemption summaries — in **O(1) amortized per
event**: running sums are updated when an event is folded in and
subtracted when its entry slides out of the window.

``batch_recompute`` rebuilds the same statistics from the retained raw
records in O(events); it exists so tests (and the replay driver's
``--verify`` path) can assert that the incremental bookkeeping never
drifts from a from-scratch recompute.

``window_drift`` condenses two snapshots into a scalar change measure —
the stability signal the daemon's retune guard uses to skip tuning when
the workload has not materially moved (the stability idea SAM argues
for in online tuners).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from repro.service.events import (
    JobCompleted,
    JobSubmitted,
    ServiceEvent,
    TaskCompleted,
)
from repro.stats.distributions import LognormalModel, PoissonProcessModel
from repro.workload.trace import (
    JobRecord,
    TaskRecord,
    Trace,
    job_record_from_dict,
    job_record_to_dict,
    task_record_from_dict,
    task_record_to_dict,
)


@dataclass(frozen=True)
class TenantWindowStats:
    """O(1)-derived summary of one tenant's rolling window.

    Attributes:
        tenant: Tenant (queue) name.
        jobs: Jobs completed inside the window.
        tasks: Task attempts observed inside the window.
        submitted: Jobs submitted inside the window.
        arrival_rate: Submissions per second over the window length.
        mean_response: Mean response time of the window's completed jobs.
        log_duration_mean: Mean of ``log(service_time)`` over completed
            attempts — the lognormal ``mu`` (Section 7.1).
        log_duration_std: Std of ``log(service_time)`` — the lognormal
            ``sigma``.
        preempted_fraction: Fraction of attempts that were preempted.
        failed_fraction: Fraction of attempts that failed.
        duration_samples: Completed attempts with a positive service
            time — the sample count behind ``log_duration_mean``/``std``
            (distinct from ``tasks``, which also counts preempted and
            failed attempts).  Carried so shard statistics are exactly
            mergeable: :meth:`merged` recovers the underlying log-sums
            from ``(mu, sigma, n)`` per part.
    """

    tenant: str
    jobs: int
    tasks: int
    submitted: int
    arrival_rate: float
    mean_response: float
    log_duration_mean: float
    log_duration_std: float
    preempted_fraction: float
    failed_fraction: float
    duration_samples: int = 0

    def duration_model(self) -> LognormalModel:
        """Lognormal task-duration model implied by the window."""
        return LognormalModel(
            mu=self.log_duration_mean, sigma=self.log_duration_std, minimum=0.01
        )

    def arrival_model(self) -> PoissonProcessModel:
        """Poisson arrival-process model implied by the window."""
        return PoissonProcessModel(rate=self.arrival_rate)

    @classmethod
    def merged(
        cls, parts: "Iterable[TenantWindowStats]", window: float
    ) -> "TenantWindowStats":
        """Combine same-tenant stats from disjoint windows (shards).

        Inverts the sums-to-stats formula per part — ``s_log = mu * n``,
        ``s2_log = (sigma^2 + mu^2) * n``, ``s_resp = mean * jobs`` —
        adds the recovered sums, and re-derives through the shared
        :func:`_stats_from_sums` formula, so merging N shard snapshots
        matches a single window that ingested every part's events to
        floating-point accumulation error.  The parts must describe
        disjoint event sets of the same tenant over the same window
        length (the per-tenant sharding invariant makes a tenant's
        stats live in exactly one shard, so in practice this merges a
        single part — the general form exists for verification and for
        resharding).
        """
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge zero stats parts")
        tenant = parts[0].tenant
        if any(p.tenant != tenant for p in parts):
            raise ValueError("merged() requires same-tenant parts")
        n_jobs = sum(p.jobs for p in parts)
        n_tasks = sum(p.tasks for p in parts)
        n_submits = sum(p.submitted for p in parts)
        n_dur = sum(p.duration_samples for p in parts)
        s_log = math.fsum(p.log_duration_mean * p.duration_samples for p in parts)
        s2_log = math.fsum(
            (p.log_duration_std**2 + p.log_duration_mean**2) * p.duration_samples
            for p in parts
        )
        n_pre = sum(round(p.preempted_fraction * p.tasks) for p in parts)
        n_fail = sum(round(p.failed_fraction * p.tasks) for p in parts)
        s_resp = math.fsum(p.mean_response * p.jobs for p in parts)
        return _stats_from_sums(
            tenant,
            window,
            n_jobs=n_jobs,
            n_tasks=n_tasks,
            n_submits=n_submits,
            n_dur=n_dur,
            s_log=s_log,
            s2_log=s2_log,
            n_pre=n_pre,
            n_fail=n_fail,
            s_resp=s_resp,
        )


class _KahanSum:
    """Compensated running sum supporting subtraction (eviction).

    Plain ``+=``/``-=`` drifts linearly with the event count (a multi-hour
    replay accumulates ~1e-6 absolute error on large response-time sums);
    Kahan compensation keeps the running value within a few ulps of the
    exact sum of the currently retained entries, which is what lets
    ``snapshot()`` match an ``fsum``-exact batch recompute within 1e-9.
    """

    __slots__ = ("value", "_comp")

    def __init__(self) -> None:
        self.value = 0.0
        self._comp = 0.0

    def add(self, x: float) -> None:
        y = x - self._comp
        t = self.value + y
        self._comp = (t - self.value) - y
        self.value = t

    def subtract(self, x: float) -> None:
        self.add(-x)


class _TenantAccumulator:
    """Per-tenant deques of window entries plus their running sums."""

    __slots__ = (
        "tasks",
        "jobs",
        "submits",
        "n_dur",
        "s_log",
        "s2_log",
        "n_pre",
        "n_fail",
        "s_resp",
        "scheduled",
    )

    def __init__(self) -> None:
        # Entries are (event_time, payload); event time orders eviction.
        self.tasks: deque[tuple[float, TaskRecord, float | None]] = deque()
        self.jobs: deque[tuple[float, JobRecord]] = deque()
        self.submits: deque[float] = deque()
        self.n_dur = 0
        self.s_log = _KahanSum()
        self.s2_log = _KahanSum()
        self.n_pre = 0
        self.n_fail = 0
        self.s_resp = _KahanSum()
        # Key of this tenant's live entry in the window's expiry heap:
        # always equal to the earliest retained entry time (inf when the
        # tenant has no heap entry yet).  Heap entries with other keys
        # are stale and skipped on pop.
        self.scheduled = math.inf

    def add_task(self, time: float, record: TaskRecord) -> None:
        log_dur: float | None = None
        if record.completed and record.service_time > 0:
            log_dur = math.log(record.service_time)
            self.n_dur += 1
            self.s_log.add(log_dur)
            self.s2_log.add(log_dur * log_dur)
        if record.preempted:
            self.n_pre += 1
        if record.failed:
            self.n_fail += 1
        self.tasks.append((time, record, log_dur))

    def add_job(self, time: float, record: JobRecord) -> None:
        self.s_resp.add(record.response_time)
        self.jobs.append((time, record))

    def evict(self, cutoff: float) -> None:
        while self.tasks and self.tasks[0][0] < cutoff:
            _, record, log_dur = self.tasks.popleft()
            if log_dur is not None:
                self.n_dur -= 1
                self.s_log.subtract(log_dur)
                self.s2_log.subtract(log_dur * log_dur)
            if record.preempted:
                self.n_pre -= 1
            if record.failed:
                self.n_fail -= 1
        while self.jobs and self.jobs[0][0] < cutoff:
            _, record = self.jobs.popleft()
            self.s_resp.subtract(record.response_time)
        while self.submits and self.submits[0] < cutoff:
            self.submits.popleft()

    def earliest(self) -> float | None:
        """Time of the earliest retained entry (None when empty)."""
        earliest: float | None = None
        if self.tasks:
            earliest = self.tasks[0][0]
        if self.jobs and (earliest is None or self.jobs[0][0] < earliest):
            earliest = self.jobs[0][0]
        if self.submits and (earliest is None or self.submits[0] < earliest):
            earliest = self.submits[0]
        return earliest


def _stats_from_sums(
    tenant: str,
    window: float,
    *,
    n_jobs: int,
    n_tasks: int,
    n_submits: int,
    n_dur: int,
    s_log: float,
    s2_log: float,
    n_pre: int,
    n_fail: int,
    s_resp: float,
) -> TenantWindowStats:
    """Shared sums-to-stats formula (identical for incremental and batch)."""
    mu = s_log / n_dur if n_dur else 0.0
    var = s2_log / n_dur - mu * mu if n_dur else 0.0
    # Cancellation guard: E[x^2] - E[x]^2 below the fp resolution of the
    # squared sums is indistinguishable from zero, and sqrt would blow
    # the residual up to ~1e-7; clamp it (identically on both the
    # incremental and the batch path) before taking the root.
    if n_dur and var < 1e-12 * max(s2_log / n_dur, 1.0):
        var = 0.0
    return TenantWindowStats(
        tenant=tenant,
        jobs=n_jobs,
        tasks=n_tasks,
        submitted=n_submits,
        arrival_rate=n_submits / window,
        mean_response=s_resp / n_jobs if n_jobs else 0.0,
        log_duration_mean=mu,
        log_duration_std=math.sqrt(max(var, 0.0)),
        preempted_fraction=n_pre / n_tasks if n_tasks else 0.0,
        failed_fraction=n_fail / n_tasks if n_tasks else 0.0,
        duration_samples=n_dur,
    )


class RollingWindow:
    """Per-tenant workload statistics over the trailing ``window`` seconds.

    ``ingest`` folds one telemetry event in with O(1) amortized work;
    entries are evicted as the clock (the maximum event time seen) moves
    past ``entry_time + window``.  Eviction is driven by a lazy min-heap
    of per-tenant earliest-expiry keys, so an advance touches only the
    tenants that actually hold expired entries — per-event cost is flat
    in the number of active tenants (5 or 500 tenants cost the same),
    where a naive sweep would scan every tenant on every event.
    ``ingest_many`` amortizes further: a whole batch is folded with a
    single clock advance at the end.

    Events are expected roughly in time order; bounded disorder (e.g.
    the tail of one replay chunk interleaving with the head of the next)
    only delays eviction of the out-of-order entries, and never
    desynchronizes the running sums from the retained records — the
    equivalence ``snapshot() == batch_recompute()`` holds
    unconditionally.
    """

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._now = 0.0
        self._tenants: dict[str, _TenantAccumulator] = {}
        self._events = 0
        #: Lazy eviction heap of (earliest entry time, tenant) keys.
        self._expiry: list[tuple[float, str]] = []

    def __repr__(self) -> str:
        return (
            f"RollingWindow(window={self.window:.0f}s, now={self._now:.0f}s, "
            f"tenants={sorted(self._tenants)}, events={self._events})"
        )

    @property
    def now(self) -> float:
        """Latest event/advance time seen."""
        return self._now

    @property
    def events_ingested(self) -> int:
        """Total telemetry events folded in since construction."""
        return self._events

    @property
    def tasks_retained(self) -> int:
        """Task entries currently inside the window."""
        return sum(len(acc.tasks) for acc in self._tenants.values())

    @property
    def jobs_retained(self) -> int:
        """Job entries currently inside the window."""
        return sum(len(acc.jobs) for acc in self._tenants.values())

    def tenants(self) -> list[str]:
        """Tenants with window state, sorted."""
        return sorted(self._tenants)

    def _acc(self, tenant: str) -> _TenantAccumulator:
        acc = self._tenants.get(tenant)
        if acc is None:
            acc = self._tenants[tenant] = _TenantAccumulator()
        return acc

    def _note_entry(self, name: str, acc: _TenantAccumulator, time: float) -> None:
        """Keep the expiry heap keyed by each tenant's earliest entry."""
        if time < acc.scheduled:
            acc.scheduled = time
            heapq.heappush(self._expiry, (time, name))

    def _fold(self, event: ServiceEvent) -> None:
        """Fold one telemetry event in without advancing the clock."""
        if isinstance(event, JobSubmitted):
            acc = self._acc(event.tenant)
            acc.submits.append(event.time)
            self._note_entry(event.tenant, acc, event.time)
        elif isinstance(event, TaskCompleted):
            acc = self._acc(event.record.tenant)
            acc.add_task(event.time, event.record)
            self._note_entry(event.record.tenant, acc, event.time)
        elif isinstance(event, JobCompleted):
            acc = self._acc(event.record.tenant)
            acc.add_job(event.time, event.record)
            self._note_entry(event.record.tenant, acc, event.time)
        else:
            raise TypeError(
                f"RollingWindow cannot ingest {type(event).__name__}; "
                "control events are handled by TempoService"
            )
        self._events += 1

    def ingest(self, event: ServiceEvent) -> None:
        """Fold one telemetry event into the window (O(1) amortized)."""
        self._fold(event)
        self.advance(event.time)

    def ingest_many(self, events: Iterable[ServiceEvent]) -> None:
        """Fold a batch of telemetry events with one clock advance.

        Equivalent to calling :meth:`ingest` per event — the retained
        entry set after the batch is identical, because eviction depends
        only on the final cutoff — but the eviction pass runs once at
        the batch's maximum event time instead of per event.
        """
        latest = self._now
        for event in events:
            self._fold(event)
            if event.time > latest:
                latest = event.time
        self.advance(latest)

    def advance(self, now: float) -> None:
        """Move the clock forward (monotonically) and evict expired entries.

        Amortized O(1) per ingested event: the expiry heap is keyed by
        each tenant's earliest retained entry, so only tenants that
        actually hold expired entries are touched — tenants whose window
        is quiet cost nothing, however many there are.  Tenants whose
        every entry has expired are forgotten entirely, so a
        long-running daemon's footprint stays proportional to the
        *currently active* tenants, not every tenant ever seen.
        """
        if now > self._now:
            self._now = now
        cutoff = self._now - self.window
        heap = self._expiry
        while heap and heap[0][0] < cutoff:
            key, name = heapq.heappop(heap)
            acc = self._tenants.get(name)
            if acc is None or key != acc.scheduled:
                continue  # stale: tenant dropped, or superseded by a smaller key
            acc.evict(cutoff)
            nxt = acc.earliest()
            if nxt is None:
                del self._tenants[name]
            else:
                acc.scheduled = nxt
                heapq.heappush(heap, (nxt, name))

    def drop_tenant(self, tenant: str) -> None:
        """Forget a departed tenant's window state entirely."""
        self._tenants.pop(tenant, None)

    def snapshot(self) -> dict[str, TenantWindowStats]:
        """Per-tenant stats from the running sums — O(tenants), no scan."""
        return {
            name: _stats_from_sums(
                name,
                self.window,
                n_jobs=len(acc.jobs),
                n_tasks=len(acc.tasks),
                n_submits=len(acc.submits),
                n_dur=acc.n_dur,
                s_log=acc.s_log.value,
                s2_log=acc.s2_log.value,
                n_pre=acc.n_pre,
                n_fail=acc.n_fail,
                s_resp=acc.s_resp.value,
            )
            for name, acc in self._tenants.items()
        }

    def batch_recompute(self) -> dict[str, TenantWindowStats]:
        """Recompute stats from the retained raw records — O(events).

        Verification-only path: a fresh scan over the deques that must
        agree with :meth:`snapshot` to floating-point accumulation error
        (~1e-12), proving the incremental add/subtract bookkeeping exact.
        """
        out: dict[str, TenantWindowStats] = {}
        for name, acc in self._tenants.items():
            log_durs = [
                math.log(record.service_time)
                for _, record, _ in acc.tasks
                if record.completed and record.service_time > 0
            ]
            n_dur = len(log_durs)
            s_log = math.fsum(log_durs)
            s2_log = math.fsum(d * d for d in log_durs)
            n_pre = sum(1 for _, record, _ in acc.tasks if record.preempted)
            n_fail = sum(1 for _, record, _ in acc.tasks if record.failed)
            s_resp = math.fsum(record.response_time for _, record in acc.jobs)
            out[name] = _stats_from_sums(
                name,
                self.window,
                n_jobs=len(acc.jobs),
                n_tasks=len(acc.tasks),
                n_submits=len(acc.submits),
                n_dur=n_dur,
                s_log=s_log,
                s2_log=s2_log,
                n_pre=n_pre,
                n_fail=n_fail,
                s_resp=s_resp,
            )
        return out

    def to_state(self) -> dict:
        """JSON-ready dump of the retained raw entries (snapshot payload).

        Only the raw records are persisted, never the running sums:
        :meth:`from_state` refolds every retained entry through the same
        accumulator arithmetic, so a restored window's incremental
        statistics are again verifiable against ``batch_recompute`` —
        there is no second, subtly different serialization of the sums
        to drift out of agreement.
        """
        return {
            "window": self.window,
            "now": self._now,
            "events": self._events,
            "tenants": {
                name: {
                    "tasks": [
                        [t, task_record_to_dict(rec)] for t, rec, _ in acc.tasks
                    ],
                    "jobs": [[t, job_record_to_dict(rec)] for t, rec in acc.jobs],
                    "submits": list(acc.submits),
                }
                for name, acc in self._tenants.items()
            },
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "RollingWindow":
        """Rebuild a window from :meth:`to_state` output.

        Entries are refolded in retention order, so eviction order and
        the running sums are reconstructed from first principles.
        """
        window = cls(state["window"])
        for name, slot in state["tenants"].items():
            acc = window._acc(name)
            for t, row in slot["tasks"]:
                acc.add_task(float(t), task_record_from_dict(row))
            for t, row in slot["jobs"]:
                acc.add_job(float(t), job_record_from_dict(row))
            acc.submits.extend(float(t) for t in slot["submits"])
            earliest = acc.earliest()
            if earliest is not None:
                window._note_entry(name, acc, earliest)
        window._now = float(state["now"])
        window._events = int(state["events"])
        return window

    @classmethod
    def merge_states(cls, states: Iterable[Mapping]) -> "RollingWindow":
        """Rebuild ONE window from several shards' :meth:`to_state` dumps.

        The control plane's view of a sharded data plane: every shard's
        retained raw entries are refolded through the same accumulator
        arithmetic as :meth:`from_state`, so the merged window's
        incremental statistics are verifiable against
        :meth:`batch_recompute` and — because sharding partitions events
        by tenant — identical (to floating-point accumulation error,
        well under 1e-9) to a single window that ingested the whole
        stream.  A tenant appearing in several states (only possible
        outside the per-tenant routing invariant, e.g. mid-reshard) has
        its entries interleaved in time order before refolding.  All
        states must share the same window length; the merged clock is
        the maximum of the parts'.
        """
        states = list(states)
        if not states:
            raise ValueError("cannot merge zero window states")
        length = float(states[0]["window"])
        if any(float(s["window"]) != length for s in states):
            raise ValueError("merge_states requires equal window lengths")
        merged = cls(length)
        slots: dict[str, dict[str, list]] = {}
        multi: set[str] = set()
        for state in states:
            for name, slot in state["tenants"].items():
                mine = slots.get(name)
                if mine is None:
                    slots[name] = {
                        "tasks": list(slot["tasks"]),
                        "jobs": list(slot["jobs"]),
                        "submits": list(slot["submits"]),
                    }
                else:
                    multi.add(name)
                    mine["tasks"].extend(slot["tasks"])
                    mine["jobs"].extend(slot["jobs"])
                    mine["submits"].extend(slot["submits"])
        for name in multi:
            # Stable sort on entry time keeps each part's internal
            # order, reconstructing one plausible arrival interleaving.
            slots[name]["tasks"].sort(key=lambda pair: pair[0])
            slots[name]["jobs"].sort(key=lambda pair: pair[0])
            slots[name]["submits"].sort()
        for name, slot in slots.items():
            acc = merged._acc(name)
            for t, row in slot["tasks"]:
                acc.add_task(float(t), task_record_from_dict(row))
            for t, row in slot["jobs"]:
                acc.add_job(float(t), job_record_from_dict(row))
            acc.submits.extend(float(t) for t in slot["submits"])
            earliest = acc.earliest()
            if earliest is not None:
                merged._note_entry(name, acc, earliest)
        merged._now = max(float(s["now"]) for s in states)
        merged._events = sum(int(s["events"]) for s in states)
        return merged

    def trace(self, capacity: Mapping[str, int] | None = None) -> Trace:
        """The window's retained records as a Trace re-anchored to t=0.

        This is what the daemon hands to
        :meth:`~repro.core.controller.TempoController.tune_from_trace`.
        Jobs *submitted before the window opening* are dropped — the QS
        job set ``J_i`` is defined over jobs submitted and completed
        within the interval (Section 5.1), and clamping their submission
        instant instead would silently truncate exactly the long
        response times the tuner must react to.  Their task records are
        kept (clamped to the window start), since task telemetry still
        informs utilization and preemption within the interval.
        """
        start = max(0.0, self._now - self.window)
        horizon = max(self._now - start, 1e-9)
        tasks: list[TaskRecord] = []
        jobs: list[JobRecord] = []
        for acc in self._tenants.values():
            for _, record, _ in acc.tasks:
                finish = max(record.finish_time - start, 0.0)
                begin = min(max(record.start_time - start, 0.0), finish)
                submit = min(max(record.submit_time - start, 0.0), begin)
                tasks.append(
                    replace(
                        record,
                        submit_time=submit,
                        start_time=begin,
                        finish_time=finish,
                    )
                )
            for _, record in acc.jobs:
                if record.submit_time < start:
                    continue
                deadline = (
                    None if record.deadline is None else record.deadline - start
                )
                jobs.append(
                    replace(
                        record,
                        submit_time=record.submit_time - start,
                        finish_time=max(record.finish_time - start, 0.0),
                        deadline=deadline,
                    )
                )
        return Trace(tasks, jobs, capacity=capacity, horizon=horizon)


def stats_gap(window: "RollingWindow") -> float:
    """Largest deviation between incremental and batch-recomputed stats.

    Scans every tenant and every numeric field of
    :class:`TenantWindowStats`; a healthy window reports a gap at
    floating-point accumulation level (< 1e-9 by a wide margin).
    """
    incremental = window.snapshot()
    batch = window.batch_recompute()
    if set(incremental) != set(batch):
        return math.inf
    gap = 0.0
    fields = (
        "jobs",
        "tasks",
        "submitted",
        "arrival_rate",
        "mean_response",
        "log_duration_mean",
        "log_duration_std",
        "preempted_fraction",
        "failed_fraction",
        "duration_samples",
    )
    for name, inc in incremental.items():
        ref = batch[name]
        for field_name in fields:
            gap = max(gap, abs(getattr(inc, field_name) - getattr(ref, field_name)))
    return gap


def window_drift(
    previous: Mapping[str, TenantWindowStats],
    current: Mapping[str, TenantWindowStats],
) -> float:
    """Scalar drift between two window snapshots (stability signal).

    The maximum, over tenants, of the symmetric relative change in
    arrival rate and the absolute change in the lognormal duration
    parameters (``mu``/``sigma`` live on a log scale, so an absolute
    delta of 0.1 already means ~10% duration change).  A tenant
    appearing or disappearing is infinite drift — churn always warrants
    a retune.  Tenants with no jobs on either side are ignored.
    """
    worst = 0.0
    for name in set(previous) | set(current):
        a, b = previous.get(name), current.get(name)
        if a is None or b is None:
            present = a if b is None else b
            if present.submitted == 0 and present.jobs == 0:
                continue
            return math.inf
        denom = (abs(a.arrival_rate) + abs(b.arrival_rate)) / 2.0 + 1e-12
        worst = max(
            worst,
            abs(b.arrival_rate - a.arrival_rate) / denom,
            abs(b.log_duration_mean - a.log_duration_mean),
            abs(b.log_duration_std - a.log_duration_std),
        )
    return worst
