"""Per-tenant sharded data plane for the serving pipeline.

PR 3 left the durable ingest path a single-threaded ceiling: one
``EventBus`` feeding one ``RollingWindow`` and one ``EventJournal``.
This module splits the serving stack into two planes:

* **Data plane** — N :class:`IngestShard` instances, each owning its own
  bounded :class:`~repro.service.events.EventBus`, its own
  :class:`~repro.service.ingest.RollingWindow`, and (when durable) its
  own :class:`~repro.service.journal.EventJournal` under
  ``<state-dir>/shard-NN/journal/``.  A :class:`ShardRouter` assigns
  every tenant to exactly one shard with a **stable** hash
  (``crc32(tenant) % shards`` — identical across processes and Python
  runs, unlike the salted builtin ``hash``), so a tenant's whole window
  state lives in one place and shard statistics merge by plain union.
* **Control plane** — :class:`~repro.service.daemon.TempoService` keeps
  the retune cadence, the guards, the controller, and the
  decision/config/rollback journal; at each cadence tick it drains every
  shard's window state, merges them through
  :meth:`~repro.service.ingest.RollingWindow.merge_states`, and tunes
  exactly as the unsharded daemon would.

Shards run **in-process** (the default — same thread, zero IPC) or as
**worker processes** (:class:`ShardWorkerHandle`): each worker owns its
journal and window and receives event batches over a ``multiprocessing``
queue, so journal encoding — the measured ingest bottleneck — runs on
every core instead of one.  Both modes write byte-identical journals
(same routing, same order, same encoder, same sequence numbers), so
resume never cares how the journals were produced.

Because the single-shard daemon journals through the unchanged PR 2/3
path, ``--shards 1`` output stays byte-identical to the pre-sharding
pipeline and every existing durability guarantee carries over.

Crash-recovery coordination: the chunk-boundary ``Heartbeat`` the replay
driver emits is **broadcast** — journaled in the control journal *and*
every shard journal — so recovery can rewind all N+1 journals to one
common completed-chunk boundary (see
``ServiceState.rewind_to_heartbeat``).

**Supervision** (the failover plane, see :mod:`repro.service.failover`):
each worker runs a daemon heartbeat thread that keeps beating even while
the command loop crunches batches, so the parent can tell a *busy*
worker from a *dead* one.  Three failure signals surface as a typed
:class:`ShardFailedError`: the process exited (``process-exit``),
heartbeats stopped (``heartbeat-timeout``), or a synchronous barrier
reply outlived ``failover_after`` (``reply-timeout`` — catches a worker
that is alive and beating but wedged).  Unsupervised handles
(``failover_after=None``) keep the legacy generous
:attr:`ShardWorkerHandle.REPLY_TIMEOUT` bound.
"""

from __future__ import annotations

import multiprocessing as mp
import zlib
from time import monotonic as _monotonic
from typing import Iterable, Mapping, Protocol, runtime_checkable

from repro.service.events import (
    EventBus,
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    ServiceEvent,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.ingest import RollingWindow

#: Directory name of shard ``i`` under a state dir.
SHARD_DIR_FMT = "shard-{:02d}"

#: Telemetry event types folded into a shard's rolling window.
_TELEMETRY_EVENTS = (JobSubmitted, TaskCompleted, JobCompleted)


class ShardFailedError(RuntimeError):
    """A data-plane shard failed and needs failover.

    Subclasses :class:`RuntimeError` so pre-failover call sites that
    caught the untyped worker error keep working; supervision-aware
    callers (the daemon's drain barriers) catch this type specifically
    and run :meth:`~repro.service.daemon.TempoService.failover_shard`
    instead of crashing the control plane.
    """

    def __init__(self, shard_id: int, reason: str, message: str | None = None):
        super().__init__(message or f"shard {shard_id} failed: {reason}")
        #: Which shard failed.
        self.shard_id = int(shard_id)
        #: Short detection cause: ``process-exit``, ``heartbeat-timeout``,
        #: ``reply-timeout``, ``worker-error``, or an injected fault name.
        self.reason = str(reason)


class ShardPartitionedError(RuntimeError):
    """A shard is unreachable but not (yet) declared failed.

    The transport raises it from synchronous barriers while a network
    partition is in flight and the outage is still inside
    ``failover_after``.  Deliberately **not** a
    :class:`ShardFailedError` subclass: the supervised retry wrapper
    must let it propagate so the control plane can serve stale merged
    statistics (degraded mode) instead of triggering a failover the
    partition policy says is premature.
    """

    def __init__(self, shard_id: int, message: str | None = None):
        super().__init__(message or f"shard {shard_id} partitioned")
        #: Which shard is unreachable.
        self.shard_id = int(shard_id)


@runtime_checkable
class ShardHandle(Protocol):
    """Minimal surface the control plane needs from any shard.

    Implemented by the in-process :class:`IngestShard`, the
    ``multiprocessing`` :class:`ShardWorkerHandle`, and the TCP
    :class:`~repro.service.transport.RemoteShardHandle`, so the daemon,
    its drain barriers, and ``failover_shard`` stay transport-agnostic:
    they call this protocol and probe optional capabilities (``kill``
    for fencing, ``stall``/``slow_journal``/``inject_*`` for fault
    injection) with ``getattr``, never ``isinstance`` on a concrete
    handle class.

    ``alive`` is an attribute/property (liveness), ``heartbeat_age``
    the freshness signal the failure detector consumes, ``ingest`` the
    asynchronous dispatch, ``drain_state``/``drain_stats`` the
    synchronous barriers, and ``restore``/``close`` lifecycle.
    """

    shard_id: int

    def ingest(self, events: list[ServiceEvent]) -> None:
        """Dispatch one event batch (may return before it is applied)."""

    def drain_state(self, now: float) -> dict:
        """Barrier: apply queued batches, advance, return window state."""

    def drain_stats(self, now: float) -> dict:
        """Barrier: apply queued batches, return per-tenant statistics."""

    def heartbeat_age(self) -> float:
        """Seconds since the shard last proved liveness (0 = in-process)."""

    def restore(self, window_state: Mapping) -> None:
        """Replace the shard's window with a persisted state."""

    def close(self) -> None:
        """Stop the shard, flushing its journal."""


def shard_dir_name(shard_id: int) -> str:
    """Directory name of one shard's durable home (``shard-NN``)."""
    return SHARD_DIR_FMT.format(shard_id)


def stable_shard(tenant: str, shards: int) -> int:
    """Deterministic tenant-to-shard assignment, stable across processes.

    ``crc32`` rather than ``hash``: the builtin string hash is salted
    per interpreter, and a routing function that changes between runs
    would scatter a resumed daemon's tenants across the wrong journals.
    """
    if shards <= 1:
        return 0
    return zlib.crc32(tenant.encode("utf-8")) % shards


def tenant_of(event: ServiceEvent) -> str | None:
    """The tenant an event is scoped to (None for cluster-level events)."""
    if isinstance(event, (TaskCompleted, JobCompleted)):
        return event.record.tenant
    tenant = getattr(event, "tenant", None)
    return tenant if isinstance(tenant, str) else None


class ShardRouter:
    """Stable tenant-hash routing of telemetry onto N shards.

    Tenant-scoped events (job/task telemetry and tenant churn) route to
    ``crc32(tenant) % shards``; cluster-level control events (node
    loss/recovery) belong to the control plane; heartbeats are broadcast
    (control plane *and* every shard) so all journals share chunk
    boundaries.  Routing decisions are memoized per tenant — the hot
    path is one dict hit.
    """

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        self._assignment: dict[str, int] = {}

    def __repr__(self) -> str:
        return f"ShardRouter(shards={self.shards}, tenants={len(self._assignment)})"

    def shard_of(self, tenant: str) -> int:
        """Owning shard of ``tenant`` (memoized stable hash)."""
        shard = self._assignment.get(tenant)
        if shard is None:
            shard = self._assignment[tenant] = stable_shard(tenant, self.shards)
        return shard

    def route(self, event: ServiceEvent) -> int | None:
        """Owning shard of one event, or ``None`` for control-plane events."""
        tenant = tenant_of(event)
        if tenant is None:
            return None
        return self.shard_of(tenant)

    def partition(
        self, events: Iterable[ServiceEvent]
    ) -> tuple[list[list[ServiceEvent]], list[ServiceEvent]]:
        """Split a batch into per-shard lists plus the control-plane list.

        Relative order is preserved within every output list.
        Heartbeats appear in the control list *and* every shard list
        (the broadcast that keeps chunk boundaries common across
        journals); all other cluster-level events appear only in the
        control list.
        """
        parts: list[list[ServiceEvent]] = [[] for _ in range(self.shards)]
        control: list[ServiceEvent] = []
        shard_of = self.shard_of
        for event in events:
            tenant = tenant_of(event)
            if tenant is not None:
                parts[shard_of(tenant)].append(event)
            elif isinstance(event, Heartbeat):
                control.append(event)
                for part in parts:
                    part.append(event)
            else:
                control.append(event)
        return parts, control


class IngestShard:
    """One data-plane worker: own bus, own rolling window, own journal.

    The shard's contract mirrors the unsharded pipeline's per-chunk
    semantics exactly: a batch is journaled **write-ahead** with one
    group commit (:meth:`~repro.service.journal.EventJournal.
    append_events`), telemetry folds through
    :meth:`~repro.service.ingest.RollingWindow.ingest_many` with one
    eviction pass, and tenant-churn events flush pending telemetry
    before acting, so a departing tenant's window state is dropped at
    exactly the stream position the per-event path would drop it.

    The shard never retunes and never looks at other shards — the
    control plane merges window states at cadence ticks.  ``bus`` is
    the shard's bounded intake queue for daemon-style feeding
    (:meth:`submit` + :meth:`flush_bus`); the batch pipeline bypasses
    it and hands lists straight to :meth:`ingest`.
    """

    #: In-process shards never fail on their own; the fault injector's
    #: :class:`~repro.service.failover.DeadShard` stand-in flips this.
    alive = True

    def __init__(
        self,
        shard_id: int,
        window: float,
        *,
        journal=None,
        queue_capacity: int = 100_000,
        metrics=None,
    ):
        self.shard_id = int(shard_id)
        self.window = RollingWindow(window)
        self.bus = EventBus(queue_capacity)
        self.journal = journal
        #: Shard-local metrics registry (or ``None``): the shard counts
        #: its own ingest and journal activity without cross-shard
        #: locking; the control plane merges dumps at drain barriers.
        self.metrics = metrics
        if metrics is not None:
            if journal is not None:
                journal.metrics = metrics
            self._m_events = metrics.counter(
                "tempo_ingest_events_total", "Events folded into the window."
            )
            self._m_batches = metrics.counter(
                "tempo_ingest_batches_total", "Ingest batches processed."
            )
        else:
            self._m_events = None
            self._m_batches = None

    def __repr__(self) -> str:
        return (
            f"IngestShard(id={self.shard_id}, tenants={len(self.window.tenants())}, "
            f"seq={self.last_seq})"
        )

    @property
    def last_seq(self) -> int:
        """Newest journaled sequence number (0 without a journal)."""
        return 0 if self.journal is None else self.journal.last_seq

    def ingest(self, events: list[ServiceEvent]) -> None:
        """Journal a batch write-ahead, then fold it into the window."""
        if not events:
            return
        if self.journal is not None:
            self.journal.append_events(events)
        if self._m_events is not None:
            self._m_events.inc(len(events))
            self._m_batches.inc()
        self.fold(events)

    def fold(self, events: list[ServiceEvent]) -> None:
        """Apply a batch to the window only (the resume-replay path)."""
        window = self.window
        pending: list[ServiceEvent] = []
        for event in events:
            if isinstance(event, _TELEMETRY_EVENTS):
                pending.append(event)
            else:
                # Control events (heartbeat broadcast, tenant churn)
                # flush pending telemetry first so their effect lands at
                # the exact stream position, then advance the clock.
                if pending:
                    window.ingest_many(pending)
                    pending.clear()
                if isinstance(event, TenantLeft):
                    window.drop_tenant(event.tenant)
                window.advance(event.time)
        if pending:
            window.ingest_many(pending)

    def submit(self, event: ServiceEvent) -> bool:
        """Publish onto the shard's bounded intake bus (False when shed)."""
        return self.bus.publish(event)

    def flush_bus(self, limit: int | None = None) -> int:
        """Ingest everything queued on the intake bus; returns the count."""
        events = self.bus.drain(limit)
        if events:
            self.ingest(events)
        return len(events)

    def advance(self, now: float) -> None:
        """Move the shard clock forward (evicting expired entries)."""
        self.window.advance(now)

    def heartbeat_age(self) -> float:
        """Always fresh: an in-process shard shares the caller's thread."""
        return 0.0

    def drain_state(self, now: float) -> dict:
        """Advance to ``now`` and dump the shard's mergeable state.

        The control plane calls this when it needs the *full* window —
        an applied tune's trace, a durability snapshot — the returned
        dict is what :meth:`RollingWindow.merge_states` consumes, plus
        the shard's journal position (for snapshot coverage).
        """
        self.window.advance(now)
        state = {
            "shard": self.shard_id,
            "window": self.window.to_state(),
            "seq": self.last_seq,
        }
        if self.metrics is not None:
            state["metrics"] = self.metrics.to_dict()
        return state

    def drain_stats(self, now: float) -> dict:
        """Advance to ``now`` and return per-tenant statistics only.

        The cadence tick's cheap path: O(tenants) running-sums
        snapshots (and, in worker mode, a few hundred bytes over the
        queue) instead of the full O(retained-entries) window dump —
        the guards decide on merged statistics, and the full state is
        only drained when a tune actually proceeds.
        """
        self.window.advance(now)
        return self.window.snapshot()

    def restore(self, window_state: Mapping) -> None:
        """Replace the shard's window with a persisted state."""
        self.window = RollingWindow.from_state(window_state)

    def close(self) -> None:
        """Close the shard journal (pending appends are flushed)."""
        if self.journal is not None:
            self.journal.close()


# -- worker processes ---------------------------------------------------------


def _worker_main(
    shard_id: int,
    window: float,
    journal_path,
    journal_opts: dict,
    commands,
    replies,
    observe: bool = False,
    beats=None,
    heartbeat_interval: float = 1.0,
) -> None:
    """Entry point of one shard worker process.

    Owns the shard end-to-end: the journal is opened *inside* the worker
    (never in the parent, whose open would race the worker's tail
    repair), commands arrive over ``commands``, and every synchronous
    command answers on ``replies``.  Any failure is reported on
    ``replies`` and ends the worker — a dead shard must surface at the
    parent's next sync point, not vanish.

    When ``beats`` is given, a daemon thread puts one liveness beat on
    it every ``heartbeat_interval`` seconds.  The thread beats through
    batch processing (and through an injected ``stall``), so heartbeat
    age distinguishes *dead* from *busy*; only an actual process exit
    or a wedged reply trips the detector.  The ``stall`` and ``slow``
    commands exist for the fault injector: ``stall`` sleeps the command
    loop (the worker stays alive and beating but stops replying) and
    ``slow`` degrades the next N batches to per-record journal appends
    (byte-identical records, group commit disabled — pure latency).
    """
    import threading
    import time as _time

    from repro.service.journal import EventJournal  # local: after fork

    if beats is not None:
        stop_beating = threading.Event()

        def _beat() -> None:
            while not stop_beating.is_set():
                try:
                    beats.put_nowait(_time.monotonic())
                except Exception:  # queue torn down at exit
                    return
                if stop_beating.wait(heartbeat_interval):
                    return

        threading.Thread(
            target=_beat, name=f"tempo-shard-{shard_id:02d}-beat", daemon=True
        ).start()

    journal = None
    slow_batches = 0
    try:
        if journal_path is not None:
            journal = EventJournal(journal_path, **journal_opts)
        metrics = None
        if observe:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        shard = IngestShard(shard_id, window, journal=journal, metrics=metrics)
        while True:
            command = commands.get()
            op = command[0]
            if op == "ingest":
                if slow_batches > 0:
                    slow_batches -= 1
                    for event in command[1]:
                        shard.ingest([event])
                else:
                    shard.ingest(command[1])
            elif op == "state":
                replies.put(("state", shard.drain_state(command[1])))
            elif op == "stats":
                replies.put(("stats", shard.drain_stats(command[1])))
            elif op == "restore":
                shard.restore(command[1])
                replies.put(("ok", shard_id))
            elif op == "stall":
                _time.sleep(command[1])
            elif op == "slow":
                slow_batches += int(command[1])
            elif op == "stop":
                shard.close()
                replies.put(("stopped", shard_id))
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown shard command {op!r}")
    except BaseException as exc:
        try:
            if journal is not None:
                journal.close()
        finally:
            replies.put(("error", f"{type(exc).__name__}: {exc}"))


class ShardWorkerHandle:
    """Parent-side proxy of one shard worker process.

    Implements the same surface the control plane uses on an in-process
    :class:`IngestShard` — :meth:`ingest` (asynchronous: the batch is
    enqueued and the call returns), :meth:`drain_state` (synchronous
    barrier: the reply necessarily follows every batch queued before
    it, so the returned window state covers them all), :meth:`restore`,
    and :meth:`close`.  Durability therefore lags acknowledgement by
    the queue depth, exactly like ``--async-journal``: batches still
    queued at a crash are the torn tail recovery already rewinds past.
    """

    #: Seconds to wait on a synchronous reply before declaring the
    #: worker dead (generous: a drain waits behind queued batches).
    #: ``failover_after`` tightens this bound when supervision is on.
    REPLY_TIMEOUT = 120.0

    def __init__(
        self,
        shard_id: int,
        window: float,
        journal_path=None,
        journal_opts: Mapping | None = None,
        observe: bool = False,
        heartbeat_interval: float = 1.0,
        failover_after: float | None = None,
    ):
        self.shard_id = int(shard_id)
        #: Batches queued since the last synchronous barrier — the
        #: parent-side view of this worker's queue lag.
        self.pending_batches = 0
        #: Seconds the worker emits one liveness beat per.
        self.heartbeat_interval = float(heartbeat_interval)
        #: Supervised reply bound (``None``: legacy unsupervised mode
        #: with the generous :attr:`REPLY_TIMEOUT`).
        self.failover_after = None if failover_after is None else float(failover_after)
        ctx = mp.get_context("fork")
        self._commands = ctx.Queue()
        self._replies = ctx.Queue()
        self._beats = ctx.Queue()
        self._last_beat = _monotonic()
        self._process = ctx.Process(
            target=_worker_main,
            args=(
                self.shard_id,
                float(window),
                None if journal_path is None else str(journal_path),
                dict(journal_opts or {}),
                self._commands,
                self._replies,
                bool(observe),
                self._beats,
                self.heartbeat_interval,
            ),
            name=f"tempo-shard-{shard_id:02d}",
            daemon=True,
        )
        self._process.start()

    def __repr__(self) -> str:
        alive = self._process.is_alive()
        return f"ShardWorkerHandle(id={self.shard_id}, alive={alive})"

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self._process.is_alive()

    def heartbeat_age(self) -> float:
        """Seconds since the worker's newest liveness beat.

        Drains the beat queue (newest beat wins; ``monotonic`` is
        system-wide on Linux so worker stamps compare directly with the
        parent clock).  The beat thread keeps beating while the command
        loop crunches a batch, so a large age means the *process* is
        gone or wedged, not merely busy.
        """
        import queue as _queue

        while True:
            try:
                stamp = self._beats.get_nowait()
            except (_queue.Empty, OSError, ValueError):
                break
            if stamp > self._last_beat:
                self._last_beat = stamp
        return max(0.0, _monotonic() - self._last_beat)

    def kill(self) -> None:
        """SIGKILL the worker process and reap it (fault injection)."""
        self._process.kill()
        self._process.join(timeout=10.0)
        self._release_queues()

    def _release_queues(self) -> None:
        """Drop the queue buffers once the worker is gone.

        A queue feeder thread flushing buffered batches into a pipe no
        process will ever read blocks — and ``multiprocessing`` joins
        feeder threads at interpreter exit, so a SIGKILLed worker whose
        command queue still held data would hang shutdown forever.
        """
        for queue in (self._commands, self._replies, self._beats):
            try:
                queue.cancel_join_thread()
                queue.close()
            except (OSError, ValueError):
                pass  # already closed

    def stall(self, seconds: float) -> None:
        """Inject a command-loop stall: the worker sleeps but keeps beating."""
        self._commands.put(("stall", float(seconds)))

    def slow_journal(self, batches: int) -> None:
        """Degrade the next ``batches`` ingests to per-record appends."""
        self._commands.put(("slow", int(batches)))

    def ingest(self, events: list[ServiceEvent]) -> None:
        """Queue one batch for the worker (returns immediately).

        Supervised handles check liveness first — enqueueing onto a dead
        worker would silently drop the batch until the next barrier.
        """
        if events:
            if self.failover_after is not None and not self._process.is_alive():
                raise ShardFailedError(self.shard_id, "process-exit")
            self.pending_batches += 1
            self._commands.put(("ingest", events))

    def drain_state(self, now: float) -> dict:
        """Barrier: process every queued batch, advance, return state."""
        self._commands.put(("state", now))
        state = self._reply("state")
        self.pending_batches = 0
        return state

    def drain_stats(self, now: float) -> dict:
        """Barrier returning only per-tenant statistics (cadence path)."""
        self._commands.put(("stats", now))
        stats = self._reply("stats")
        self.pending_batches = 0
        return stats

    def restore(self, window_state: Mapping) -> None:
        """Replace the worker's window with a persisted state."""
        self._commands.put(("restore", dict(window_state)))
        self._reply("ok")

    def close(self) -> None:
        """Stop the worker, flushing its journal; join the process."""
        if self._process.is_alive():
            try:
                self._commands.put(("stop",))
                self._reply("stopped")
            except RuntimeError:
                pass  # already dead; join below reaps it either way
        self._process.join(timeout=10.0)
        self._release_queues()

    def _reply(self, expected: str):
        import queue as _queue

        bound = (
            self.REPLY_TIMEOUT if self.failover_after is None else self.failover_after
        )
        deadline = _monotonic() + bound
        # Poll in short slices so a worker that died mid-batch surfaces
        # within ~0.2s instead of blocking the control plane on a reply
        # that will never come (the latent drain-barrier hang).
        while True:
            try:
                kind, payload = self._replies.get(timeout=0.2)
            except _queue.Empty:
                if not self._process.is_alive():
                    raise ShardFailedError(
                        self.shard_id,
                        "process-exit",
                        f"shard worker {self.shard_id} died without replying",
                    ) from None
                if _monotonic() > deadline:
                    raise ShardFailedError(
                        self.shard_id,
                        "reply-timeout",
                        f"shard worker {self.shard_id} reply timed out "
                        f"after {bound:g}s",
                    ) from None
                continue
            if kind == "error":
                raise ShardFailedError(
                    self.shard_id,
                    "worker-error",
                    f"shard worker {self.shard_id} failed: {payload}",
                )
            if kind != expected:  # pragma: no cover - protocol misuse
                raise RuntimeError(
                    f"shard worker {self.shard_id}: expected {expected!r} "
                    f"reply, got {kind!r}"
                )
            return payload


def start_shard_workers(
    shards: int,
    window: float,
    journal_paths: list | None,
    journal_opts: Mapping | None = None,
    observe: bool = False,
    heartbeat_interval: float = 1.0,
    failover_after: float | None = None,
) -> list[ShardWorkerHandle]:
    """Spawn one worker process per shard; returns their handles.

    ``journal_paths`` is either ``None`` (no durability) or one path per
    shard; the journals are opened inside the workers.  With ``observe``
    each worker builds a shard-local metrics registry whose dump rides
    back on every :meth:`~ShardWorkerHandle.drain_state` barrier.
    ``failover_after`` turns on supervision: barriers bound their reply
    wait by it and raise :class:`ShardFailedError` instead of the
    legacy 120s untyped timeout.
    """
    return [
        ShardWorkerHandle(
            i,
            window,
            None if journal_paths is None else journal_paths[i],
            journal_opts,
            observe=observe,
            heartbeat_interval=heartbeat_interval,
            failover_after=failover_after,
        )
        for i in range(shards)
    ]
