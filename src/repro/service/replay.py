"""Scenario replay: drive archived or synthetic load through the daemon.

The serving layer is only as good as the situations it has been driven
through.  This module provides a catalog of *scenarios* — named,
seedable stress situations layered on :mod:`repro.workload.patterns` —
and a :class:`ScenarioReplayer` that feeds a scenario's telemetry
through a :class:`~repro.service.daemon.TempoService` end-to-end at a
configurable speedup factor:

* ``steady`` — the two-tenant EC2 mix at stationary load;
* ``flash-crowd`` — a sudden multi-x arrival surge on the best-effort
  tenant (a viral dashboard, a incident-response query storm);
* ``diurnal-wave`` — strong day/night modulation on both tenants
  (Section 2.4's temporal patterns, compressed);
* ``tenant-churn`` — a batch tenant joins mid-run and leaves again,
  emitting :class:`~repro.service.events.TenantJoined`/``TenantLeft``;
* ``failure-storm`` — harsh cluster noise plus periodic
  :class:`~repro.service.events.NodeLost` bursts.

The replayer is the "production side" of the serving loop: per chunk of
simulated time it executes the scenario workload on the noisy
:class:`~repro.sim.simulator.ClusterSimulator` under the *currently
applied* configuration, converts the resulting schedule into telemetry
events, and delivers them to the service (synchronously, or through the
event bus in daemon mode).  With ``speedup <= 0`` the replay runs as
fast as possible; with ``speedup = k`` one wall-clock second carries
``k`` simulated seconds.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.controller import TempoController
from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace, RMConfig
from repro.sim.noise import NoiseModel
from repro.sim.simulator import ClusterSimulator
from repro.slo.objectives import SLOSet
from repro.slo.templates import deadline_slo, response_time_slo
from repro.service.daemon import RetuneDecision, ServiceConfig, TempoService
from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    ServiceEvent,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.ingest import stats_gap
from repro.stats.distributions import LognormalModel, PoissonProcessModel
from repro.workload.generator import (
    StageModel,
    StatisticalWorkloadModel,
    TenantWorkloadModel,
)
from repro.workload.model import MAP_POOL, REDUCE_POOL, Workload
from repro.workload.patterns import DiurnalPattern, SpikePattern
from repro.workload.synthetic import (
    BEST_EFFORT_TENANT,
    DEADLINE_TENANT,
    two_tenant_cluster,
    two_tenant_expert_config,
    two_tenant_model,
)
from repro.workload.trace import shift_job, shift_task

#: Tenant name used by the churn scenario's transient batch tenant.
CHURN_TENANT = "batch"


@dataclass(frozen=True)
class Scenario:
    """A named, seedable situation the serving layer can be driven through.

    Attributes:
        name: Catalog key (e.g. ``"flash-crowd"``).
        description: One-line human summary.
        cluster: The production cluster.
        model: Workload model generating the scenario's jobs.
        slos: SLOs the service tunes against.
        initial_config: Starting RM configuration.
        horizon: Default replay length in simulated seconds.
        noise: Production-side noise profile.
        churn: ``(time, tenant, joined)`` control events to emit.
        node_loss: ``(time, pool, containers)`` loss events to emit.
    """

    name: str
    description: str
    cluster: ClusterSpec
    model: StatisticalWorkloadModel
    slos: SLOSet
    initial_config: RMConfig
    horizon: float
    noise: NoiseModel
    churn: tuple[tuple[float, str, bool], ...] = ()
    node_loss: tuple[tuple[float, str, int], ...] = ()


def _two_tenant_slos() -> SLOSet:
    return SLOSet(
        [
            deadline_slo(DEADLINE_TENANT, max_violation_fraction=0.05, slack=0.25),
            response_time_slo(BEST_EFFORT_TENANT),
        ]
    )


def steady_scenario(scale: float = 1.0, horizon: float | None = None) -> Scenario:
    """Stationary two-tenant load (the baseline serving situation)."""
    horizon = horizon if horizon is not None else 4 * 3600.0
    return Scenario(
        name="steady",
        description="stationary two-tenant EC2 mix",
        cluster=two_tenant_cluster(),
        model=two_tenant_model(scale),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
    )


def flash_crowd_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """Sudden arrival surge: the best-effort tenant spikes to 5x mid-run."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    base = two_tenant_model(scale)
    best_effort = replace(
        base.tenant_model(BEST_EFFORT_TENANT),
        rate_pattern=SpikePattern(
            start=0.4 * horizon, duration=0.15 * horizon, level=5.0
        ),
    )
    return Scenario(
        name="flash-crowd",
        description="5x best-effort arrival surge over 15% of the run",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel(
            [base.tenant_model(DEADLINE_TENANT), best_effort]
        ),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
    )


def diurnal_wave_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """Strong day/night wave on both tenants (compressed diurnal cycle)."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    base = two_tenant_model(scale)
    deadline = replace(
        base.tenant_model(DEADLINE_TENANT),
        rate_pattern=DiurnalPattern(base=0.2, amplitude=1.8, peak_hour=2.0),
    )
    best_effort = replace(
        base.tenant_model(BEST_EFFORT_TENANT),
        rate_pattern=DiurnalPattern(base=0.2, amplitude=1.8, peak_hour=5.0),
    )
    return Scenario(
        name="diurnal-wave",
        description="offset day/night waves on both tenants",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel([deadline, best_effort]),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
    )


def tenant_churn_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """A transient batch tenant joins at 30% and leaves at 70% of the run."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    join, leave = 0.3 * horizon, 0.7 * horizon
    base = two_tenant_model(scale)
    churn_tenant = TenantWorkloadModel(
        tenant=CHURN_TENANT,
        arrival=PoissonProcessModel(rate=20 * scale / 3600.0),
        stages=(
            StageModel(
                "map",
                MAP_POOL,
                LognormalModel(mu=math.log(12), sigma=0.7, minimum=1),
                LognormalModel(mu=math.log(40), sigma=0.9, minimum=1),
            ),
        ),
        rate_pattern=SpikePattern(
            start=join, duration=leave - join, level=1.0, base=0.0
        ),
        tags=("transient", "batch"),
    )
    return Scenario(
        name="tenant-churn",
        description="map-heavy batch tenant joins mid-run and leaves again",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel(
            [
                base.tenant_model(DEADLINE_TENANT),
                base.tenant_model(BEST_EFFORT_TENANT),
                churn_tenant,
            ]
        ),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
        churn=((join, CHURN_TENANT, True), (leave, CHURN_TENANT, False)),
    )


def failure_storm_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """Harsh noise plus a periodic wave of node-loss telemetry."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    losses = tuple(
        (t, MAP_POOL if i % 2 == 0 else REDUCE_POOL, 2 + (i % 3))
        for i, t in enumerate(
            float(s) for s in range(1800, int(horizon), 2700)
        )
    )
    return Scenario(
        name="failure-storm",
        description="harsh failures/kills/restarts with node-loss bursts",
        cluster=two_tenant_cluster(),
        model=two_tenant_model(scale),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.harsh(),
        node_loss=losses,
    )


#: Scenario catalog: name -> factory(scale, horizon).
SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "steady": steady_scenario,
    "flash-crowd": flash_crowd_scenario,
    "diurnal-wave": diurnal_wave_scenario,
    "tenant-churn": tenant_churn_scenario,
    "failure-storm": failure_storm_scenario,
}


def make_scenario(
    name: str, scale: float | None = None, horizon: float | None = None
) -> Scenario:
    """Instantiate a catalog scenario by name (KeyError if unknown)."""
    factory = SCENARIOS[name]
    if scale is None:
        return factory(horizon=horizon)
    return factory(scale, horizon=horizon)


def build_service(
    scenario: Scenario,
    config: ServiceConfig | None = None,
    seed: int = 0,
    **controller_kwargs,
) -> TempoService:
    """A TempoService wired for ``scenario`` (controller + config space)."""
    space = ConfigSpace(scenario.cluster, sorted(scenario.model.tenants))
    controller = TempoController(
        scenario.cluster,
        scenario.slos,
        space,
        scenario.initial_config,
        noise=scenario.noise,
        seed=seed,
        **controller_kwargs,
    )
    return TempoService(controller, config)


@dataclass(frozen=True)
class ReplaySummary:
    """Aggregate result of one replay run.

    Attributes:
        scenario: Scenario name.
        horizon: Simulated seconds replayed.
        events: Telemetry events delivered (excluding heartbeats).
        jobs_submitted: Submission events among them.
        jobs_completed: Completion events among them.
        tasks: Task-completion events among them.
        retunes: Cadence ticks that applied a tune.
        skips: Cadence ticks skipped by a guard.
        reverts: Applied tunes the controller's guard rolled back.
        dropped: Events shed by the bounded bus (bus transport only).
        wall_seconds: Wall-clock duration of the replay.
        events_per_second: Telemetry throughput (events / wall_seconds).
        max_stats_gap: Largest incremental-vs-batch stats deviation seen.
        decisions: Every retune decision, in order.
        final_config: The configuration left applied.
    """

    scenario: str
    horizon: float
    events: int
    jobs_submitted: int
    jobs_completed: int
    tasks: int
    retunes: int
    skips: int
    reverts: int
    dropped: int
    wall_seconds: float
    events_per_second: float
    max_stats_gap: float
    decisions: tuple[RetuneDecision, ...]
    final_config: RMConfig


class ScenarioReplayer:
    """Feeds a scenario's telemetry through a service end-to-end.

    Args:
        scenario: The situation to replay.
        service: Optionally a pre-built service (default: one wired via
            :func:`build_service` with ``seed``).
        speedup: Simulated seconds per wall-clock second; ``<= 0`` means
            as fast as possible (pacing applied at chunk granularity).
        seed: Seed for workload generation and production simulation.
        transport: ``"direct"`` calls ``service.process`` synchronously
            (deterministic; enables per-chunk verification);
            ``"bus"`` publishes to the service's event bus and runs the
            daemon's background thread.
        verify_stats: Track the incremental-vs-batch stats gap
            (per chunk when direct, once at the end when bus).
    """

    def __init__(
        self,
        scenario: Scenario,
        service: TempoService | None = None,
        *,
        speedup: float = 0.0,
        seed: int = 0,
        transport: str = "direct",
        verify_stats: bool = True,
    ):
        if transport not in ("direct", "bus"):
            raise ValueError(f"unknown transport {transport!r}")
        self.scenario = scenario
        self.service = service or build_service(scenario, seed=seed)
        self.speedup = speedup
        self.seed = seed
        self.transport = transport
        self.verify_stats = verify_stats
        self.sim = ClusterSimulator(scenario.cluster, noise=scenario.noise, seed=seed)

    def run(self, horizon: float | None = None) -> ReplaySummary:
        """Replay ``horizon`` simulated seconds (scenario default if None)."""
        horizon = horizon if horizon is not None else self.scenario.horizon
        service = self.service
        workload = self.scenario.model.generate(self.seed, horizon)
        chunk = service.config.retune_interval
        if self.transport == "bus":
            service.start()
        wall_start = _time.perf_counter()
        counts = {"events": 0, "submitted": 0, "completed": 0, "tasks": 0}
        max_gap = 0.0
        t0, index = 0.0, 0
        while t0 < horizon:
            t1 = min(t0 + chunk, horizon)
            events = self._chunk_events(workload, t0, t1, index)
            events.append(Heartbeat(t1))
            self._pace(wall_start, t1)
            for event in events:
                if self.transport == "direct":
                    service.process(event)
                elif not service.submit(event):
                    continue  # shed by the bounded bus; counted as dropped
                self._count(event, counts)
            if self.transport == "bus":
                # Barrier: let the daemon drain this chunk before the
                # next one is simulated, so production always runs under
                # the currently applied (possibly just retuned) config.
                service.quiesce()
            if (
                self.verify_stats
                and self.transport == "direct"
                and service.window.events_ingested
            ):
                max_gap = max(max_gap, stats_gap(service.window))
            t0, index = t1, index + 1
        if self.transport == "bus":
            service.stop()
            if self.verify_stats and service.window.events_ingested:
                max_gap = max(max_gap, stats_gap(service.window))
        wall = _time.perf_counter() - wall_start
        reverts = sum(
            1
            for d in service.decisions
            if d.iteration is not None and d.iteration.reverted
        )
        return ReplaySummary(
            scenario=self.scenario.name,
            horizon=horizon,
            events=counts["events"],
            jobs_submitted=counts["submitted"],
            jobs_completed=counts["completed"],
            tasks=counts["tasks"],
            retunes=service.retunes,
            skips=service.skips,
            reverts=reverts,
            dropped=service.bus.dropped,
            wall_seconds=wall,
            events_per_second=counts["events"] / wall if wall > 0 else math.inf,
            max_stats_gap=max_gap,
            decisions=tuple(service.decisions),
            final_config=service.rm_config,
        )

    # -- internals ----------------------------------------------------------

    def _pace(self, wall_start: float, sim_time: float) -> None:
        if self.speedup <= 0:
            return
        target = sim_time / self.speedup
        delay = target - (_time.perf_counter() - wall_start)
        if delay > 0:
            _time.sleep(delay)

    @staticmethod
    def _count(event: ServiceEvent, counts: dict[str, int]) -> None:
        if isinstance(event, Heartbeat):
            return
        counts["events"] += 1
        if isinstance(event, JobSubmitted):
            counts["submitted"] += 1
        elif isinstance(event, JobCompleted):
            counts["completed"] += 1
        elif isinstance(event, TaskCompleted):
            counts["tasks"] += 1

    def _chunk_events(
        self, workload: Workload, t0: float, t1: float, index: int
    ) -> list[ServiceEvent]:
        """Simulate ``[t0, t1)`` under the live config; emit its telemetry.

        Jobs submitted in the chunk run to completion in the chunk's
        simulation (the drain phase), so completion events may carry
        timestamps past ``t1`` — the rolling window tolerates that
        bounded disorder.
        """
        window = workload.window(t0, t1)
        # Known approximation: each chunk simulates from an empty
        # cluster, so backlog does not compound across chunk boundaries
        # (a continuous simulation with live config swaps is a ROADMAP
        # follow-up).  Telemetry is correspondingly milder than a real
        # sustained overload would produce.
        events: list[tuple[tuple, ServiceEvent]] = []
        for job in window:
            events.append(
                (
                    (t0 + job.submit_time, 0, job.job_id),
                    JobSubmitted(
                        t0 + job.submit_time,
                        tenant=job.tenant,
                        job_id=job.job_id,
                        deadline=None
                        if job.deadline is None
                        else t0 + job.deadline,
                    ),
                )
            )
        if len(window):
            trace = self.sim.run(
                window,
                self.service.controller.config,
                seed=self.seed + 7919 * index,
            )
            for rec in trace.task_records:
                shifted = shift_task(rec, t0)
                events.append(
                    (
                        (shifted.finish_time, 1, shifted.task_id, shifted.attempt),
                        TaskCompleted(shifted.finish_time, record=shifted),
                    )
                )
            for jrec in trace.job_records:
                shifted_job = shift_job(jrec, t0)
                events.append(
                    (
                        (shifted_job.finish_time, 2, shifted_job.job_id),
                        JobCompleted(shifted_job.finish_time, record=shifted_job),
                    )
                )
        for when, tenant, joined in self.scenario.churn:
            if t0 <= when < t1:
                cls = TenantJoined if joined else TenantLeft
                events.append(((when, 3, tenant), cls(when, tenant=tenant)))
        for when, pool, containers in self.scenario.node_loss:
            if t0 <= when < t1:
                events.append(
                    (
                        (when, 4, pool),
                        NodeLost(when, pool=pool, containers=containers),
                    )
                )
        events.sort(key=lambda pair: pair[0])
        return [event for _, event in events]


