"""Scenario replay: drive archived or synthetic load through the daemon.

The serving layer is only as good as the situations it has been driven
through.  This module provides a catalog of *scenarios* — named,
seedable stress situations layered on :mod:`repro.workload.patterns` —
and a :class:`ScenarioReplayer` that feeds a scenario's telemetry
through a :class:`~repro.service.daemon.TempoService` end-to-end at a
configurable speedup factor:

* ``steady`` — the two-tenant EC2 mix at stationary load;
* ``flash-crowd`` — a sudden multi-x arrival surge on the best-effort
  tenant (a viral dashboard, a incident-response query storm);
* ``diurnal-wave`` — strong day/night modulation on both tenants
  (Section 2.4's temporal patterns, compressed);
* ``tenant-churn`` — a batch tenant joins mid-run and leaves again,
  emitting :class:`~repro.service.events.TenantJoined`/``TenantLeft``;
* ``failure-storm`` — harsh cluster noise plus periodic
  :class:`~repro.service.events.NodeLost` bursts;
* ``failure-recovery`` — node-loss bursts whose capacity is repaired
  (:class:`~repro.service.events.NodeRecovered`) ~20 minutes later;
* ``flash-failure`` — the compound case: the flash crowd arrives in the
  middle of a failure storm (surge and capacity loss interact);
* ``adversarial`` — an SLO-gaming tenant that inflates its load just
  before every retune boundary, so each window the guards judge looks
  overloaded while the average load is mild — the scenario that makes
  the observed-vs-observed revert guard churn and the predictive
  (load-normalized) guard hold steady.

Recorded telemetry can also be replayed from a JSONL trace file
(:func:`load_trace_events` / :func:`replay_trace`; capture one with
``record_to`` or the CLI's ``--save-trace``) — the scenario-catalog
escape hatch for driving the pipeline with events no generator
produced.

The replayer is the "production side" of the serving loop.  By default
it drives **one continuous execution**: a single
:class:`~repro.sim.simulator.SimulationSession` spans the whole run,
the applied configuration is swapped into the live simulation at every
retune interval, observed node loss shrinks the simulated capacity, and
— crucially — backlog carries across retune intervals, so a sustained
overload compounds exactly as it would on a real cluster.  The legacy
``continuous=False`` mode instead simulates each retune-interval chunk
from an empty cluster (no cross-chunk backlog); it is retained as the
comparison baseline for the backlog-compounding benchmark.  Telemetry
is delivered to the service synchronously, or through the event bus in
daemon mode.  With ``speedup <= 0`` the replay runs as fast as
possible; with ``speedup = k`` one wall-clock second carries ``k``
simulated seconds.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.controller import TempoController
from repro.rm.cluster import ClusterSpec
from repro.rm.config import ConfigSpace, RMConfig
from repro.sim.noise import NoiseModel
from repro.sim.simulator import ClusterSimulator, SimulationSession
from repro.slo.objectives import SLOSet
from repro.slo.templates import deadline_slo, response_time_slo
from repro.service.daemon import RetuneDecision, ServiceConfig, TempoService
from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    NodeLost,
    NodeRecovered,
    ServiceEvent,
    TaskCompleted,
    TenantJoined,
    TenantLeft,
)
from repro.service.journal import decode_event, encode_event
from repro.stats.distributions import LognormalModel, PoissonProcessModel
from repro.workload.generator import (
    StageModel,
    StatisticalWorkloadModel,
    TenantWorkloadModel,
)
from repro.workload.model import MAP_POOL, REDUCE_POOL, Workload
from repro.workload.patterns import BurstPattern, DiurnalPattern, SpikePattern
from repro.workload.synthetic import (
    BEST_EFFORT_TENANT,
    DEADLINE_TENANT,
    two_tenant_cluster,
    two_tenant_expert_config,
    two_tenant_model,
)
from repro.workload.trace import shift_job, shift_task

#: Tenant name used by the churn scenario's transient batch tenant.
CHURN_TENANT = "batch"

#: Tenant name used by the adversarial scenario's SLO-gaming tenant.
GAMING_TENANT = "gamer"


def _node_loss_event(
    when: float, pool: str, containers: int
) -> tuple[tuple, NodeLost]:
    """One keyed NodeLost event (key scheme shared by both chunk builders)."""
    return (when, 4, pool), NodeLost(when, pool=pool, containers=containers)


def _node_recovery_event(
    when: float, pool: str, containers: int
) -> tuple[tuple, NodeRecovered]:
    """One keyed NodeRecovered event (sorts after a same-instant loss)."""
    return (when, 5, pool), NodeRecovered(when, pool=pool, containers=containers)


@dataclass(frozen=True)
class Scenario:
    """A named, seedable situation the serving layer can be driven through.

    Attributes:
        name: Catalog key (e.g. ``"flash-crowd"``).
        description: One-line human summary.
        cluster: The production cluster.
        model: Workload model generating the scenario's jobs.
        slos: SLOs the service tunes against.
        initial_config: Starting RM configuration.
        horizon: Default replay length in simulated seconds.
        noise: Production-side noise profile.
        churn: ``(time, tenant, joined)`` control events to emit.
        node_loss: ``(time, pool, containers)`` loss events to emit.
        node_recovery: ``(time, pool, containers)`` recovery events to
            emit (repaired nodes returning capacity lost earlier).
    """

    name: str
    description: str
    cluster: ClusterSpec
    model: StatisticalWorkloadModel
    slos: SLOSet
    initial_config: RMConfig
    horizon: float
    noise: NoiseModel
    churn: tuple[tuple[float, str, bool], ...] = ()
    node_loss: tuple[tuple[float, str, int], ...] = ()
    node_recovery: tuple[tuple[float, str, int], ...] = ()


def _two_tenant_slos() -> SLOSet:
    return SLOSet(
        [
            deadline_slo(DEADLINE_TENANT, max_violation_fraction=0.05, slack=0.25),
            response_time_slo(BEST_EFFORT_TENANT),
        ]
    )


def steady_scenario(scale: float = 1.0, horizon: float | None = None) -> Scenario:
    """Stationary two-tenant load (the baseline serving situation)."""
    horizon = horizon if horizon is not None else 4 * 3600.0
    return Scenario(
        name="steady",
        description="stationary two-tenant EC2 mix",
        cluster=two_tenant_cluster(),
        model=two_tenant_model(scale),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
    )


def flash_crowd_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """Sudden arrival surge: the best-effort tenant spikes to 5x mid-run."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    base = two_tenant_model(scale)
    best_effort = replace(
        base.tenant_model(BEST_EFFORT_TENANT),
        rate_pattern=SpikePattern(
            start=0.4 * horizon, duration=0.15 * horizon, level=5.0
        ),
    )
    return Scenario(
        name="flash-crowd",
        description="5x best-effort arrival surge over 15% of the run",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel(
            [base.tenant_model(DEADLINE_TENANT), best_effort]
        ),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
    )


def diurnal_wave_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """Strong day/night wave on both tenants (compressed diurnal cycle)."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    base = two_tenant_model(scale)
    deadline = replace(
        base.tenant_model(DEADLINE_TENANT),
        rate_pattern=DiurnalPattern(base=0.2, amplitude=1.8, peak_hour=2.0),
    )
    best_effort = replace(
        base.tenant_model(BEST_EFFORT_TENANT),
        rate_pattern=DiurnalPattern(base=0.2, amplitude=1.8, peak_hour=5.0),
    )
    return Scenario(
        name="diurnal-wave",
        description="offset day/night waves on both tenants",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel([deadline, best_effort]),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
    )


def tenant_churn_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """A transient batch tenant joins at 30% and leaves at 70% of the run."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    join, leave = 0.3 * horizon, 0.7 * horizon
    base = two_tenant_model(scale)
    churn_tenant = TenantWorkloadModel(
        tenant=CHURN_TENANT,
        arrival=PoissonProcessModel(rate=20 * scale / 3600.0),
        stages=(
            StageModel(
                "map",
                MAP_POOL,
                LognormalModel(mu=math.log(12), sigma=0.7, minimum=1),
                LognormalModel(mu=math.log(40), sigma=0.9, minimum=1),
            ),
        ),
        rate_pattern=SpikePattern(
            start=join, duration=leave - join, level=1.0, base=0.0
        ),
        tags=("transient", "batch"),
    )
    return Scenario(
        name="tenant-churn",
        description="map-heavy batch tenant joins mid-run and leaves again",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel(
            [
                base.tenant_model(DEADLINE_TENANT),
                base.tenant_model(BEST_EFFORT_TENANT),
                churn_tenant,
            ]
        ),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
        churn=((join, CHURN_TENANT, True), (leave, CHURN_TENANT, False)),
    )


def failure_storm_scenario(scale: float = 1.5, horizon: float | None = None) -> Scenario:
    """Harsh noise plus a periodic wave of node-loss telemetry."""
    horizon = horizon if horizon is not None else 6 * 3600.0
    losses = tuple(
        (t, MAP_POOL if i % 2 == 0 else REDUCE_POOL, 2 + (i % 3))
        for i, t in enumerate(
            float(s) for s in range(1800, int(horizon), 2700)
        )
    )
    return Scenario(
        name="failure-storm",
        description="harsh failures/kills/restarts with node-loss bursts",
        cluster=two_tenant_cluster(),
        model=two_tenant_model(scale),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.harsh(),
        node_loss=losses,
    )


def flash_failure_scenario(
    scale: float = 1.5, horizon: float | None = None
) -> Scenario:
    """Compound stress: a flash crowd arriving mid failure-storm.

    Composes the two hardest single-factor scenarios: the best-effort
    tenant spikes to 5x while periodic node-loss bursts (under harsh
    cluster noise) are already shrinking the capacity the surge lands
    on.  The two signals interact — the drift guard sees the arrival
    surge at the same ticks the forced-retune flag fires for capacity
    loss — which is exactly the regime the single-factor scenarios
    cannot produce.
    """
    horizon = horizon if horizon is not None else 6 * 3600.0
    base = two_tenant_model(scale)
    best_effort = replace(
        base.tenant_model(BEST_EFFORT_TENANT),
        rate_pattern=SpikePattern(
            start=0.35 * horizon, duration=0.2 * horizon, level=5.0
        ),
    )
    losses = tuple(
        (t, MAP_POOL if i % 2 == 0 else REDUCE_POOL, 2 + (i % 3))
        for i, t in enumerate(
            float(s) for s in range(1800, int(horizon), 2700)
        )
    )
    return Scenario(
        name="flash-failure",
        description="5x best-effort surge during a node-loss failure storm",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel(
            [base.tenant_model(DEADLINE_TENANT), best_effort]
        ),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.harsh(),
        node_loss=losses,
    )


def failure_recovery_scenario(
    scale: float = 1.5, horizon: float | None = None
) -> Scenario:
    """Node-loss bursts whose capacity is repaired a while later.

    Exercises the full loss/recovery cycle: each burst removes
    containers mid-run and a staggered repair returns them ~20 minutes
    later, so the tuner must first adapt to the shrunken cluster and
    then notice the capacity coming back (both transitions are
    forced-drift signals).
    """
    horizon = horizon if horizon is not None else 6 * 3600.0
    losses = tuple(
        (t, MAP_POOL if i % 2 == 0 else REDUCE_POOL, 2 + (i % 3))
        for i, t in enumerate(
            float(s) for s in range(1800, int(horizon) - 2400, 3600)
        )
    )
    recoveries = tuple(
        (when + 1200.0, pool, containers) for when, pool, containers in losses
    )
    return Scenario(
        name="failure-recovery",
        description="node-loss bursts repaired ~20 minutes later",
        cluster=two_tenant_cluster(),
        model=two_tenant_model(scale),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.harsh(),
        node_loss=losses,
        node_recovery=recoveries,
    )


def adversarial_scenario(
    scale: float = 1.5,
    horizon: float | None = None,
    *,
    cadence: float = 900.0,
) -> Scenario:
    """An SLO-gaming tenant inflating load just before retune boundaries.

    The ``gamer`` tenant knows the tuner's cadence (the serving
    default, 15 minutes) and bursts through the *last quarter* of every
    retune interval, idling the rest: every window the guards judge at
    a tick closes on a load spike, so observed QS at decision time is
    always worse than the interval's average.  The observed-vs-observed
    revert guard reads that as "the configuration just applied
    regressed" and churns reverts; the predictive guard re-evaluates
    incumbent and revert target on the *observed* (inflated) workload
    and correctly attributes the pain to the tenant, holding steady.

    ``cadence`` is the retune interval the adversary games; drive the
    replay with the same ``--interval`` for the full effect.
    """
    horizon = horizon if horizon is not None else 6 * 3600.0
    base = two_tenant_model(scale)
    gamer = TenantWorkloadModel(
        tenant=GAMING_TENANT,
        arrival=PoissonProcessModel(rate=60 * scale / 3600.0),
        stages=(
            StageModel(
                "map",
                MAP_POOL,
                LognormalModel(mu=math.log(10), sigma=0.6, minimum=1),
                LognormalModel(mu=math.log(45), sigma=0.8, minimum=1),
            ),
        ),
        rate_pattern=BurstPattern(
            period=cadence,
            burst_fraction=0.25,
            burst_level=4.0,
            idle_level=0.05,
            phase=0.75,
        ),
        tags=("adversarial",),
    )
    return Scenario(
        name="adversarial",
        description="SLO-gaming tenant bursting just before retune boundaries",
        cluster=two_tenant_cluster(),
        model=StatisticalWorkloadModel(
            [
                base.tenant_model(DEADLINE_TENANT),
                base.tenant_model(BEST_EFFORT_TENANT),
                gamer,
            ]
        ),
        slos=_two_tenant_slos(),
        initial_config=two_tenant_expert_config(),
        horizon=horizon,
        noise=NoiseModel.production(),
    )


#: Scenario catalog: name -> factory(scale, horizon).
SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "steady": steady_scenario,
    "flash-crowd": flash_crowd_scenario,
    "diurnal-wave": diurnal_wave_scenario,
    "tenant-churn": tenant_churn_scenario,
    "failure-storm": failure_storm_scenario,
    "failure-recovery": failure_recovery_scenario,
    "flash-failure": flash_failure_scenario,
    "adversarial": adversarial_scenario,
}


def make_scenario(
    name: str, scale: float | None = None, horizon: float | None = None
) -> Scenario:
    """Instantiate a catalog scenario by name (KeyError if unknown)."""
    factory = SCENARIOS[name]
    if scale is None:
        return factory(horizon=horizon)
    return factory(scale, horizon=horizon)


def build_controller(
    scenario: Scenario, seed: int = 0, **controller_kwargs
) -> TempoController:
    """A fresh controller wired for ``scenario`` (cluster + SLOs + space).

    This is also what ``repro resume`` rebuilds before handing the
    controller to :meth:`~repro.service.daemon.TempoService.resume`,
    which then overwrites its tuning state from the persisted one.
    """
    space = ConfigSpace(scenario.cluster, sorted(scenario.model.tenants))
    return TempoController(
        scenario.cluster,
        scenario.slos,
        space,
        scenario.initial_config,
        noise=scenario.noise,
        seed=seed,
        **controller_kwargs,
    )


def build_service(
    scenario: Scenario,
    config: ServiceConfig | None = None,
    seed: int = 0,
    state=None,
    shards: int = 1,
    shard_workers: bool = False,
    tcp_workers: bool = False,
    failover=None,
    transport=None,
    **controller_kwargs,
) -> TempoService:
    """A TempoService wired for ``scenario`` (controller + config space).

    ``state`` optionally attaches a durable
    :class:`~repro.service.snapshot.ServiceState` home; ``shards`` /
    ``shard_workers`` / ``tcp_workers`` configure the data plane (see
    :mod:`repro.service.sharding` and
    :mod:`repro.service.transport`); ``failover`` optionally enables
    shard supervision (a :class:`~repro.service.failover.
    FailoverConfig`); ``transport`` tunes the TCP plane (a
    :class:`~repro.service.transport.TransportConfig`).
    """
    controller = build_controller(scenario, seed=seed, **controller_kwargs)
    return TempoService(
        controller,
        config,
        state=state,
        shards=shards,
        shard_workers=shard_workers,
        tcp_workers=tcp_workers,
        failover=failover,
        transport=transport,
    )


@dataclass(frozen=True)
class ReplaySummary:
    """Aggregate result of one replay run.

    Attributes:
        scenario: Scenario name.
        horizon: Simulated end time of the replay.
        start: Simulated time the replay began at (resumed runs only).
        events: Telemetry events delivered (excluding heartbeats).
        jobs_submitted: Submission events among them.
        jobs_completed: Completion events among them.
        tasks: Task-completion events among them.
        retunes: Cadence ticks that applied a tune (this run only — a
            resumed daemon's pre-crash decisions are not re-counted).
        skips: Cadence ticks skipped by a guard (this run only).
        reverts: Applied tunes the controller's guard rolled back
            (this run only).
        dropped: Events shed by the bounded bus (bus transport only).
        wall_seconds: Wall-clock duration of the replay.
        events_per_second: Telemetry throughput (events / wall_seconds).
        max_stats_gap: Largest incremental-vs-batch stats deviation seen.
        peak_backlog: Largest (submitted - completed) job count seen in
            delivery order — the signal that backlog compounds across
            retune intervals in continuous mode.
        mean_response: Mean response time of the delivered completions.
        decisions: Every retune decision of this run, in order.
        final_config: The configuration left applied.
    """

    scenario: str
    horizon: float
    start: float
    events: int
    jobs_submitted: int
    jobs_completed: int
    tasks: int
    retunes: int
    skips: int
    reverts: int
    dropped: int
    wall_seconds: float
    events_per_second: float
    max_stats_gap: float
    peak_backlog: int
    mean_response: float
    decisions: tuple[RetuneDecision, ...]
    final_config: RMConfig


class ScenarioReplayer:
    """Feeds a scenario's telemetry through a service end-to-end.

    Args:
        scenario: The situation to replay.
        service: Optionally a pre-built service (default: one wired via
            :func:`build_service` with ``seed``).
        speedup: Simulated seconds per wall-clock second; ``<= 0`` means
            as fast as possible (pacing applied at chunk granularity).
        seed: Seed for workload generation and production simulation.
        transport: ``"direct"`` calls ``service.process`` synchronously
            (deterministic; enables per-chunk verification);
            ``"bus"`` publishes to the service's event bus and runs the
            daemon's background thread.
        verify_stats: Track the incremental-vs-batch stats gap
            (per chunk when direct, once at the end when bus).
        continuous: Drive one continuous simulation (config swaps
            mid-run, backlog carries across retune intervals).  When
            False, every retune interval is simulated from an empty
            cluster — the legacy mode kept as a comparison baseline.
        record_to: Optional list collecting every delivered event in
            delivery order — the capture side of trace-file replay
            (write it out with :func:`dump_trace_events`).
        injector: Optional :class:`~repro.service.failover.
            FaultInjector`: armed against the service before the first
            chunk, and advanced to each chunk boundary's simulated time
            so scheduled faults fire deterministically at chunk edges —
            the chaos axis of the replay harness (``repro chaos``).
    """

    def __init__(
        self,
        scenario: Scenario,
        service: TempoService | None = None,
        *,
        speedup: float = 0.0,
        seed: int = 0,
        transport: str = "direct",
        verify_stats: bool = True,
        continuous: bool = True,
        record_to: list[ServiceEvent] | None = None,
        injector=None,
    ):
        if transport not in ("direct", "bus"):
            raise ValueError(f"unknown transport {transport!r}")
        self.scenario = scenario
        self.service = service or build_service(scenario, seed=seed)
        self.speedup = speedup
        self.seed = seed
        self.transport = transport
        self.verify_stats = verify_stats
        self.continuous = continuous
        self.record_to = record_to
        self.injector = injector
        self.sim = ClusterSimulator(scenario.cluster, noise=scenario.noise, seed=seed)

    def run(
        self, horizon: float | None = None, start: float = 0.0
    ) -> ReplaySummary:
        """Replay from ``start`` to ``horizon`` simulated seconds.

        ``horizon`` defaults to the scenario's.  A non-zero ``start`` is
        the resume path: the same seed regenerates the same scenario
        workload, jobs submitted before ``start`` are skipped (their
        telemetry is already in the resumed daemon's journal), and the
        production simulation restarts at the boundary.
        """
        horizon = horizon if horizon is not None else self.scenario.horizon
        if not 0.0 <= start < horizon:
            raise ValueError(f"start must be in [0, horizon), got {start}")
        service = self.service
        workload = self.scenario.model.generate(self.seed, horizon)
        if start > 0.0:
            # Session-local clock: 0 is `start`; event times shift back.
            workload = workload.window(start, horizon)
        span = horizon - start
        chunk = service.config.retune_interval
        session: SimulationSession | None = None
        arrivals: list = []
        if self.continuous:
            session = self.sim.session(
                workload, service.controller.config, seed=self.seed
            )
            arrivals = sorted(workload, key=lambda j: (j.submit_time, j.job_id))
            # Capacity changes before the resume boundary stay applied:
            # the resumed service's what-if cluster already reflects
            # them (journal replay restored it), so the production
            # session must start in the same shape — without re-emitting
            # the NodeLost/NodeRecovered events.  Losses and recoveries
            # are replayed in time order so interleaved cycles net out.
            changes = sorted(
                [(when, 0, pool, n) for when, pool, n in self.scenario.node_loss]
                + [
                    (when, 1, pool, n)
                    for when, pool, n in self.scenario.node_recovery
                ]
            )
            for when, recovered, pool, containers in changes:
                if when >= start:
                    break
                if recovered:
                    session.restore_capacity(pool, containers)
                else:
                    session.lose_capacity(pool, containers)
        if self.transport == "bus":
            service.start()
        # Decisions made before this run (a resumed daemon restores its
        # whole history) are excluded, so every summary field covers the
        # same scope: what *this* replay drove.  Decision times are
        # strictly increasing, so the cut survives the bounded decision
        # deque evicting old entries mid-run (a length-based slice
        # would not).
        prior_time = service.decisions[-1].time if service.decisions else -math.inf
        if self.injector is not None:
            self.injector.arm(service)
        wall_start = _time.perf_counter()
        counts = {
            "events": 0,
            "submitted": 0,
            "completed": 0,
            "tasks": 0,
            "backlog_peak": 0,
            "response_sum": 0.0,
        }
        max_gap = 0.0
        # The chunk index seeds the legacy mode's per-chunk simulations;
        # a resumed run continues the original seed sequence rather than
        # restarting it at the boundary.
        s0, index = 0.0, int(round(start / chunk))
        arrival_cursor = 0
        while s0 < span:
            s1 = min(s0 + chunk, span)
            if self.continuous:
                events, arrival_cursor = self._continuous_chunk(
                    session, arrivals, arrival_cursor, s0, s1, start
                )
                # The final interval's heartbeat is withheld until its
                # drain finishes (below): a journaled heartbeat at the
                # horizon must mean "this run's telemetry is complete",
                # so that a crash during the drain resumes by
                # re-simulating the final interval, not by mistaking the
                # run for finished with its backlog completions missing.
                if s1 < span:
                    events.append(Heartbeat(start + s1))
            else:
                events = self._chunk_events(workload, s0, s1, index, start)
                events.append(Heartbeat(start + s1))
            if self.injector is not None:
                # Faults land at chunk boundaries: every spec whose
                # simulated time has come fires before this chunk's
                # delivery, deterministically.
                self.injector.advance(start + s0)
            self._pace(wall_start, s1)
            self._deliver(events, counts)
            if self.transport == "bus":
                # Barrier: let the daemon drain this chunk before the
                # next one is simulated, so production always runs under
                # the currently applied (possibly just retuned) config.
                service.quiesce()
            if (
                self.verify_stats
                and self.transport == "direct"
                and service.telemetry_ingested
            ):
                max_gap = max(max_gap, service.stats_gap_now())
            s0, index = s1, index + 1
        if self.continuous and session is not None:
            # Backlog still queued or running at the horizon completes
            # in a final drain; its telemetry (timestamped past the
            # horizon) is exactly the compounded-backlog signal.  The
            # closing heartbeat — the only one at the horizon — marks
            # the whole run, drain included, as journaled.
            drain_events = (
                self._drain_events(session, start) if not session.idle else []
            )
            drain_events.append(Heartbeat(horizon))
            if self.injector is not None:
                self.injector.advance(horizon)
            self._deliver(drain_events, counts)
            if self.transport == "bus":
                service.quiesce()
        if self.transport == "bus":
            service.stop()
            if self.verify_stats and service.telemetry_ingested:
                max_gap = max(max_gap, service.stats_gap_now())
        wall = _time.perf_counter() - wall_start
        decisions = [d for d in service.decisions if d.time > prior_time]
        reverts = sum(
            1
            for d in decisions
            if d.iteration is not None and d.iteration.reverted
        )
        retunes = sum(1 for d in decisions if d.retuned)
        return ReplaySummary(
            scenario=self.scenario.name,
            horizon=horizon,
            start=start,
            events=counts["events"],
            jobs_submitted=counts["submitted"],
            jobs_completed=counts["completed"],
            tasks=counts["tasks"],
            retunes=retunes,
            skips=len(decisions) - retunes,
            reverts=reverts,
            dropped=service.bus.dropped,
            wall_seconds=wall,
            events_per_second=counts["events"] / wall if wall > 0 else math.inf,
            max_stats_gap=max_gap,
            peak_backlog=int(counts["backlog_peak"]),
            mean_response=(
                counts["response_sum"] / counts["completed"]
                if counts["completed"]
                else 0.0
            ),
            decisions=tuple(decisions),
            final_config=service.rm_config,
        )

    # -- internals ----------------------------------------------------------

    def _deliver(self, events: list[ServiceEvent], counts: dict) -> None:
        if self.record_to is not None:
            self.record_to.extend(events)
        if self.transport == "direct":
            # The batch fast path: the whole chunk is journaled with one
            # group commit per cadence sub-batch and folded with one
            # eviction pass — same decisions as per-event delivery.
            self.service.ingest_batch(events)
            for event in events:
                self._count(event, counts)
            return
        for event in events:
            if isinstance(event, Heartbeat):
                # Chunk heartbeats are `repro resume`'s truncation
                # boundary; shedding one would mark a fully-journaled
                # interval as incomplete, so they bypass the lossy path.
                self.service.submit_blocking(event)
            elif not self.service.submit(event):
                continue  # shed by the bounded bus; counted as dropped
            self._count(event, counts)

    def _pace(self, wall_start: float, sim_time: float) -> None:
        if self.speedup <= 0:
            return
        target = sim_time / self.speedup
        delay = target - (_time.perf_counter() - wall_start)
        if delay > 0:
            _time.sleep(delay)

    @staticmethod
    def _count(event: ServiceEvent, counts: dict) -> None:
        if isinstance(event, Heartbeat):
            return
        counts["events"] += 1
        if isinstance(event, JobSubmitted):
            counts["submitted"] += 1
            counts["backlog_peak"] = max(
                counts["backlog_peak"], counts["submitted"] - counts["completed"]
            )
        elif isinstance(event, JobCompleted):
            counts["completed"] += 1
            counts["response_sum"] += event.record.response_time
        elif isinstance(event, TaskCompleted):
            counts["tasks"] += 1

    def _continuous_chunk(
        self,
        session: SimulationSession,
        arrivals: list,
        cursor: int,
        s0: float,
        s1: float,
        offset: float,
    ) -> tuple[list[ServiceEvent], int]:
        """Advance the continuous session through ``[s0, s1)``.

        Scheduled node loss shrinks the session's capacity at the chunk
        boundary (loss timing inside a chunk is approximated to its
        start), and the currently applied configuration is swapped in
        before advancing — the mid-run config swap that makes one
        session span the whole replay.  Times are session-local;
        ``offset`` shifts them back to scenario-absolute.
        """
        events: list[tuple[tuple, ServiceEvent]] = []
        for when, pool, containers in self._losses_in(offset + s0, offset + s1):
            # Telemetry reports what the cluster actually lost — the
            # session clamps removal (a pool keeps >= 1 container), and
            # overstating the loss would make the service's what-if
            # cluster diverge from the simulated truth.
            removed = session.lose_capacity(pool, containers)
            if removed:
                events.append(_node_loss_event(when, pool, removed))
        for when, pool, containers in self._recoveries_in(offset + s0, offset + s1):
            # Same truthfulness rule in reverse: telemetry reports what
            # actually came back (clamped to the capacity still lost).
            restored = session.restore_capacity(pool, containers)
            if restored:
                events.append(_node_recovery_event(when, pool, restored))
        session.set_config(self.service.controller.config)
        tasks, jobs = session.advance_to(s1)
        while cursor < len(arrivals) and arrivals[cursor].submit_time < s1:
            job = arrivals[cursor]
            when = offset + job.submit_time
            events.append(
                (
                    (when, 0, job.job_id),
                    JobSubmitted(
                        when,
                        tenant=job.tenant,
                        job_id=job.job_id,
                        deadline=None
                        if job.deadline is None
                        else offset + job.deadline,
                    ),
                )
            )
            cursor += 1
        self._append_record_events(events, tasks, jobs, offset)
        self._append_churn_events(events, offset + s0, offset + s1)
        events.sort(key=lambda pair: pair[0])
        return [event for _, event in events], cursor

    def _losses_in(self, lo: float, hi: float) -> list[tuple[float, str, int]]:
        """Scheduled node losses with absolute time in ``[lo, hi)``."""
        return [
            (when, pool, containers)
            for when, pool, containers in self.scenario.node_loss
            if lo <= when < hi
        ]

    def _recoveries_in(self, lo: float, hi: float) -> list[tuple[float, str, int]]:
        """Scheduled node recoveries with absolute time in ``[lo, hi)``."""
        return [
            (when, pool, containers)
            for when, pool, containers in self.scenario.node_recovery
            if lo <= when < hi
        ]

    def _append_churn_events(self, events: list, lo: float, hi: float) -> None:
        """Keyed tenant-churn events with absolute time in ``[lo, hi)``."""
        for when, tenant, joined in self.scenario.churn:
            if lo <= when < hi:
                cls = TenantJoined if joined else TenantLeft
                events.append(((when, 3, tenant), cls(when, tenant=tenant)))

    def _drain_events(
        self, session: SimulationSession, offset: float
    ) -> list[ServiceEvent]:
        """Completion telemetry of the backlog left at the horizon."""
        tasks, jobs = session.drain()
        events: list[tuple[tuple, ServiceEvent]] = []
        self._append_record_events(events, tasks, jobs, offset)
        events.sort(key=lambda pair: pair[0])
        return [event for _, event in events]

    @staticmethod
    def _append_record_events(
        events: list, tasks: list, jobs: list, offset: float
    ) -> None:
        for rec in tasks:
            shifted = shift_task(rec, offset) if offset else rec
            events.append(
                (
                    (shifted.finish_time, 1, shifted.task_id, shifted.attempt),
                    TaskCompleted(shifted.finish_time, record=shifted),
                )
            )
        for jrec in jobs:
            shifted_job = shift_job(jrec, offset) if offset else jrec
            events.append(
                (
                    (shifted_job.finish_time, 2, shifted_job.job_id),
                    JobCompleted(shifted_job.finish_time, record=shifted_job),
                )
            )

    def _chunk_events(
        self, workload: Workload, s0: float, s1: float, index: int, offset: float
    ) -> list[ServiceEvent]:
        """Simulate ``[s0, s1)`` in isolation; emit its telemetry.

        The legacy per-chunk mode: each retune interval is simulated
        from an empty cluster and drained to completion, so completion
        events may carry timestamps past ``s1`` (the rolling window
        tolerates that bounded disorder) but backlog never compounds
        across chunk boundaries — telemetry is correspondingly milder
        than a real sustained overload would produce.
        """
        window = workload.window(s0, s1)
        events: list[tuple[tuple, ServiceEvent]] = []
        for job in window:
            when = offset + s0 + job.submit_time
            events.append(
                (
                    (when, 0, job.job_id),
                    JobSubmitted(
                        when,
                        tenant=job.tenant,
                        job_id=job.job_id,
                        deadline=None
                        if job.deadline is None
                        else offset + s0 + job.deadline,
                    ),
                )
            )
        if len(window):
            trace = self.sim.run(
                window,
                self.service.controller.config,
                seed=self.seed + 7919 * index,
            )
            self._append_record_events(
                events, list(trace.task_records), list(trace.job_records), offset + s0
            )
        self._append_churn_events(events, offset + s0, offset + s1)
        for when, pool, containers in self._losses_in(offset + s0, offset + s1):
            events.append(_node_loss_event(when, pool, containers))
        for when, pool, containers in self._recoveries_in(offset + s0, offset + s1):
            events.append(_node_recovery_event(when, pool, containers))
        events.sort(key=lambda pair: pair[0])
        return [event for _, event in events]


# -- trace-file replay --------------------------------------------------------
#
# Recorded telemetry — from a previous replay (`--save-trace`), or from a
# real RM's callback log converted to the event vocabulary — replayed
# through the (optionally sharded) serving pipeline.  The wire format is
# one `encode_event` JSON object per line: the journal's canonical event
# codec without the CRC frame or sequence numbers, so a trace file is
# producible with nothing but `json.dumps`.


def events_from_trace(trace, *, heartbeat_interval: float | None = None):
    """Convert an observed :class:`~repro.workload.trace.Trace` into the
    service's telemetry-event vocabulary.

    This is the bridge from a *real* RM's callback log to the serving
    pipeline: what an RM exposes through its job-submitted /
    task-finished / job-finished callbacks is exactly the job and task
    records an archived trace holds (``repro simulate --save`` writes
    the same format), and this function replays those records as the
    event stream the RM would have emitted live —
    :class:`~repro.service.events.JobSubmitted` at each submission,
    :class:`~repro.service.events.TaskCompleted` /
    :class:`~repro.service.events.JobCompleted` at each completion, in
    timestamp order with the replayer's tie-breaking ranks.

    ``heartbeat_interval`` inserts a :class:`~repro.service.events.
    Heartbeat` every that-many seconds (plus one at the horizon), so
    the daemon's retune cadence keeps firing through quiet stretches
    of the log; ``None`` emits no heartbeats (the raw callbacks only).
    """
    keyed: list[tuple[tuple, ServiceEvent]] = []
    for jrec in trace.job_records:
        keyed.append(
            (
                (jrec.submit_time, 0, jrec.job_id),
                JobSubmitted(
                    jrec.submit_time,
                    tenant=jrec.tenant,
                    job_id=jrec.job_id,
                    deadline=jrec.deadline,
                ),
            )
        )
        keyed.append(
            (
                (jrec.finish_time, 2, jrec.job_id),
                JobCompleted(jrec.finish_time, record=jrec),
            )
        )
    for trec in trace.task_records:
        keyed.append(
            (
                (trec.finish_time, 1, trec.task_id, trec.attempt),
                TaskCompleted(trec.finish_time, record=trec),
            )
        )
    if heartbeat_interval is not None:
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        horizon = max(
            [trace.horizon]
            + [t.finish_time for t in trace.task_records]
            + [j.finish_time for j in trace.job_records]
        )
        tick = heartbeat_interval
        while tick < horizon:
            keyed.append(((tick, 3, ""), Heartbeat(tick)))
            tick += heartbeat_interval
        keyed.append(((horizon, 3, ""), Heartbeat(horizon)))
    keyed.sort(key=lambda pair: pair[0])
    return [event for _, event in keyed]


def convert_rm_log(
    log_path, out_path, *, heartbeat_interval: float | None = None
) -> int:
    """Convert an RM callback log (archived trace JSONL) to a service
    trace file replayable with ``repro replay --trace``.

    Reads the :meth:`~repro.workload.trace.Trace.to_jsonl` format — the
    ``header``/``job``/``task`` rows a real RM's callback recorder (or
    ``repro simulate --save``) archives; the header row is optional —
    and writes the event-per-line format of :func:`dump_trace_events`.
    Returns the number of events written.
    """
    from pathlib import Path as _Path

    from repro.workload.trace import Trace as _Trace

    trace = _Trace.from_jsonl(_Path(log_path).read_text())
    events = events_from_trace(trace, heartbeat_interval=heartbeat_interval)
    return dump_trace_events(events, out_path)


def dump_trace_events(events, path) -> int:
    """Write telemetry events as a JSONL trace file; returns the count."""
    import json as _json
    from pathlib import Path as _Path

    lines = [
        _json.dumps(encode_event(event), sort_keys=True) for event in events
    ]
    _Path(path).write_text("".join(line + "\n" for line in lines))
    return len(lines)


def load_trace_events(path) -> list[ServiceEvent]:
    """Read a JSONL trace file back into event objects (inverse of dump)."""
    import json as _json
    from pathlib import Path as _Path

    events: list[ServiceEvent] = []
    for i, line in enumerate(_Path(path).read_text().splitlines()):
        if not line.strip():
            continue
        try:
            events.append(decode_event(_json.loads(line)))
        except Exception as exc:
            raise ValueError(f"bad trace record at {path} line {i + 1}: {exc}")
    return events


def replay_trace(
    service: TempoService,
    events: list[ServiceEvent],
    *,
    speedup: float = 0.0,
    verify_stats: bool = True,
    batch: int = 512,
) -> ReplaySummary:
    """Feed recorded telemetry through a service (sharded or not).

    The trace-file twin of :meth:`ScenarioReplayer.run`: events are
    delivered in order through :meth:`TempoService.ingest_batch` (the
    group-commit pipeline, which splits batches at the cadence ticks
    they cross), paced by ``speedup`` simulated seconds per wall second
    (``<= 0``: as fast as possible).  Returns a summary whose scenario
    name is ``"trace"``.

    The service must be built for a scenario whose cluster, SLOs, and
    config space cover the trace's tenants — a retune on telemetry from
    unknown tenants has no configuration surface to tune.
    """
    prior_time = service.decisions[-1].time if service.decisions else -math.inf
    counts = {
        "events": 0,
        "submitted": 0,
        "completed": 0,
        "tasks": 0,
        "backlog_peak": 0,
        "response_sum": 0.0,
    }
    max_gap = 0.0
    wall_start = _time.perf_counter()
    # Pace against the trace-local clock: a recorded trace may start at
    # an arbitrary (even epoch-scale) timestamp, and absolute-time
    # pacing would sleep that whole offset away before delivering.
    epoch = events[0].time if events else 0.0
    for i in range(0, len(events), batch):
        chunk = events[i : i + batch]
        if speedup > 0:
            target = (chunk[-1].time - epoch) / speedup
            delay = target - (_time.perf_counter() - wall_start)
            if delay > 0:
                _time.sleep(delay)
        service.ingest_batch(chunk)
        for event in chunk:
            ScenarioReplayer._count(event, counts)
    if verify_stats and service.telemetry_ingested:
        max_gap = service.stats_gap_now()
    wall = _time.perf_counter() - wall_start
    decisions = [d for d in service.decisions if d.time > prior_time]
    retunes = sum(1 for d in decisions if d.retuned)
    reverts = sum(
        1 for d in decisions if d.iteration is not None and d.iteration.reverted
    )
    return ReplaySummary(
        scenario="trace",
        horizon=events[-1].time if events else 0.0,
        start=events[0].time if events else 0.0,
        events=counts["events"],
        jobs_submitted=counts["submitted"],
        jobs_completed=counts["completed"],
        tasks=counts["tasks"],
        retunes=retunes,
        skips=len(decisions) - retunes,
        reverts=reverts,
        dropped=service.bus.dropped,
        wall_seconds=wall,
        events_per_second=counts["events"] / wall if wall > 0 else math.inf,
        max_stats_gap=max_gap,
        peak_backlog=int(counts["backlog_peak"]),
        mean_response=(
            counts["response_sum"] / counts["completed"]
            if counts["completed"]
            else 0.0
        ),
        decisions=tuple(decisions),
        final_config=service.rm_config,
    )


