"""Binary journal record codec: struct-packed frames behind CRC framing.

The JSON journal (:mod:`repro.service.journal`) is encode-bound on the
durable ingest hot path: even the template f-string encoder pays ~3us
per record to render sorted-key JSON text.  This module provides the
binary sibling of ``frame_line`` — a length-prefixed, crc32-checked
binary frame — plus per-record-type precompiled :mod:`struct` pack
formats for the hot telemetry kinds (``TaskCompleted``,
``JobCompleted``, ``JobSubmitted``, ``Heartbeat``) and an interned
string table per segment for the repeated strings (tenant, pool, stage,
tags, and ``job_id`` — every task record of a job repeats its job id,
so the id is defined once and referenced as a fixed u32 afterwards).  Everything the typed formats cannot express faithfully
falls back to a JSON *passthrough* frame carrying the canonical JSON
body, so ``decode(binary_encode(x)) == decode(json_encode(x))`` for
every record kind — the parity contract the test suite asserts
directly and by hypothesis fuzz.

Frame layout (all integers little-endian)::

    u32 crc32(payload) | u32 len(payload) | payload

and the payload's first byte is the record type:

=========  ====================================================
``0x00``   JSON passthrough: canonical JSON body bytes follow.
``0x01``   String-table define: UTF-8 bytes follow; the string's
           id is its define order within the segment (dense, 0-based).
``0x02``   ``TaskCompleted`` (struct-packed, interned strings).
``0x03``   ``JobCompleted``.
``0x04``   ``JobSubmitted``.
``0x05``   ``Heartbeat``.
``0x7f``   Segment header: magic + format version + codec id.  The
           first frame of every binary segment, so mixed-codec state
           dirs are self-describing.
=========  ====================================================

Corruption detection is unchanged from the JSON format: every frame is
covered by its own crc32, a torn final write is recognized (nothing
parseable follows the failure point) and dropped by tail repair, and
damage *behind* valid frames raises instead of silently skipping.

Decode is zero-copy up to the final string materialization: a segment
is read as one buffer and every frame payload is a :class:`memoryview`
sliced from it; ``struct.unpack_from`` reads numbers in place and only
the strings that survive into the decoded record are copied out.
"""

from __future__ import annotations

import json
import math
import zlib
from struct import Struct
from typing import Iterator

from repro.service.events import (
    Heartbeat,
    JobCompleted,
    JobSubmitted,
    TaskCompleted,
)

__all__ = [
    "BINARY_SUFFIX",
    "BinaryEncoder",
    "HEADER_FRAME",
    "decode_payload",
    "decode_wire_batches",
    "encode_wire_batches",
    "frame_payload",
    "iter_segment_payloads",
    "split_frames",
]

#: Binary journal segment file extension (JSON segments use ``.jsonl``).
BINARY_SUFFIX = ".binl"

#: Wire/disk frame header: crc32(payload), len(payload).
_HEAD = Struct("<II")
#: TaskCompleted body after the rtype byte is folded in: rtype, seq,
#: time, submit, start, finish, containers, attempt, flags,
#: tenant id, pool id, stage id, job id, len(task_id).
_TASK = Struct("<BQddddqqBIIIIH")
#: JobCompleted fixed prefix: rtype, seq, time, submit, finish,
#: num_tasks, flags (bit0: deadline present), tenant id, job id.
_JOBC = Struct("<BQdddqBII")
#: JobSubmitted: rtype, seq, time, flags (bit0: deadline present),
#: tenant id, job id.
_JOBS = Struct("<BQdBII")
#: Heartbeat: rtype, seq, time.
_HB = Struct("<BQd")
_DEADLINE = Struct("<d")
_U16 = Struct("<H")
_U32 = Struct("<I")

_RT_PASSTHROUGH = 0x00
_RT_DEFINE = 0x01
_RT_TASK = 0x02
_RT_JOBC = 0x03
_RT_JOBS = 0x04
_RT_HB = 0x05
_RT_HEADER = 0x7F

#: Segment header payload: rtype, magic, format version, codec id
#: (``0x01`` = this binary codec; JSON segments carry no header for
#: backward compatibility and are identified by their ``.jsonl`` name).
_HEADER_PAYLOAD = b"\x7fTEMPOJRNL\x01\x01"

_crc32 = zlib.crc32
_head_pack = _HEAD.pack


def frame_payload(payload: bytes) -> bytes:
    """CRC-frame one binary payload (the binary ``frame_line``)."""
    return _head_pack(_crc32(payload), len(payload)) + payload


#: The ready-framed segment header, written first into every segment.
HEADER_FRAME = frame_payload(_HEADER_PAYLOAD)


def _canonical(payload: dict) -> str:
    """Canonical (sorted-key, compact) JSON — matches the JSON codec."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- framing / segment scan ----------------------------------------------------


def split_frames(
    data: bytes | memoryview,
) -> tuple[list[memoryview], int, str | None]:
    """Parse a segment buffer into frame payloads.

    Returns ``(payloads, clean_end, error)``: the payloads of every
    valid frame in the clean prefix, the byte offset where that prefix
    ends, and ``None`` when the buffer parsed completely, ``"torn"``
    when trailing bytes look like a torn write (nothing parseable
    follows the failure point — the crash contract), or a description
    when valid frames follow the damage (mid-file corruption, which
    must raise rather than silently drop acknowledged records).
    """
    mv = memoryview(data)
    total = len(mv)
    payloads: list[memoryview] = []
    offset = 0
    while offset < total:
        if total - offset < _HEAD.size:
            return payloads, offset, "torn"
        crc, length = _HEAD.unpack_from(mv, offset)
        end = offset + _HEAD.size + length
        if end > total:
            return payloads, offset, "torn"
        payload = mv[offset + _HEAD.size : end]
        if _crc32(payload) != crc:
            # Distinguish a torn tail from mid-file damage: walk the
            # remaining bytes; any later frame with a valid CRC proves
            # records were acknowledged *after* the damage.
            probe = end
            while probe < total and total - probe >= _HEAD.size:
                pcrc, plen = _HEAD.unpack_from(mv, probe)
                pend = probe + _HEAD.size + plen
                if pend > total:
                    break
                if _crc32(mv[probe + _HEAD.size : pend]) == pcrc:
                    return (
                        payloads,
                        offset,
                        f"crc mismatch at byte {offset} with valid frames after it",
                    )
                probe = pend
            return payloads, offset, "torn"
        payloads.append(payload)
        offset = end
    return payloads, offset, None


def iter_segment_payloads(
    data: bytes | memoryview, *, final: bool
) -> Iterator[memoryview]:
    """Yield frame payloads from a segment buffer, policing corruption.

    A torn tail is tolerated (and silently dropped) only in the final
    segment; anything else raises ``ValueError`` for the journal layer
    to wrap in its ``JournalError``.
    """
    payloads, _, error = split_frames(data)
    if error is not None and not (final and error == "torn"):
        raise ValueError(error if error != "torn" else "torn frame in non-final segment")
    yield from payloads


# -- decode --------------------------------------------------------------------


def decode_payload(
    payload: memoryview, table: list[str]
) -> tuple[int, str, dict] | None:
    """Decode one frame payload into ``(seq, kind, data)``.

    ``table`` is the segment's string table, mutated in place when the
    payload is a define frame.  Returns ``None`` for frames that carry
    no record (defines and the segment header).  Raises ``ValueError``
    on unknown record types or references past the table — corruption
    that slipped past the CRC must never decode silently.
    """
    rtype = payload[0]
    if rtype == _RT_TASK:
        (
            _,
            seq,
            time,
            submit,
            start,
            finish,
            containers,
            attempt,
            flags,
            tid,
            pid,
            sid,
            jid,
            lk,
        ) = _TASK.unpack_from(payload)
        o = _TASK.size
        task_id = str(payload[o : o + lk], "utf-8")
        return (
            seq,
            "event",
            {
                "type": "TaskCompleted",
                "time": time,
                "record": {
                    "job_id": table[jid],
                    "task_id": task_id,
                    "tenant": table[tid],
                    "pool": table[pid],
                    "stage": table[sid],
                    "submit_time": submit,
                    "start_time": start,
                    "finish_time": finish,
                    "containers": containers,
                    "preempted": bool(flags & 2),
                    "failed": bool(flags & 1),
                    "attempt": attempt,
                },
            },
        )
    if rtype == _RT_JOBC:
        _, seq, time, submit, finish, num_tasks, flags, tid, jid = _JOBC.unpack_from(
            payload
        )
        o = _JOBC.size
        deadline = None
        if flags & 1:
            (deadline,) = _DEADLINE.unpack_from(payload, o)
            o += _DEADLINE.size
        (ntags,) = _U16.unpack_from(payload, o)
        o += 2
        tags = []
        for _i in range(ntags):
            (idx,) = _U32.unpack_from(payload, o)
            tags.append(table[idx])
            o += 4
        (ndeps,) = _U16.unpack_from(payload, o)
        o += 2
        stage_deps = []
        for _i in range(ndeps):
            (sidx,) = _U32.unpack_from(payload, o)
            o += 4
            (nd,) = _U16.unpack_from(payload, o)
            o += 2
            deps = []
            for _j in range(nd):
                (didx,) = _U32.unpack_from(payload, o)
                deps.append(table[didx])
                o += 4
            stage_deps.append([table[sidx], deps])
        return (
            seq,
            "event",
            {
                "type": "JobCompleted",
                "time": time,
                "record": {
                    "job_id": table[jid],
                    "tenant": table[tid],
                    "submit_time": submit,
                    "finish_time": finish,
                    "deadline": deadline,
                    "num_tasks": num_tasks,
                    "tags": tags,
                    "stage_deps": stage_deps,
                },
            },
        )
    if rtype == _RT_JOBS:
        _, seq, time, flags, tid, jid = _JOBS.unpack_from(payload)
        deadline = None
        if flags & 1:
            (deadline,) = _DEADLINE.unpack_from(payload, _JOBS.size)
        return (
            seq,
            "event",
            {
                "type": "JobSubmitted",
                "time": time,
                "tenant": table[tid],
                "job_id": table[jid],
                "deadline": deadline,
            },
        )
    if rtype == _RT_HB:
        _, seq, time = _HB.unpack_from(payload)
        return (seq, "event", {"type": "Heartbeat", "time": time})
    if rtype == _RT_PASSTHROUGH:
        row = json.loads(str(payload[1:], "utf-8"))
        return (int(row["seq"]), str(row["kind"]), row["data"])
    if rtype == _RT_DEFINE:
        table.append(str(payload[1:], "utf-8"))
        return None
    if rtype == _RT_HEADER:
        if bytes(payload[:11]) != _HEADER_PAYLOAD[:11]:
            raise ValueError("unrecognized binary segment header")
        return None
    raise ValueError(f"unknown binary record type 0x{rtype:02x}")


# -- encode --------------------------------------------------------------------


class BinaryEncoder:
    """Per-segment stateful binary encoder (string table + hot loop).

    One encoder instance belongs to one journal; :meth:`reset` starts a
    fresh string table at every segment rotation (the table is scoped
    to a segment so any segment decodes standalone).  The typed encode
    paths are EAFP: anything the fixed struct formats cannot represent
    (non-numeric where a number is expected, strings over 64KiB,
    surrogates, exotic containers) raises out of the pack call and the
    record falls back to a JSON passthrough frame — parity with the
    canonical JSON codec is preserved by construction.
    """

    __slots__ = ("ids", "suffixes")

    def __init__(self) -> None:
        self.ids: dict[str, int] = {}
        #: ``(tags, stage_deps) -> encoded suffix`` — the tag/dep block
        #: of a JobCompleted record repeats identically across jobs of
        #: the same workload shape, and its encoding is stable within a
        #: segment (it only references interned ids), so it is encoded
        #: once per distinct shape per segment.
        self.suffixes: dict[tuple, bytes] = {}

    def reset(self) -> None:
        """Start a fresh string table (call at segment rotation)."""
        self.ids.clear()
        self.suffixes.clear()

    def load_table(self, payloads: list[memoryview]) -> int:
        """Rebuild the table from an existing segment's frame payloads.

        Returns the number of record frames seen, so a journal
        re-opening a binary tail segment can restore both its encoder
        state and its record count in one scan.
        """
        self.reset()
        ids = self.ids
        records = 0
        for payload in payloads:
            rtype = payload[0]
            if rtype == _RT_DEFINE:
                ids[str(payload[1:], "utf-8")] = len(ids)
            elif rtype != _RT_HEADER:
                records += 1
        return records

    def passthrough(self, seq: int, kind: str, data: dict) -> bytes:
        """Encode any record as a CRC-framed canonical-JSON payload."""
        raw = b"\x00" + _canonical({"seq": seq, "kind": kind, "data": data}).encode(
            "utf-8"
        )
        return _head_pack(_crc32(raw), len(raw)) + raw

    def encode_record(self, seq: int, kind: str, data: dict) -> bytes:
        """Encode one generic ``(kind, data)`` record (cold path)."""
        return self.passthrough(seq, kind, data)

    def encode_event_batch(
        self,
        encode_event,
        events,
        seq: int,
        tail: int,
        limit: int,
        header: bytes,
        entries: list,
    ) -> tuple[int, int]:
        """Encode a batch of events into write entries (the hot loop).

        Appends ``(last_seq, nrecords, parts, rotate_seq)`` *run*
        entries to ``entries`` — one per contiguous stretch of records
        landing in the same segment, where ``parts`` is the run's frame
        pieces in write order (joined once at write time, so the hot
        loop never materializes per-record blobs) and ``rotate_seq`` is
        the sequence number that opens a new segment (``None`` when the
        run continues the current tail).  The rotation decision is made
        *here*, at encode time, because the string table must reset at
        exactly the byte where a new segment starts.  String-table
        define frames are emitted into ``parts`` the moment a string is
        first interned — a record that later falls back to the JSON
        passthrough frame leaves its defines behind as valid, merely
        unreferenced table entries, keeping the encoder's table and the
        on-disk table identical without any rollback bookkeeping.
        ``encode_event`` is the journal's generic dict encoder, used by
        the passthrough fallback.  Returns the updated ``(seq, tail)``.
        """
        ids = self.ids
        ids_get = ids.get
        suffix_get = self.suffixes.get
        task_pack = _TASK.pack
        jobs_pack = _JOBS.pack
        jobc_pack = _JOBC.pack
        hb_pack = _HB.pack
        deadline_pack = _DEADLINE.pack
        head_pack = _head_pack
        crc = _crc32
        isfinite = math.isfinite
        parts: list[bytes] = []
        parts_append = parts.append
        nrec = 0
        rotate = None

        def intern(text: str) -> int:
            """Intern one string, emitting its define frame (cold path)."""
            raw = b"\x01" + text.encode("utf-8")
            num = ids[text] = len(ids)
            parts_append(head_pack(crc(raw), len(raw)))
            parts_append(raw)
            return num

        for event in events:
            if tail >= limit:
                if nrec:
                    entries.append((seq - 1, nrec, parts, rotate))
                self.reset()
                tail = 1
                parts = [header]
                parts_append = parts.append
                nrec = 0
                rotate = seq
            else:
                tail += 1
            cls = type(event)
            try:
                if cls is TaskCompleted:
                    r = event.record
                    tid = ids_get(r.tenant)
                    if tid is None:
                        tid = intern(r.tenant)
                    pid = ids_get(r.pool)
                    if pid is None:
                        pid = intern(r.pool)
                    sid = ids_get(r.stage)
                    if sid is None:
                        sid = intern(r.stage)
                    jid = ids_get(r.job_id)
                    if jid is None:
                        jid = intern(r.job_id)
                    kb = r.task_id.encode("utf-8")
                    payload = (
                        task_pack(
                            _RT_TASK,
                            seq,
                            event.time,
                            r.submit_time,
                            r.start_time,
                            r.finish_time,
                            r.containers,
                            r.attempt,
                            (r.preempted << 1) | r.failed,
                            tid,
                            pid,
                            sid,
                            jid,
                            len(kb),
                        )
                        + kb
                    )
                elif cls is Heartbeat:
                    payload = hb_pack(_RT_HB, seq, event.time)
                elif cls is JobSubmitted:
                    tid = ids_get(event.tenant)
                    if tid is None:
                        tid = intern(event.tenant)
                    jid = ids_get(event.job_id)
                    if jid is None:
                        jid = intern(event.job_id)
                    deadline = event.deadline
                    if deadline is None:
                        payload = jobs_pack(_RT_JOBS, seq, event.time, 0, tid, jid)
                    elif type(deadline) is float and isfinite(deadline):
                        payload = jobs_pack(
                            _RT_JOBS, seq, event.time, 1, tid, jid
                        ) + deadline_pack(deadline)
                    else:
                        # Non-float deadlines keep exact JSON parity via
                        # the passthrough frame.
                        payload = None
                elif cls is JobCompleted:
                    r = event.record
                    tid = ids_get(r.tenant)
                    if tid is None:
                        tid = intern(r.tenant)
                    jid = ids_get(r.job_id)
                    if jid is None:
                        jid = intern(r.job_id)
                    deadline = r.deadline
                    if deadline is None:
                        head = jobc_pack(
                            _RT_JOBC,
                            seq,
                            event.time,
                            r.submit_time,
                            r.finish_time,
                            r.num_tasks,
                            0,
                            tid,
                            jid,
                        )
                    elif type(deadline) is float and isfinite(deadline):
                        head = jobc_pack(
                            _RT_JOBC,
                            seq,
                            event.time,
                            r.submit_time,
                            r.finish_time,
                            r.num_tasks,
                            1,
                            tid,
                            jid,
                        ) + deadline_pack(deadline)
                    else:
                        head = None
                    if head is None:
                        payload = None
                    else:
                        suffix = suffix_get((r.tags, r.stage_deps))
                        if suffix is None:
                            suffix = self._job_suffix(r.tags, r.stage_deps, intern)
                        payload = head + suffix
                else:
                    payload = None
            except Exception:
                # struct.error, UnicodeEncodeError, OverflowError, bad
                # attribute shapes — anything the fixed formats cannot
                # represent falls back to the passthrough frame below.
                payload = None
            if payload is None:
                payload = b"\x00" + _canonical(
                    {"seq": seq, "kind": "event", "data": encode_event(event)}
                ).encode("utf-8")
            parts_append(head_pack(crc(payload), len(payload)))
            parts_append(payload)
            nrec += 1
            seq += 1
        if nrec:
            entries.append((seq - 1, nrec, parts, rotate))
        return seq, tail

    def _job_suffix(self, tags, deps_list, intern) -> bytes:
        """Encode (and cache) one ``JobCompleted`` tag/dep suffix.

        Cold path: runs once per distinct ``(tags, stage_deps)`` shape
        per segment; the hot loop serves repeats from the cache.  The
        cache entry is only written after the whole suffix encoded
        cleanly, so a mid-suffix fallback (non-string tag, unhashable
        shape) never leaves a cached suffix behind — any defines it
        already emitted stay valid table entries regardless.
        """
        ids_get = self.ids.get

        def lookup(text: str) -> int:
            if type(text) is not str:
                raise ValueError("non-string tag/stage needs the generic encoder")
            num = ids_get(text)
            return intern(text) if num is None else num

        parts = [_U16.pack(len(tags))]
        for tag in tags:
            parts.append(_U32.pack(lookup(tag)))
        parts.append(_U16.pack(len(deps_list)))
        for stage, deps in deps_list:
            parts.append(_U32.pack(lookup(stage)))
            parts.append(_U16.pack(len(deps)))
            for dep in deps:
                parts.append(_U32.pack(lookup(dep)))
        suffix = self.suffixes[(tags, deps_list)] = b"".join(parts)
        return suffix


# -- wire batches --------------------------------------------------------------

#: First byte of a binary wire message; JSON wire frames begin with a
#: lowercase-hex CRC character, so ``0x00`` is unambiguous.
WIRE_MAGIC = 0x00
_WIRE_HEAD = Struct("<BI")
_WIRE_BATCH = Struct("<QI")


def encode_wire_batches(batches, encode_event) -> bytes:
    """Encode ``[(seq, [events])]`` as one binary wire message.

    Reuses the journal's binary record frames (each self-CRC'd) with a
    message-scoped string table, so TCP shard batches stop paying the
    JSON encode twice.  ``encode_event`` is the journal's generic dict
    encoder for the passthrough fallback.
    """
    enc = BinaryEncoder()
    parts = [_WIRE_HEAD.pack(WIRE_MAGIC, len(batches))]
    for seq, events in batches:
        parts.append(_WIRE_BATCH.pack(seq, len(events)))
        entries: list = []
        enc.encode_event_batch(
            encode_event, events, 0, 0, 1 << 62, b"", entries
        )
        for entry in entries:
            parts.extend(entry[2])
    return b"".join(parts)


def decode_wire_batches(data: bytes | memoryview) -> list[tuple[int, list[dict]]]:
    """Decode a binary wire message back to ``[(seq, [event dicts])]``.

    Raises ``ValueError`` on framing or CRC damage, exactly like the
    JSON wire path's frame validation.
    """
    mv = memoryview(data)
    magic, nbatches = _WIRE_HEAD.unpack_from(mv, 0)
    if magic != WIRE_MAGIC:
        raise ValueError("not a binary wire message")
    offset = _WIRE_HEAD.size
    table: list[str] = []
    batches: list[tuple[int, list[dict]]] = []
    for _ in range(nbatches):
        seq, count = _WIRE_BATCH.unpack_from(mv, offset)
        offset += _WIRE_BATCH.size
        events: list[dict] = []
        while len(events) < count:
            if len(mv) - offset < _HEAD.size:
                raise ValueError("truncated binary wire message")
            crc, length = _HEAD.unpack_from(mv, offset)
            end = offset + _HEAD.size + length
            if end > len(mv):
                raise ValueError("truncated binary wire message")
            payload = mv[offset + _HEAD.size : end]
            if _crc32(payload) != crc:
                raise ValueError("crc mismatch in binary wire message")
            offset = end
            decoded = decode_payload(payload, table)
            if decoded is not None:
                events.append(decoded[2])
        batches.append((seq, events))
    return batches
