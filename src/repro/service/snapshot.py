"""Durable serving state: periodic snapshots over the event journal.

The journal (:mod:`repro.service.journal`) alone is enough to rebuild a
daemon — replay everything from the first event — but recovery time then
grows with the daemon's lifetime.  Snapshots bound it: every so often
the full serving state (retained rolling-window entries, applied-config
history, controller tuning state, decisions, counters) is written as one
CRC-framed, atomically renamed JSON file under
``<state-dir>/snapshots/``, tagged with the journal sequence number it
covers.  Resume then loads the newest readable snapshot and replays only
the journal tail past it (:meth:`~repro.service.daemon.TempoService.resume`).

:class:`ServiceState` is the facade the daemon talks to — one object
owning the state directory: the journal, the snapshot store, the
snapshot cadence, and the ``meta.json`` scenario descriptor that lets
``repro resume`` rebuild the surrounding service without re-specifying
flags.

What is *not* persisted: the PALD optimizer's cross-iteration QS sample
buffer (a resumed tuner re-accumulates gradient samples over its next
few retunes) and the production-side simulator state of a replay (the
scenario re-seeds from the resumed chunk boundary).  Both degrade
gracefully and are documented in ``docs/OPERATIONS.md``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.decisions import _floats_in, _floats_out
from repro.rm.config import RMConfig, TenantConfig
from repro.service.ingest import TenantWindowStats
from repro.service.journal import (
    EventJournal,
    canonical_json,
    frame_line,
    heartbeat_at_or_before,
    last_heartbeat,
    unframe_line,
)
from repro.service.sharding import shard_dir_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import TempoController

_SNAPSHOT_GLOB = "snapshot-*.json"


# -- RM configuration codec ---------------------------------------------------


def config_to_dict(config: RMConfig) -> dict:
    """JSON-ready dict for an RM configuration (inf timeouts -> null)."""
    out: dict = {}
    for name in config.tenant_names():
        t = config.tenant(name)
        out[name] = {
            "weight": t.weight,
            "min_share": dict(t.min_share),
            "max_share": dict(t.max_share),
            "min_timeout": inf_to_null(t.min_share_preemption_timeout),
            "fair_timeout": inf_to_null(t.fair_share_preemption_timeout),
        }
    return out


def config_from_dict(data: Mapping) -> RMConfig:
    """Rebuild an :class:`RMConfig` from :func:`config_to_dict` output."""
    tenants = {
        name: TenantConfig(
            weight=float(slot["weight"]),
            min_share={k: int(v) for k, v in slot["min_share"].items()},
            max_share={k: int(v) for k, v in slot["max_share"].items()},
            min_share_preemption_timeout=inf_from_null(slot["min_timeout"]),
            fair_share_preemption_timeout=inf_from_null(slot["fair_timeout"]),
        )
        for name, slot in data.items()
    }
    return RMConfig(tenants)


def inf_to_null(value: float) -> float | None:
    """Scalar codec for semantically-absent infinities (timeouts, drift).

    ``inf`` means "disabled"/"no finite measurement" in those fields, so
    null is the honest wire form.  Sign-lossy by design — for signed
    float arrays use :func:`_floats_out`/:func:`_floats_in` instead.
    """
    return None if math.isinf(value) else float(value)


def inf_from_null(value: float | None) -> float:
    """Inverse of :func:`inf_to_null`."""
    return math.inf if value is None else float(value)


# -- window-statistics codec --------------------------------------------------


def stats_to_dict(stats: TenantWindowStats) -> dict:
    """JSON-ready dict for one tenant's window statistics."""
    return asdict(stats)


def stats_from_dict(data: Mapping) -> TenantWindowStats:
    """Rebuild :class:`TenantWindowStats` from its dict form."""
    return TenantWindowStats(**dict(data))


# -- controller tuning-state codec --------------------------------------------


def controller_state_dict(controller: "TempoController") -> dict:
    """The controller state a resumed daemon needs for guard continuity.

    Captures the applied configuration and its encoded vector, the
    revert guard's baseline (``_prev``), the trailing observed-QS
    vectors feeding the multi-window average, and the ratcheted
    best-effort thresholds.  Non-legacy decision pipelines additionally
    persist the retained selection-time prediction and the engine's
    freeze fuse — the legacy pipeline adds neither key, keeping its
    snapshot and journal bytes identical to the pre-decision-plane
    format.  The PALD sample buffer is deliberately NOT captured (see
    the module docstring).
    """
    prev = None
    if controller._prev is not None:
        prev_config, prev_observed, prev_x = controller._prev
        prev = {
            "config": config_to_dict(prev_config),
            "observed": _floats_out(prev_observed),
            "x": [float(v) for v in prev_x],
        }
    ratchet = controller._ratchet_values
    state = {
        "config": config_to_dict(controller.config),
        "x": [float(v) for v in controller.x],
        "prev": prev,
        "observed_recent": [
            _floats_out(obs) for obs in controller._observed_recent
        ],
        "ratchet": None if ratchet is None else _floats_out(ratchet),
    }
    engine = getattr(controller, "engine", None)
    if engine is not None and not engine.legacy:
        state["guards"] = {"spec": engine.spec, **engine.state_dict()}
        predicted = getattr(controller, "_predicted", None)
        if predicted is not None:
            state["predicted"] = _floats_out(predicted)
    return state


def restore_controller_state(controller: "TempoController", state: Mapping) -> None:
    """Apply :func:`controller_state_dict` output to a fresh controller."""
    controller.config = config_from_dict(state["config"])
    controller.x = np.asarray(state["x"], dtype=float)
    prev = state.get("prev")
    if prev is None:
        controller._prev = None
    else:
        controller._prev = (
            config_from_dict(prev["config"]),
            np.asarray(_floats_in(prev["observed"]), dtype=float),
            np.asarray(prev["x"], dtype=float),
        )
    controller._observed_recent.clear()
    for obs in state.get("observed_recent", ()):
        controller._observed_recent.append(
            np.asarray(_floats_in(obs), dtype=float)
        )
    ratchet = state.get("ratchet")
    controller._ratchet_values = (
        None if ratchet is None else np.asarray(_floats_in(ratchet), dtype=float)
    )
    predicted = state.get("predicted")
    controller._predicted = (
        None if predicted is None else np.asarray(_floats_in(predicted), dtype=float)
    )
    guards = state.get("guards")
    if guards is not None and getattr(controller, "engine", None) is not None:
        controller.engine.restore_state(guards)


# The infinity-safe float-vector codec is shared with the decision
# plane's DecisionRecord codec, so snapshot and journal encodings can
# never drift apart.


# -- snapshot store -----------------------------------------------------------


class SnapshotStore:
    """CRC-framed, atomically written snapshot files with pruning.

    Files are named ``snapshot-<seq>.json`` where ``seq`` is the journal
    sequence number the state includes.  Writes go to a temp file first
    and are renamed into place, so a crash mid-snapshot leaves at worst
    a stale temp file, never a half snapshot under a valid name.
    ``load_latest`` walks newest-first and skips unreadable files, so a
    corrupt snapshot costs recovery time (a longer journal tail), never
    correctness.
    """

    def __init__(self, root: str | os.PathLike, *, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    def paths(self) -> list[Path]:
        """Snapshot files in sequence order."""
        return sorted(self.root.glob(_SNAPSHOT_GLOB))

    @staticmethod
    def _seq_of(path: Path) -> int:
        return int(path.stem.split("-")[1])

    def write(self, seq: int, state: dict) -> Path:
        """Persist one snapshot covering journal records up to ``seq``."""
        body = canonical_json({"seq": seq, "state": state})
        path = self.root / f"snapshot-{seq:010d}.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(frame_line(body) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        for old in self.paths()[: -self.keep]:
            old.unlink()
        return path

    def load_oldest(self) -> tuple[int, dict] | None:
        """Oldest readable snapshot as ``(seq, state)``, or ``None``.

        The compaction anchor's payload: sharded compaction needs the
        per-shard journal positions the oldest retained snapshot
        recorded, not just its control-journal seq (the filename).
        """
        for path in self.paths():
            try:
                payload = json.loads(
                    unframe_line(path.read_text(encoding="utf-8").strip())
                )
                return int(payload["seq"]), payload["state"]
            except (ValueError, KeyError, TypeError):
                continue
        return None

    def load_latest(self, max_seq: int | None = None) -> tuple[int, dict] | None:
        """Newest readable snapshot as ``(seq, state)``, or ``None``.

        ``max_seq`` skips snapshots past a journal truncation point.
        """
        for path in reversed(self.paths()):
            if max_seq is not None and self._seq_of(path) > max_seq:
                continue
            try:
                payload = json.loads(unframe_line(path.read_text(encoding="utf-8").strip()))
                return int(payload["seq"]), payload["state"]
            except (ValueError, KeyError, TypeError):
                continue  # unreadable snapshot: fall back to an older one
        return None

    def truncate_after(self, seq: int) -> int:
        """Delete snapshots covering journal records beyond ``seq``."""
        removed = 0
        for path in self.paths():
            if self._seq_of(path) > seq:
                path.unlink()
                removed += 1
        return removed


class ServiceState:
    """The daemon's durable home: journal + snapshots + meta descriptor.

    Layout under ``root`` (single-shard, identical to PR 2/3)::

        meta.json                    scenario/service descriptor (resume)
        journal/segment-*.jsonl      CRC-framed write-ahead records
        snapshots/snapshot-*.json    periodic full-state snapshots

    With ``shards > 1`` the data plane is split per tenant-shard: the
    top-level journal becomes the **control journal** (cluster-level
    control events, retune decisions, applied configs, rollbacks, and
    the broadcast chunk heartbeats) while each shard's telemetry lives
    in its own journal::

        journal/segment-*.jsonl      control journal
        shard-00/journal/...         shard 0 telemetry (+ heartbeats)
        shard-01/journal/...         shard 1 telemetry (+ heartbeats)
        snapshots/snapshot-*.json    one snapshot covering ALL journals
                                     (per-shard seqs recorded inside)

    Args:
        root: State directory (created if missing).
        segment_records: Journal records per segment before rotation.
        snapshot_every: Journal records between periodic snapshots (a
            snapshot is also taken after every applied tune, the
            state-change that matters most).  Sharded, the count is the
            total across the control and shard journals.
        keep_snapshots: Snapshot files retained after pruning.
        fsync: Force journal appends to stable storage.
        async_journal: Journal appends through a bounded background
            group-commit thread instead of blocking on the write (see
            :class:`~repro.service.journal.EventJournal`); records still
            queued at a crash are lost — they form the torn batch tail
            repair recovers past.  Applies to the control journal only;
            shard workers are already asynchronous relative to the
            control plane.
        keep_segments: Journal segments always retained by
            :meth:`compact` regardless of snapshot coverage (safety
            margin).
        auto_compact: Run :meth:`compact` after every snapshot write,
            so a durable daemon's disk footprint stays bounded by the
            snapshot retention window instead of its lifetime.
        shards: Data-plane shard count this state dir is laid out for.
        journal_codec: Record codec new journal segments are written
            with — ``"json"`` (debug/compat text) or ``"binary"`` (the
            struct-packed format of :mod:`repro.service.codec`).  Reads
            always handle both, so mixed-codec state dirs (e.g. a dir
            resumed under a different codec) replay transparently.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        segment_records: int = 4096,
        snapshot_every: int = 5000,
        keep_snapshots: int = 3,
        fsync: bool = False,
        async_journal: bool = False,
        keep_segments: int = 2,
        auto_compact: bool = True,
        shards: int = 1,
        journal_codec: str = "json",
    ):
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if keep_segments < 1:
            raise ValueError(f"keep_segments must be >= 1, got {keep_segments}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal = EventJournal(
            self.root / "journal",
            segment_records=segment_records,
            fsync=fsync,
            async_writer=async_journal,
            codec=journal_codec,
        )
        self.snapshots = SnapshotStore(self.root / "snapshots", keep=keep_snapshots)
        self.snapshot_every = int(snapshot_every)
        self.keep_segments = int(keep_segments)
        self.auto_compact = bool(auto_compact)
        self.shards = int(shards)
        #: Lazily opened per-shard journals (parent side).  Worker-mode
        #: daemons never open these while workers run — the workers own
        #: them — which is why :attr:`shard_compaction` is switched off
        #: for the run's duration in that mode.
        self._shard_journals: dict[int, EventJournal] = {}
        self.shard_compaction = True
        self._records_since_snapshot = 0
        self._last_snapshot_seq = 0
        # Newest heartbeat seq this process knows of: None = not yet
        # determined (scan lazily), -1 = the journal holds none.  A
        # journal that is empty at open provably holds none — skipping
        # the lazy scan keeps the first auto-compaction O(1) for fresh
        # state dirs.
        self._last_heartbeat_seq: int | None = (
            -1 if self.journal.last_seq == 0 else None
        )
        latest = self.snapshots.load_latest()
        if latest is not None:
            self._last_snapshot_seq = latest[0]

    # -- meta descriptor ----------------------------------------------------

    @property
    def meta_path(self) -> Path:
        """Location of the scenario/service descriptor."""
        return self.root / "meta.json"

    def write_meta(self, meta: dict) -> None:
        """Persist the descriptor ``repro resume`` rebuilds from."""
        tmp = self.meta_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.meta_path)

    def read_meta(self) -> dict | None:
        """The descriptor, or ``None`` when this dir has none yet."""
        if not self.meta_path.exists():
            return None
        return json.loads(self.meta_path.read_text())

    # -- shard journals ------------------------------------------------------

    def shard_journal_path(self, shard_id: int) -> Path:
        """On-disk journal directory of one shard.

        Single-shard state dirs have no ``shard-NN`` tree: shard 0's
        journal *is* the top-level journal, which is what keeps
        ``--shards 1`` output byte-identical to the pre-sharding
        pipeline.
        """
        if self.shards == 1:
            return self.root / "journal"
        return self.root / shard_dir_name(shard_id) / "journal"

    def shard_journal(self, shard_id: int) -> EventJournal:
        """Lazily opened parent-side handle of one shard's journal.

        Never call this while worker processes own the journals — a
        parent-side open would race the worker's torn-tail repair.
        """
        if not 0 <= shard_id < self.shards:
            raise ValueError(
                f"shard {shard_id} out of range for {self.shards}-shard state"
            )
        if self.shards == 1:
            return self.journal
        journal = self._shard_journals.get(shard_id)
        if journal is None:
            journal = self._shard_journals[shard_id] = EventJournal(
                self.shard_journal_path(shard_id),
                segment_records=self.journal.segment_records,
                fsync=self.journal.fsync,
                codec=self.journal.codec,
            )
        return journal

    def shard_journal_opts(self) -> dict:
        """Constructor kwargs a worker uses to open its shard journal."""
        return {
            "segment_records": self.journal.segment_records,
            "fsync": self.journal.fsync,
            "codec": self.journal.codec,
        }

    def note_shard_records(self, count: int) -> None:
        """Count records journaled by the data plane (snapshot cadence).

        Sharded daemons dispatch telemetry to shard journals the
        control plane never re-reads, so the snapshot cadence counts
        what it *dispatched* rather than re-polling N journals.
        """
        self._records_since_snapshot += count

    # -- write-ahead records -------------------------------------------------

    def record_event(self, data: dict) -> int:
        """Journal one telemetry event (write-ahead of processing)."""
        seq = self.journal.append("event", data)
        if data.get("type") == "Heartbeat":
            self._last_heartbeat_seq = seq
        self._records_since_snapshot += 1
        return seq

    def record_events(self, events: list) -> list[int]:
        """Group-commit a whole batch of telemetry events write-ahead.

        Takes the event *objects* (not pre-encoded dicts): one
        specialized encode pass, one buffered write, one flush — the
        batch ingest pipeline's journal half.  Returns the assigned
        sequence numbers in order.
        """
        seqs = self.journal.append_events(events)
        for seq, event in zip(seqs, events):
            if type(event).__name__ == "Heartbeat":
                self._last_heartbeat_seq = seq
        self._records_since_snapshot += len(seqs)
        return seqs

    def record_decision(self, data: dict) -> int:
        """Journal one skipped cadence tick (sparse/stable outcome)."""
        self._records_since_snapshot += 1
        return self.journal.append("decision", data)

    def record_config(self, data: dict) -> int:
        """Journal one applied tune: its decision and the controller
        state it produced, as a single atomic record."""
        self._records_since_snapshot += 1
        return self.journal.append("config", data)

    def record_rollback(self) -> int:
        """Journal an operator rollback."""
        self._records_since_snapshot += 1
        return self.journal.append("rollback", {})

    def record_metrics(self, data: dict) -> int:
        """Journal one per-retune metrics sample (kind ``metrics``).

        The payload is a :class:`~repro.service.events.MetricsSampled`
        dict — ``time``, ``index``, and a merged registry dump — giving
        replay and sweep tooling an append-only time series without a
        separate sink.  Samples describe observability state, not
        serving state: resume restores registries from snapshots and
        merely notes the newest sample.
        """
        self._records_since_snapshot += 1
        return self.journal.append("metrics", data)

    # -- snapshot cadence ----------------------------------------------------

    def snapshot_due(self, *, force: bool = False) -> bool:
        """Whether the periodic snapshot cadence has elapsed."""
        if force:
            return True
        if self.shards > 1:
            # Telemetry lands in shard journals the control plane does
            # not poll; the cadence counts dispatched + control records.
            return self._records_since_snapshot >= self.snapshot_every
        return self.journal.last_seq - self._last_snapshot_seq >= self.snapshot_every

    def write_snapshot(self, state: dict) -> Path:
        """Snapshot ``state`` as covering everything journaled so far.

        With ``auto_compact`` enabled (the default) every snapshot write
        also runs :meth:`compact`, so segments the retained snapshots
        fully cover are reclaimed as the daemon runs.
        """
        seq = self.journal.last_seq
        path = self.snapshots.write(seq, state)
        self._last_snapshot_seq = seq
        self._records_since_snapshot = 0
        if self.auto_compact:
            self.compact()
        return path

    def load_latest_snapshot(self) -> tuple[int, dict] | None:
        """Newest readable snapshot not past the journal's end."""
        return self.snapshots.load_latest(max_seq=self.journal.last_seq)

    # -- compaction ----------------------------------------------------------

    def _heartbeat_seq(self) -> int | None:
        """Newest journaled heartbeat seq (None when the journal has none).

        Tracked incrementally as events are recorded; a cold process
        (the ``repro compact`` CLI, or a daemon that has not yet
        journaled a heartbeat) scans the journal tail once and caches
        the answer.
        """
        if self._last_heartbeat_seq is None:
            found = last_heartbeat(self.journal)
            self._last_heartbeat_seq = -1 if found is None else found[0]
        return None if self._last_heartbeat_seq == -1 else self._last_heartbeat_seq

    def compact(self, keep_segments: int | None = None) -> int:
        """Delete journal segments fully covered by a retained snapshot.

        The compaction anchor is the **oldest retained** snapshot, not
        the newest: every resume path — including falling back past a
        corrupt newer snapshot, and the heartbeat-boundary rewind
        ``repro resume`` performs before loading state — must still find
        its journal tail intact.  Concretely, a segment is deleted only
        when its entire seq range is at or below the oldest retained
        snapshot's seq; if the journal holds heartbeats but even the
        oldest snapshot lies *past* the newest heartbeat (resume would
        rewind to before every snapshot and need the journal from the
        start), nothing is compacted.  ``keep_segments`` newest segments
        survive regardless (default: the constructor's margin).  Returns
        the number of segments deleted.
        """
        keep = self.keep_segments if keep_segments is None else int(keep_segments)
        paths = self.snapshots.paths()
        if not paths:
            return 0
        anchor = self.snapshots._seq_of(paths[0])
        heartbeat = self._heartbeat_seq()
        if heartbeat is not None and anchor > heartbeat:
            return 0
        removed = self.journal.compact(anchor, keep_segments=keep)
        if self.shards > 1 and self.shard_compaction:
            removed += self._compact_shards(keep)
        return removed

    def _compact_shards(self, keep: int) -> int:
        """Compact shard journals below the oldest snapshot's coverage.

        Each shard journal ``i`` is compacted up to the oldest retained
        snapshot's recorded position ``shard_seqs[i]`` — and only when
        that position is at or before the shard journal's newest
        broadcast heartbeat, the same boundary-safety rule the control
        journal applies: the crash-recovery rewind truncates to a
        completed chunk boundary, and the anchor snapshot must survive
        that rewind for the compacted prefix to stay unreachable.
        """
        if self._heartbeat_seq() is None:
            # Heartbeats are broadcast: none in the control journal
            # means none anywhere, so no completed-chunk boundary
            # protects a rewind yet — and scanning N heartbeat-free
            # shard journals end-to-end on every snapshot would cost
            # O(journal) each time.  Skip until a boundary exists.
            return 0
        oldest = self.snapshots.load_oldest()
        if oldest is None:
            return 0
        shard_seqs = oldest[1].get("sharding", {}).get("shard_seqs")
        if not shard_seqs or len(shard_seqs) != self.shards:
            return 0  # snapshot predates this layout; nothing provable
        removed = 0
        for i in range(self.shards):
            journal = self.shard_journal(i)
            # Cheap: heartbeats land every chunk, so the scan stops at
            # the newest segment containing one.
            boundary = last_heartbeat(journal)
            if boundary is None or int(shard_seqs[i]) > boundary[0]:
                continue
            removed += journal.compact(int(shard_seqs[i]), keep_segments=keep)
        return removed

    # -- truncation ----------------------------------------------------------

    def truncate_after(self, seq: int) -> int:
        """Cut journal and snapshots back to ``seq`` (chunk-boundary rewind)."""
        removed = self.journal.truncate_after(seq)
        self.snapshots.truncate_after(seq)
        self._last_snapshot_seq = min(self._last_snapshot_seq, seq)
        if self._last_heartbeat_seq is not None and self._last_heartbeat_seq > seq:
            self._last_heartbeat_seq = None  # re-scan lazily past the cut
        return removed

    def rewind_to_heartbeat(self) -> tuple[float, int]:
        """Rewind every journal to the newest *common* chunk boundary.

        The crash-recovery primitive behind ``repro resume``.  Returns
        ``(boundary_time, records_dropped)``; a boundary time of 0.0
        means no chunk completed anywhere and everything was rewound.

        Single-shard: truncate the one journal (and snapshots) past its
        newest heartbeat — exactly the PR 2 behavior.  Sharded: the
        boundary is the newest heartbeat time present in **all**
        journals (heartbeats are broadcast at every boundary, so the
        minimum over per-journal newest heartbeats is common); each
        journal is truncated past its own copy of that heartbeat, and
        snapshots are pruned when their control seq *or any recorded
        shard seq* lies past the corresponding boundary — a snapshot
        taken mid-chunk may cover shard telemetry that was just
        truncated, and restoring it would double-deliver the partial
        chunk the resume re-simulates.
        """
        if self.shards == 1:
            boundary = last_heartbeat(self.journal)
            seq, start = boundary if boundary is not None else (0, 0.0)
            return start, self.truncate_after(seq)
        journals = [self.journal] + [
            self.shard_journal(i) for i in range(self.shards)
        ]
        # A journal holding no records at all constrains nothing: a
        # freshly resharded (or tenant-less) shard journal must not
        # drag the common boundary — and the whole retained history —
        # down to zero.  Only journals with acknowledged records but no
        # completed chunk boundary force the full rewind.
        newest = [
            last_heartbeat(j) for j in journals if j.last_seq or j.segments()
        ]
        if not newest or any(found is None for found in newest):
            start, control_seq = 0.0, 0
            cuts = [0] * self.shards
            dropped = self.journal.truncate_after(0)
            for i in range(self.shards):
                dropped += self.shard_journal(i).truncate_after(0)
        else:
            start = min(when for _, when in newest)
            control = heartbeat_at_or_before(self.journal, start)
            control_seq = control[0] if control is not None else 0
            dropped = self.journal.truncate_after(control_seq)
            cuts = []
            for i in range(self.shards):
                journal = self.shard_journal(i)
                found = heartbeat_at_or_before(journal, start)
                cut = found[0] if found is not None else 0
                cuts.append(cut)
                dropped += journal.truncate_after(cut)
        self.snapshots.truncate_after(control_seq)
        for path in self.snapshots.paths():
            seqs = None
            try:
                payload = json.loads(
                    unframe_line(path.read_text(encoding="utf-8").strip())
                )
                seqs = payload["state"].get("sharding", {}).get("shard_seqs")
            except (ValueError, KeyError, TypeError):
                pass  # unreadable snapshots are skipped at load time
            if seqs is not None and any(
                int(s) > cut for s, cut in zip(seqs, cuts)
            ):
                path.unlink()
        self._last_snapshot_seq = min(self._last_snapshot_seq, control_seq)
        if (
            self._last_heartbeat_seq is not None
            and self._last_heartbeat_seq > control_seq
        ):
            self._last_heartbeat_seq = None  # re-scan lazily past the cut
        return start, dropped

    def failover_shard(self, shard_id: int) -> tuple[float, int, int, int]:
        """Rewind ONE shard's journal to its newest chunk boundary.

        The durable half of a shard failover
        (:meth:`~repro.service.daemon.TempoService.failover_shard`).
        Returns ``(boundary_time, boundary_seq, records_dropped,
        telemetry_dropped)`` — the last is the job/task telemetry subset
        of the dropped records, what the control plane subtracts from
        its ingested-telemetry counter.

        Sharded layout: the dead shard's journal is reopened (running
        torn-tail repair over whatever the worker managed to ack before
        dying) and truncated back to its newest broadcast heartbeat —
        a *common* boundary, since heartbeats land in every journal at
        every chunk edge.  Surviving shards keep their post-boundary
        records untouched: only the dead shard pays the bounded replay.
        Snapshots whose recorded position for this shard lies past the
        cut are pruned — their windows contain telemetry that no longer
        exists in any journal, and restoring one would resurrect the
        failover's bounded loss.

        Single-shard layout: the shard journal *is* the control journal
        (shared with decision/config records the control plane still
        holds in memory), so nothing is truncated — the parent-owned
        journal is consistent with everything acked, and the rebuild
        replays its full telemetry tail with zero loss.
        """
        if not 0 <= shard_id < self.shards:
            raise ValueError(
                f"shard {shard_id} out of range for {self.shards}-shard state"
            )
        if self.shards == 1:
            boundary = last_heartbeat(self.journal)
            seq, when = boundary if boundary is not None else (0, 0.0)
            return when, seq, 0, 0
        cached = self._shard_journals.pop(shard_id, None)
        if cached is not None:
            cached.close()
        journal = self.shard_journal(shard_id)
        boundary = last_heartbeat(journal)
        cut, when = boundary if boundary is not None else (0, 0.0)
        telemetry_dropped = sum(
            1
            for record in journal.iter_records(after=cut)
            if record.kind == "event"
            and record.data.get("type")
            in ("JobSubmitted", "TaskCompleted", "JobCompleted")
        )
        dropped = journal.truncate_after(cut)
        for path in self.snapshots.paths():
            seqs = None
            try:
                payload = json.loads(
                    unframe_line(path.read_text(encoding="utf-8").strip())
                )
                seqs = payload["state"].get("sharding", {}).get("shard_seqs")
            except (ValueError, KeyError, TypeError):
                pass  # unreadable snapshots are skipped at load time
            if seqs is not None and len(seqs) > shard_id and int(seqs[shard_id]) > cut:
                path.unlink()
        return when, cut, dropped, telemetry_dropped

    def release_shard_journal(self, shard_id: int) -> None:
        """Close and drop the parent-side handle of one shard journal.

        Worker-mode failover reopens a dead shard's journal in the
        parent just long enough to rewind and replay it; the handle must
        be released before the replacement worker opens the journal, or
        the two opens would race on the tail.
        """
        cached = self._shard_journals.pop(shard_id, None)
        if cached is not None:
            cached.close()

    # -- resharding ----------------------------------------------------------

    def reshard(self, shards: int) -> None:
        """Re-target the state dir at a new shard count.

        Only the *layout pointer* changes: existing journals stay on
        disk (records at or below the covering snapshot's recorded
        positions are never replayed, and orphaned ``shard-NN`` trees
        beyond the new count are simply ignored).  The caller — see
        ``repro resume --reshard`` — must immediately write a full
        snapshot recording the new layout, so every later resume finds
        a consistent (snapshot, journal-tail) pair under the new
        routing.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        for journal in self._shard_journals.values():
            journal.close()
        self._shard_journals.clear()
        self.shards = int(shards)

    def close(self) -> None:
        """Close every open journal file handle (control and shards)."""
        self.journal.close()
        for journal in self._shard_journals.values():
            journal.close()
