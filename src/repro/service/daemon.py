"""The streaming Tempo daemon: background retuning beside a live RM.

:class:`TempoService` turns the batch :class:`~repro.core.controller.
TempoController` into an always-on component in the spirit of autonomic
database daemons (H2O) and stability-aware online tuners (SAM):

* telemetry events flow in (directly via :meth:`TempoService.process`,
  or asynchronously through a bounded :class:`~repro.service.events.
  EventBus` drained by a background thread);
* a :class:`~repro.service.ingest.RollingWindow` keeps per-tenant
  workload statistics current at O(1) per event;
* on a configurable cadence the daemon attempts a retune — guarded by a
  **stability check** (skip when the window statistics have not
  materially drifted since the last applied tune) and a **sparsity
  check** (skip when the window holds too few jobs to carry signal);
* every applied configuration is recorded as an atomic
  :class:`ConfigSnapshot` so operators can :meth:`~TempoService.rollback`
  past the controller's own revert guard.

The daemon's clock is *simulated time carried by the events*, never the
wall clock — a serving run is exactly reproducible from its event
stream.
"""

from __future__ import annotations

import math
import threading
import time as _time
from collections import deque
from dataclasses import dataclass

from repro.core.controller import ControlIteration, TempoController
from repro.rm.config import RMConfig
from repro.service.events import (
    EventBus,
    Heartbeat,
    NodeLost,
    ServiceEvent,
    TenantJoined,
    TenantLeft,
)
from repro.service.ingest import RollingWindow, TenantWindowStats, window_drift


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of :class:`TempoService`.

    Attributes:
        window: Rolling statistics window length in seconds (the paper's
            observation interval ``L``).
        retune_interval: Seconds of simulated time between retune
            attempts (the control cadence).
        drift_threshold: Minimum :func:`~repro.service.ingest.
            window_drift` versus the last *applied* tune's snapshot for
            a retune to proceed; below it the guard reports "stable".
        min_window_jobs: Minimum completed jobs in the window for a
            retune to proceed; below it the guard reports "sparse".
        history: Number of applied-configuration snapshots retained for
            rollback.
        queue_capacity: Bound of the daemon's event bus.
    """

    window: float = 1800.0
    retune_interval: float = 900.0
    drift_threshold: float = 0.02
    min_window_jobs: int = 5
    history: int = 16
    queue_capacity: int = 100_000

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.retune_interval <= 0:
            raise ValueError(
                f"retune_interval must be positive, got {self.retune_interval}"
            )
        if self.drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if self.min_window_jobs < 0:
            raise ValueError("min_window_jobs must be non-negative")
        if self.history < 2:
            raise ValueError("history must be >= 2 (incumbent + predecessor)")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


@dataclass(frozen=True)
class RetuneDecision:
    """Outcome of one cadence tick of the daemon.

    Attributes:
        time: Simulated time of the attempt.
        index: Control-iteration index (shared with the controller).
        retuned: Whether a tune actually ran.
        reason: ``"initial"``, ``"drift"``, or ``"forced"`` when retuned;
            ``"stable"`` or ``"sparse"`` when skipped.
        drift: The stability signal measured at the attempt.
        latency: Wall-clock seconds the tune took (0.0 when skipped).
        iteration: The controller's record when retuned, else ``None``.
    """

    time: float
    index: int
    retuned: bool
    reason: str
    drift: float
    latency: float = 0.0
    iteration: ControlIteration | None = None


@dataclass(frozen=True)
class ConfigSnapshot:
    """Atomic record of an applied RM configuration (rollback unit)."""

    index: int
    time: float
    config: RMConfig


class TempoService:
    """Long-running serving loop around a :class:`TempoController`.

    Synchronous use (deterministic; what the replay driver and tests do)::

        service = TempoService(controller)
        for event in telemetry:
            service.process(event)

    Daemon use (asynchronous; a producer publishes to the bus)::

        service.start()
        service.submit(event)   # from any thread
        ...
        service.stop()          # drains the queue, then joins

    Args:
        controller: The tuned control loop; its ``config`` is the live
            RM configuration the service manages.
        config: Operational knobs (cadence, window, guards).
        bus: Optional externally owned event bus.
    """

    def __init__(
        self,
        controller: TempoController,
        config: ServiceConfig | None = None,
        bus: EventBus | None = None,
    ):
        self.controller = controller
        self.config = config or ServiceConfig()
        self.window = RollingWindow(self.config.window)
        self.bus = bus or EventBus(self.config.queue_capacity)
        self.decisions: list[RetuneDecision] = []
        self.active_tenants: set[str] = set()
        self.nodes_lost = 0
        self._history: deque[ConfigSnapshot] = deque(maxlen=self.config.history)
        self._history.append(ConfigSnapshot(-1, 0.0, controller.config))
        self._last_attempt: float | None = None
        self._last_snapshot: dict[str, TenantWindowStats] | None = None
        self._index = 0
        self._force = False
        self._events = 0
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def __repr__(self) -> str:
        return (
            f"TempoService(events={self._events}, retunes={self.retunes}, "
            f"skips={self.skips}, now={self.window.now:.0f}s)"
        )

    # -- telemetry ingestion ------------------------------------------------

    def process(self, event: ServiceEvent) -> RetuneDecision | None:
        """Ingest one event, advance the clock, retune if the cadence hit.

        Returns the :class:`RetuneDecision` when this event triggered a
        cadence tick, else ``None``.
        """
        with self._lock:
            if isinstance(event, (Heartbeat, TenantJoined, TenantLeft, NodeLost)):
                if isinstance(event, TenantJoined):
                    self.active_tenants.add(event.tenant)
                elif isinstance(event, TenantLeft):
                    self.active_tenants.discard(event.tenant)
                    self.window.drop_tenant(event.tenant)
                    if self._last_snapshot is not None:
                        self._last_snapshot.pop(event.tenant, None)
                    self._force = True
                elif isinstance(event, NodeLost):
                    self.nodes_lost += event.containers
                    self._force = True
                # Control events do not pass through ingest, so the
                # clock/eviction advance happens here.
                self.window.advance(event.time)
            else:
                self.window.ingest(event)  # advances the window itself
            self._events += 1
            if self._last_attempt is None:
                # Anchor the cadence at the first event's timestamp.
                self._last_attempt = event.time
                return None
            if event.time - self._last_attempt >= self.config.retune_interval:
                return self.retune(event.time)
            return None

    def retune(self, now: float, force: bool = False) -> RetuneDecision:
        """One guarded retune attempt at simulated time ``now``.

        The guards run in order: sparsity first (no signal, nothing to
        tune from), then stability (material drift since the snapshot of
        the last *applied* tune).  ``force=True`` — or a pending forced
        signal from node loss / tenant churn — bypasses the stability
        guard but not the sparsity guard.
        """
        with self._lock:
            self._last_attempt = now
            snapshot = self.window.snapshot()
            jobs = sum(s.jobs for s in snapshot.values())
            force = force or self._force
            # An empty window is always "sparse": even with
            # min_window_jobs=0 there is no telemetry to tune from, and
            # an empty trace would read as perfect SLO compliance.
            if jobs == 0 or jobs < self.config.min_window_jobs:
                decision = RetuneDecision(now, self._index, False, "sparse", 0.0)
                self.decisions.append(decision)
                return decision
            if self._last_snapshot is None:
                reason, drift = "initial", math.inf
            elif force:
                reason, drift = "forced", math.inf
            else:
                drift = window_drift(self._last_snapshot, snapshot)
                if drift < self.config.drift_threshold:
                    decision = RetuneDecision(now, self._index, False, "stable", drift)
                    self.decisions.append(decision)
                    return decision
                reason = "drift"
            trace = self.window.trace(capacity=self.controller.cluster.as_dict())
            started = _time.perf_counter()
            iteration = self.controller.tune_from_trace(self._index, trace)
            latency = _time.perf_counter() - started
            self._history.append(
                ConfigSnapshot(self._index, now, self.controller.config)
            )
            self._last_snapshot = snapshot
            self._force = False
            decision = RetuneDecision(
                now, self._index, True, reason, drift, latency, iteration
            )
            self._index += 1
            self.decisions.append(decision)
            return decision

    def rollback(self) -> RMConfig | None:
        """Atomically restore the previously applied configuration.

        Pops the newest snapshot and reinstates its predecessor in the
        controller (config and encoded vector together, so the next tune
        starts from the restored point).  Returns the restored config,
        or ``None`` when no predecessor is available.
        """
        with self._lock:
            if len(self._history) < 2:
                return None
            self._history.pop()
            snap = self._history[-1]
            self.controller.config = snap.config
            self.controller.x = self.controller.space.encode(snap.config)
            return snap.config

    # -- daemon mode --------------------------------------------------------

    def submit(self, event: ServiceEvent) -> bool:
        """Publish an event to the service's bus (False when shed)."""
        return self.bus.publish(event)

    def start(self) -> None:
        """Start the background thread draining the event bus."""
        if self._thread is not None:
            raise RuntimeError("service already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._drain_loop, name="tempo-service", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Drain remaining queued events, then stop the background thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def quiesce(self, poll: float = 0.002) -> None:
        """Block until the bus is empty and in-flight processing finished.

        Only meaningful in daemon mode where every event flows through
        the bus: completion is detected as ``events_processed`` catching
        up with ``bus.published``.  Producers use this as a barrier so
        anything derived from the live config (e.g. the replayer's next
        production chunk) sees all prior telemetry applied.  Raises
        ``RuntimeError`` when no drain thread is running — waiting would
        hang forever.
        """
        if self._thread is None:
            raise RuntimeError("cannot quiesce: service not running")
        while len(self.bus) or self._events < self.bus.published:
            _time.sleep(poll)

    def _drain_loop(self) -> None:
        while True:
            event = self.bus.poll(timeout=0.05)
            if event is not None:
                self.process(event)
            elif self._stop.is_set() and not len(self.bus):
                return

    # -- introspection ------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the background drain thread is alive."""
        return self._thread is not None

    @property
    def events_processed(self) -> int:
        """Events handled by :meth:`process` (telemetry and control)."""
        return self._events

    @property
    def retunes(self) -> int:
        """Cadence ticks that applied a tune."""
        return sum(1 for d in self.decisions if d.retuned)

    @property
    def skips(self) -> int:
        """Cadence ticks skipped by the sparsity or stability guard."""
        return sum(1 for d in self.decisions if not d.retuned)

    @property
    def rm_config(self) -> RMConfig:
        """The currently applied RM configuration."""
        return self.controller.config

    @property
    def config_history(self) -> tuple[ConfigSnapshot, ...]:
        """Retained applied-configuration snapshots, oldest first."""
        return tuple(self._history)
