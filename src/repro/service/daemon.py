"""The streaming Tempo daemon: background retuning beside a live RM.

:class:`TempoService` turns the batch :class:`~repro.core.controller.
TempoController` into an always-on component in the spirit of autonomic
database daemons (H2O) and stability-aware online tuners (SAM):

* telemetry events flow in (directly via :meth:`TempoService.process`,
  in journal-group-committed chunks via
  :meth:`TempoService.ingest_batch` — the replay driver's and the bus
  drain thread's fast path — or asynchronously through a bounded
  :class:`~repro.service.events.EventBus` drained in batches by a
  background thread);
* a :class:`~repro.service.ingest.RollingWindow` keeps per-tenant
  workload statistics current at O(1) per event;
* on a configurable cadence the daemon attempts a retune — guarded by a
  **stability check** (skip when the window statistics have not
  materially drifted since the last applied tune) and a **sparsity
  check** (skip when the window holds too few jobs to carry signal);
* a retune hands the window's trace to
  :meth:`~repro.core.controller.TempoController.tune_from_trace`, whose
  own revert guard compares the multi-window-averaged observed QS
  vector against the previously applied configuration's baseline and
  rolls back regressions before optimizing further;
* observed :class:`~repro.service.events.NodeLost` telemetry shrinks
  the what-if cluster — and :class:`~repro.service.events.NodeRecovered`
  grows it back (clamped to the loss actually observed) — so candidate
  configurations are evaluated on the capacity that actually remains,
  not just used as a forced-retune signal;
* every applied configuration is recorded as an atomic
  :class:`ConfigSnapshot` so operators can :meth:`~TempoService.rollback`
  past that guard.

When constructed with a :class:`~repro.service.snapshot.ServiceState`,
the daemon is **durable**: every event, decision, applied configuration,
and rollback is journaled write-ahead, full-state snapshots are written
periodically, and :meth:`TempoService.resume` rebuilds a killed daemon
from its state directory — replaying the journal tail over the newest
snapshot — with window statistics again verifiable against a batch
recompute and the config history intact.

The service is split into two planes (see
:mod:`repro.service.sharding`).  The **data plane** is N
:class:`~repro.service.sharding.IngestShard` instances — each owning a
bus, a rolling window, and (durable, sharded) its own journal — with
telemetry routed per tenant by a stable hash; shards run in-process or
as ``multiprocessing`` workers.  The **control plane** is this class:
it owns the cadence, the guards, the controller, the rollback history,
and the decision/config journal, and at every cadence tick it drains
the shards' window states and merges them
(:meth:`~repro.service.ingest.RollingWindow.merge_states`) before
deciding exactly as an unsharded daemon would.  With ``shards=1`` (the
default) the shard shares the service's journal and every code path —
and every journal byte — is identical to the pre-sharding pipeline.

The daemon's clock is *simulated time carried by the events*, never the
wall clock — a serving run is exactly reproducible from its event
stream.
"""

from __future__ import annotations

import math
import os
import threading
import time as _time
from collections import deque
from dataclasses import dataclass

from repro.core.controller import ControlIteration, TempoController
from repro.core.decisions import DecisionEngine, DecisionRecord, TickSignals
from repro.obs import (
    BACKOFF_BUCKETS,
    BATCH_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    RESIDUAL_BUCKETS,
    Span,
)
from repro.rm.cluster import ClusterSpec
from repro.rm.config import RMConfig
from repro.service.events import (
    DecisionMade,
    EventBus,
    Heartbeat,
    NodeLost,
    NodeRecovered,
    ServiceEvent,
    ShardFailed,
    ShardPartitioned,
    ShardReconnected,
    ShardRecovered,
    TenantJoined,
    TenantLeft,
)
from repro.service.failover import FailoverConfig, FailoverReport, FailureDetector
from repro.service.ingest import (
    RollingWindow,
    TenantWindowStats,
    stats_gap,
    window_drift,
)
from repro.service.journal import (
    JournalError,
    JournalRecord,
    decode_event,
    encode_event,
    last_heartbeat,
)
from repro.service.sharding import (
    IngestShard,
    ShardFailedError,
    ShardPartitionedError,
    ShardRouter,
    ShardWorkerHandle,
    start_shard_workers,
)
from repro.service.transport import (
    RemoteShardHandle,
    TransportConfig,
    start_remote_shards,
)
from repro.service.snapshot import (
    ServiceState,
    config_from_dict,
    config_to_dict,
    controller_state_dict,
    inf_from_null,
    inf_to_null,
    restore_controller_state,
    stats_from_dict,
    stats_to_dict,
)
from repro.whatif.model import capacity_floor

#: Control events handled by the daemon itself (never folded into the
#: rolling window).
_CONTROL_EVENTS = (
    Heartbeat,
    TenantJoined,
    TenantLeft,
    NodeLost,
    NodeRecovered,
    ShardFailed,
    ShardRecovered,
    ShardPartitioned,
    ShardReconnected,
)

#: Maximum events pulled off the bus per drain-loop iteration; one
#: :meth:`TempoService.ingest_batch` call journals and folds the whole
#: batch, so a backlogged bus is drained at group-commit speed.
_DRAIN_BATCH = 512


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of :class:`TempoService`.

    Attributes:
        window: Rolling statistics window length in seconds (the paper's
            observation interval ``L``).
        retune_interval: Seconds of simulated time between retune
            attempts (the control cadence).
        drift_threshold: Minimum :func:`~repro.service.ingest.
            window_drift` versus the last *applied* tune's snapshot for
            a retune to proceed; below it the guard reports "stable".
        min_window_jobs: Minimum completed jobs in the window for a
            retune to proceed; below it the guard reports "sparse".
        history: Number of applied-configuration snapshots retained for
            rollback.
        decision_history: Retune decisions retained in memory (and in
            state snapshots — every snapshot re-serializes the retained
            deque, so the bound is what keeps snapshot size and write
            time flat over a daemon's lifetime).  The default keeps
            ~six weeks of decisions at a 15-minute cadence; the
            ``retunes``/``skips`` counters only see the retained window.
        queue_capacity: Bound of the daemon's event bus.
        observe: Whether the service carries live metrics (the
            observability plane of :mod:`repro.obs`).  ``False`` swaps
            every registry for a no-op stand-in — the uninstrumented
            baseline ``bench_perf_obs_overhead.py`` measures against.
        sample_metrics: Whether to *persist* metrics: include the merged
            registry dump in state snapshots and journal one
            ``metrics`` record (:class:`~repro.service.events.
            MetricsSampled`) per cadence tick.  Off by default so the
            journal and snapshot bytes of API-constructed services stay
            exactly as before; the CLI turns it on for its state dirs.
    """

    window: float = 1800.0
    retune_interval: float = 900.0
    drift_threshold: float = 0.02
    min_window_jobs: int = 5
    history: int = 16
    decision_history: int = 4096
    queue_capacity: int = 100_000
    observe: bool = True
    sample_metrics: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.retune_interval <= 0:
            raise ValueError(
                f"retune_interval must be positive, got {self.retune_interval}"
            )
        if self.drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if self.min_window_jobs < 0:
            raise ValueError("min_window_jobs must be non-negative")
        if self.history < 2:
            raise ValueError("history must be >= 2 (incumbent + predecessor)")
        if self.decision_history < 1:
            raise ValueError("decision_history must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


@dataclass(frozen=True)
class RetuneDecision:
    """Outcome of one cadence tick of the daemon.

    Attributes:
        time: Simulated time of the attempt.
        index: Control-iteration index (shared with the controller).
        retuned: Whether a tune actually ran.
        reason: ``"initial"``, ``"drift"``, or ``"forced"`` when retuned;
            ``"stable"`` or ``"sparse"`` when skipped.
        drift: The stability signal measured at the attempt.
        latency: Wall-clock seconds the tune took (0.0 when skipped).
        iteration: The controller's record when retuned, else ``None``.
        record: The decision plane's full
            :class:`~repro.core.decisions.DecisionRecord` (verdict,
            guard votes, prediction/observation/residual).  ``None``
            under the byte-compatible legacy pipeline, whose journal
            records keep the pre-decision-plane wire format.
    """

    time: float
    index: int
    retuned: bool
    reason: str
    drift: float
    latency: float = 0.0
    iteration: ControlIteration | None = None
    record: DecisionRecord | None = None

    @property
    def verdict(self) -> str:
        """The decision plane's verdict for this cadence tick."""
        if self.record is not None:
            return self.record.verdict
        if not self.retuned:
            return "hold"
        if self.iteration is not None:
            return self.iteration.verdict
        return "accept"


@dataclass(frozen=True)
class ConfigSnapshot:
    """Atomic record of an applied RM configuration (rollback unit)."""

    index: int
    time: float
    config: RMConfig


class TempoService:
    """Long-running serving loop around a :class:`TempoController`.

    Synchronous use (deterministic; what the replay driver and tests do)::

        service = TempoService(controller)
        for event in telemetry:
            service.process(event)

    Daemon use (asynchronous; a producer publishes to the bus)::

        service.start()
        service.submit(event)   # from any thread
        ...
        service.stop()          # drains the queue, then joins

    Args:
        controller: The tuned control loop; its ``config`` is the live
            RM configuration the service manages.
        config: Operational knobs (cadence, window, guards).
        bus: Optional externally owned event bus.
        state: Optional durable home (journal + snapshots).  When given,
            every event is journaled *before* it is processed and the
            service can later be rebuilt with :meth:`resume`.  Its shard
            layout must match ``shards``.
        shards: Data-plane shard count.  ``1`` (the default) keeps the
            exact pre-sharding pipeline: one window, one journal,
            byte-identical output.  ``N > 1`` routes telemetry per
            tenant onto N :class:`~repro.service.sharding.IngestShard`
            instances whose statistics the control plane merges at each
            cadence tick.
        shard_workers: Run the shards as ``multiprocessing`` worker
            processes (each owning its journal and window) instead of
            in-process objects.  Batches are acknowledged when queued to
            a worker, so durability lags acknowledgement by the queue
            depth — the same contract as ``--async-journal``, recovered
            by the same chunk-boundary rewind.  Ignored when
            ``shards == 1``.
        tcp_workers: Run the shards as loopback **TCP** worker
            processes behind :class:`~repro.service.transport.
            RemoteShardHandle` proxies — same acknowledgement and
            journal-ownership contract as ``shard_workers``, plus the
            transport plane's partition tolerance (bounded buffering,
            backoff reconnect, degraded-mode serving).  Exclusive with
            ``shard_workers``; ignored when ``shards == 1``.
        shard_endpoints: Addresses of operator-managed ``repro worker``
            processes, one ``(host, port)`` per shard — the service
            connects instead of spawning.  Exclusive with both worker
            modes and with durable ``state`` (external workers own
            their journals end to end).
        transport: Optional :class:`~repro.service.transport.
            TransportConfig` tuning the TCP planes' timeouts, backoff,
            and send-queue bound.
        failover: Optional :class:`~repro.service.failover.
            FailoverConfig` enabling shard supervision: worker shards
            emit heartbeats, a :class:`~repro.service.failover.
            FailureDetector` declares dead ones, and every barrier that
            observes a dead shard triggers :meth:`failover_shard` — the
            dead shard's journal rewinds to its newest heartbeat
            boundary, a replacement is spawned and replayed, and the
            failed call is retried once against it.  ``None`` (the
            default) keeps the pre-supervision behavior: a dead shard
            raises :class:`~repro.service.sharding.ShardFailedError`.
    """

    def __init__(
        self,
        controller: TempoController,
        config: ServiceConfig | None = None,
        bus: EventBus | None = None,
        state: ServiceState | None = None,
        *,
        shards: int = 1,
        shard_workers: bool = False,
        tcp_workers: bool = False,
        shard_endpoints: list | None = None,
        transport: TransportConfig | None = None,
        failover: FailoverConfig | None = None,
    ):
        self.controller = controller
        self.config = config or ServiceConfig()
        # One decision plane shared with the controller: the daemon
        # consults it at each cadence tick (sparsity/stability phase),
        # the controller in the revert phase of the tune itself.
        self.engine: DecisionEngine = getattr(
            controller, "engine", None
        ) or DecisionEngine.from_spec(None)
        self._decision_listeners: list = []
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if state is not None and state.shards != shards:
            raise ValueError(
                f"state dir is laid out for {state.shards} shard(s) but the "
                f"service was built with {shards}; resume with --reshard to "
                "change the layout"
            )
        self.bus = bus or EventBus(self.config.queue_capacity)
        self.state = state
        self.router = ShardRouter(shards)
        self.shard_workers = bool(shard_workers) and shards > 1
        #: TCP loopback worker fleet (see :mod:`repro.service.transport`).
        self.tcp_workers = bool(tcp_workers) and shards > 1
        if self.shard_workers and self.tcp_workers:
            raise ValueError("choose one of shard_workers / tcp_workers")
        #: Operator-managed worker addresses (``repro worker`` peers).
        self.shard_endpoints = None
        if shard_endpoints is not None:
            if self.shard_workers or self.tcp_workers:
                raise ValueError(
                    "shard_endpoints is exclusive with shard_workers/tcp_workers"
                )
            if len(shard_endpoints) != shards:
                raise ValueError(
                    f"{len(shard_endpoints)} endpoint(s) for {shards} shard(s)"
                )
            if shards < 2:
                raise ValueError(
                    "external shard endpoints require shards >= 2 (the "
                    "single-shard path runs the pre-sharding pipeline)"
                )
            if state is not None:
                raise ValueError(
                    "durable state with external workers is not supported; "
                    "give each `repro worker` its own --journal instead"
                )
            self.shard_endpoints = [
                (str(host), int(port)) for host, port in shard_endpoints
            ]
        self.transport = transport
        self._launcher = None
        self.failover = failover
        self.detector = FailureDetector(failover) if failover is not None else None
        #: Completed failovers, newest last (see ``repro chaos``).
        self.failovers: list[FailoverReport] = []
        self.shard_failures = 0
        self.shard_recoveries = 0
        # Control-plane registry: the single-shard ingest path, the
        # decision plane, and the retune loop all count here.  Shards
        # keep their own registries (merged at drain barriers).
        self.metrics = MetricsRegistry() if self.config.observe else NullRegistry()
        if state is not None and self.config.observe:
            state.journal.metrics = self.metrics
        #: Latest metrics dump drained from each worker shard, and the
        #: pre-promotion/restored base it accumulates on top of.
        self._shard_metrics: dict[int, dict] = {}
        self._shard_metrics_base: dict[int, dict] = {}
        self._last_metrics_sample: dict | None = None
        #: Partition episodes in flight: shard id -> simulated start time.
        self._partitioned: dict[int, float] = {}
        #: Last successfully drained stats/state per shard (the stale
        #: copies degraded-mode serving hands out through a partition).
        self._stats_cache: dict[int, dict] = {}
        self._state_cache: dict[int, dict] = {}
        #: Barrier calls answered from a stale cache (degraded serves).
        self.stale_serves = 0
        self.shard_partitions = 0
        self.shard_reconnects = 0
        #: Transport counters folded in from handles failover replaced,
        #: and the last totals scraped into the metrics registry.
        self._transport_base: dict[int, dict] = {}
        self._transport_seen: dict[tuple, int] = {}
        if self.shard_workers:
            if state is not None:
                # Workers own their journals; the parent must neither
                # open nor compact them while the workers run.
                state.shard_compaction = False
                paths = [state.shard_journal_path(i) for i in range(shards)]
                opts = state.shard_journal_opts()
            else:
                paths, opts = None, None
            self.shards = start_shard_workers(
                shards, self.config.window, paths, opts,
                observe=self.config.observe,
                heartbeat_interval=(
                    failover.heartbeat_interval if failover is not None else 1.0
                ),
                failover_after=(
                    failover.failover_after if failover is not None else None
                ),
            )
        elif self.tcp_workers:
            if state is not None:
                # TCP workers own their journals exactly like mp workers.
                state.shard_compaction = False
                paths = [state.shard_journal_path(i) for i in range(shards)]
                opts = state.shard_journal_opts()
            else:
                paths, opts = None, None
            self.shards, self._launcher = start_remote_shards(
                shards, self.config.window, paths, opts,
                observe=self.config.observe,
                heartbeat_interval=(
                    failover.heartbeat_interval if failover is not None else 1.0
                ),
                failover_after=(
                    failover.failover_after if failover is not None else None
                ),
                config=self.transport,
            )
            # Adopt the resolved transport config (wire_codec "auto" →
            # the shard journal codec) so failover respawns keep it.
            self.transport = self._launcher.config
        elif self.shard_endpoints is not None:
            self.shards = [
                RemoteShardHandle(
                    i,
                    self.shard_endpoints[i],
                    heartbeat_interval=(
                        failover.heartbeat_interval if failover is not None else 1.0
                    ),
                    failover_after=(
                        failover.failover_after if failover is not None else None
                    ),
                    config=self.transport,
                )
                for i in range(shards)
            ]
        else:
            self.shards = [
                IngestShard(
                    i,
                    self.config.window,
                    journal=(
                        state.shard_journal(i)
                        if state is not None and shards > 1
                        else None
                    ),
                    queue_capacity=self.config.queue_capacity,
                    metrics=(
                        MetricsRegistry()
                        if self.config.observe and shards > 1
                        else None
                    ),
                )
                for i in range(shards)
            ]
        self._m_ingest_events = self.metrics.counter(
            "tempo_ingest_events_total", "Events folded into the window."
        )
        self._m_ingest_batches = self.metrics.counter(
            "tempo_ingest_batches_total", "Ingest batches processed."
        )
        self._now = 0.0
        self._telemetry = 0
        self.decisions: deque[RetuneDecision] = deque(
            maxlen=self.config.decision_history
        )
        self.active_tenants: set[str] = set()
        self.nodes_lost = 0
        self.nodes_recovered = 0
        self.lost_capacity: dict[str, int] = {}
        self._history: deque[ConfigSnapshot] = deque(maxlen=self.config.history)
        self._history.append(ConfigSnapshot(-1, 0.0, controller.config))
        self._last_attempt: float | None = None
        self._last_snapshot: dict[str, TenantWindowStats] | None = None
        self._index = 0
        self._force = False
        self._events = 0
        self._bus_consumed = 0  # bus-delivered events fully processed
        self._replaying = False
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._drain_error: BaseException | None = None
        # Whatif-phase staging: while a pooled tune holds the control
        # lock (the drain thread is blocked inside retune), a short-
        # lived pump thread moves bus events into this list so the
        # bounded bus never fills and sheds during a long whatif phase.
        # The drain loop consumes staged events first, preserving order.
        self._staged: list = []
        self._staged_lock = threading.Lock()
        # Last-scraped cumulative evalplane counters (metrics deltas).
        self._whatif_seen = {"sim_runs": 0, "hits": 0}

    def __repr__(self) -> str:
        return (
            f"TempoService(shards={self.router.shards}, events={self._events}, "
            f"retunes={self.retunes}, skips={self.skips}, now={self.now:.0f}s)"
        )

    # -- data-plane views ---------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Data-plane shard count."""
        return self.router.shards

    @property
    def now(self) -> float:
        """Latest simulated event time the service has seen."""
        if self.router.shards == 1:
            return self.shards[0].window.now
        return self._now

    @property
    def window(self) -> RollingWindow:
        """The service's rolling window.

        Single-shard: the live window object (mutating it is the same
        as pre-sharding behavior).  Sharded: a *merged copy* built from
        every shard's current state — a consistent read-only view;
        mutations do not feed back into the shards.  Supervised planes
        sweep for dead shards first, so introspection after a crash
        triggers the same failover an ingest call would.
        """
        if self.failover is not None:
            self.check_shards()
        if self.router.shards == 1:
            return self.shards[0].window
        with self._lock:
            return RollingWindow.merge_states(
                [s["window"] for s in self._drain_shards(self._now)]
            )

    @property
    def telemetry_ingested(self) -> int:
        """Telemetry events folded into the data plane (control excluded)."""
        if self.router.shards == 1:
            return self.shards[0].window.events_ingested
        return self._telemetry

    def _drain_shards(self, now: float) -> list[dict]:
        """Advance every shard to ``now`` and collect their states.

        For worker shards this is the synchronization barrier: the
        reply necessarily follows every batch queued before it.  Shard
        metrics dumps ride the same barrier — the control plane caches
        the latest one per shard for merging, exactly like window stats.
        """
        states = []
        for i in range(len(self.shards)):
            try:
                drained = self._supervised(i, lambda shard: shard.drain_state(now))
            except ShardPartitionedError:
                drained = self._stale_state(i)
            else:
                self._note_reconnected(i)
                self._state_cache[i] = drained
            states.append(drained)
        for state in states:
            dump = state.get("metrics")
            if dump:
                self._shard_metrics[int(state["shard"])] = dump
        return states

    def _stale_state(self, shard_id: int) -> dict:
        """Degraded mode: the last drained state of a partitioned shard.

        Before the first successful drain there is nothing cached; an
        empty window at journal position 0 is returned instead, which
        is always safe — a snapshot recording seq 0 for the shard just
        replays its journal from the start on resume.
        """
        self._note_partitioned(shard_id)
        cached = self._state_cache.get(shard_id)
        if cached is None:
            cached = {
                "shard": shard_id,
                "window": RollingWindow(self.config.window).to_state(),
                "seq": 0,
            }
        return cached

    def _merged_shard_snapshot(self, now: float) -> dict[str, TenantWindowStats]:
        """Per-tenant statistics merged across every shard — O(tenants).

        The cadence tick's guard view: each shard contributes its
        running-sums snapshot (no window entries cross a process
        boundary), and same-tenant parts — which the per-tenant routing
        invariant makes a degenerate single-part case — combine through
        :meth:`TenantWindowStats.merged`.
        """
        at = max(now, self._now)
        merged: dict[str, TenantWindowStats] = {}
        for i in range(len(self.shards)):
            try:
                drained = self._supervised(i, lambda shard: shard.drain_stats(at))
            except ShardPartitionedError:
                self._note_partitioned(i)
                drained = self._stats_cache.get(i, {})
            else:
                self._note_reconnected(i)
                self._stats_cache[i] = dict(drained)
            for name, stats in drained.items():
                mine = merged.get(name)
                if mine is None:
                    merged[name] = stats
                else:
                    merged[name] = TenantWindowStats.merged(
                        [mine, stats], self.config.window
                    )
        return merged

    def _control_window(self, now: float) -> RollingWindow:
        """The window the control plane decides on at a cadence tick.

        Single-shard: the live window, advanced to ``now`` (eviction
        current at the attempt time — the pre-sharding behavior,
        unchanged).  Sharded: every shard advanced to the global clock
        and merged into one window, so the merged statistics equal what
        a single window ingesting the whole stream would report.
        """
        if self.router.shards == 1:
            window = self.shards[0].window
            window.advance(now)
            return window
        states = self._drain_shards(max(now, self._now))
        return RollingWindow.merge_states([s["window"] for s in states])

    def stats_gap_now(self) -> float:
        """Worst incremental-vs-batch stats deviation across the data plane.

        Single-shard and in-process shards check the live accumulators
        directly; worker shards are checked through their drained state
        (the refold-vs-``fsum`` comparison on the merged window).
        """
        with self._lock:
            if self.failover is not None:
                self.check_shards()
            if self.router.shards == 1:
                return stats_gap(self.shards[0].window)
            if any(not hasattr(shard, "window") for shard in self.shards):
                # Worker shards (mp or TCP) hold their windows behind a
                # process boundary: check the merged drained state.
                return stats_gap(self._control_window(self._now))
            return max(stats_gap(shard.window) for shard in self.shards)

    def close(self) -> None:
        """Shut the data plane down.

        Flushes and closes every shard journal; worker shards are
        stopped and joined.  The control journal belongs to the
        :class:`~repro.service.snapshot.ServiceState` and is closed by
        its owner.
        """
        for shard in self.shards:
            shard.close()
        if self._launcher is not None:
            self._launcher.close()

    # -- failover plane -----------------------------------------------------

    def _supervised(self, shard_id: int, call):
        """Run one shard barrier call; on a shard failure, fail over and retry.

        Every synchronous interaction with a shard flows through here.
        A :class:`~repro.service.sharding.ShardFailedError` — a dead
        worker process, a reply past the supervised bound, an injected
        fault — triggers :meth:`failover_shard` and ONE retry against
        the replacement.  Without a failover config the error
        propagates, preserving the pre-supervision contract.
        """
        try:
            return call(self.shards[shard_id])
        except ShardFailedError as exc:
            if self.failover is None:
                raise
            self.failover_shard(shard_id, exc.reason)
            return call(self.shards[shard_id])

    def _note_partitioned(self, shard_id: int) -> None:
        """Account one stale serve; open a partition episode if needed.

        First stale serve of an episode journals a
        :class:`~repro.service.events.ShardPartitioned` control event
        and raises the per-shard staleness gauge, so dashboards and a
        later resume both see when degraded-mode serving started.
        """
        self.stale_serves += 1
        self.metrics.counter(
            "tempo_shard_stale_serves_total",
            "Barrier calls answered from a stale cache through a partition.",
            shard=str(shard_id),
        ).inc()
        if shard_id in self._partitioned:
            return
        self._partitioned[shard_id] = self._now
        self.metrics.gauge(
            "tempo_shard_partitioned",
            "1 while the shard is unreachable and served from stale stats.",
            shard=str(shard_id),
        ).set(1.0)
        event = ShardPartitioned(max(self._now, 0.0), shard=shard_id)
        if self.state is not None and not self._replaying:
            self.state.record_event(encode_event(event))
        self._apply_control(event)
        self._events += 1

    def _note_reconnected(self, shard_id: int) -> None:
        """Close a partition episode after a successful fresh drain."""
        started = self._partitioned.pop(shard_id, None)
        if started is None:
            return
        self.metrics.gauge(
            "tempo_shard_partitioned",
            "1 while the shard is unreachable and served from stale stats.",
            shard=str(shard_id),
        ).set(0.0)
        event = ShardReconnected(
            max(self._now, 0.0),
            shard=shard_id,
            outage=max(0.0, self._now - started),
        )
        if self.state is not None and not self._replaying:
            self.state.record_event(encode_event(event))
        self._apply_control(event)
        self._events += 1

    def transport_stats(self) -> dict[int, dict]:
        """Per-shard transport counters, cumulative across failovers.

        Empty dicts for shards without a TCP transport.  Counters from
        handles a failover replaced are carried in an additive base, so
        the totals stay monotone across respawns — the same contract as
        the shard metrics dumps.
        """
        totals: dict[int, dict] = {}
        for shard_id, shard in enumerate(self.shards):
            stats_fn = getattr(shard, "transport_stats", None)
            stats = dict(stats_fn()) if callable(stats_fn) else {}
            for key, value in self._transport_base.get(shard_id, {}).items():
                stats[key] = stats.get(key, 0) + value
            totals[shard_id] = stats
        return totals

    def check_shards(self) -> list[FailoverReport]:
        """Sweep the data plane for dead shards and fail each one over.

        Runs at the top of every supervised ingest call (and is safe to
        call from operator code at any time): a shard whose process has
        exited is replaced immediately, and a live worker whose newest
        heartbeat is older than ``failover_after`` is declared dead by
        the :class:`~repro.service.failover.FailureDetector` and
        replaced the same way.  Returns the failovers performed
        (usually an empty list).  No-op without a failover config.
        """
        if self.failover is None:
            return []
        reports: list[FailoverReport] = []
        with self._lock:
            for shard_id in range(len(self.shards)):
                shard = self.shards[shard_id]
                if not getattr(shard, "alive", True):
                    reason = getattr(shard, "reason", "process-exit")
                    reports.append(self.failover_shard(shard_id, reason))
                    continue
                age = getattr(shard, "heartbeat_age", None)
                if age is None or self.detector is None:
                    continue
                self.detector.observe(shard_id, age())
                if self.detector.suspect(shard_id):
                    reports.append(
                        self.failover_shard(shard_id, "heartbeat-timeout")
                    )
        return reports

    def failover_shard(
        self, shard_id: int, reason: str = "process-exit"
    ) -> FailoverReport:
        """Replace a dead shard; bounded journal replay, not a restart.

        The recovery path every detection signal converges on:

        1. the old shard is fenced (worker processes are SIGKILLed and
           reaped, so a merely-wedged worker cannot write after its
           replacement);
        2. *worker mode*: the dead shard's journal — whose unsynced tail
           died with the process — rewinds to its newest broadcast-
           heartbeat boundary (the chunk edge crash recovery already
           uses) and snapshots past the boundary are pruned.  In-process
           and single-shard journals are parent-owned and consistent, so
           nothing is truncated and nothing is lost;
        3. the replacement window is rebuilt from the newest surviving
           snapshot plus a replay of the shard's journal tail;
        4. a replacement shard (worker or in-process, matching the
           plane's mode) takes the slot, and
           :class:`~repro.service.events.ShardFailed` /
           :class:`~repro.service.events.ShardRecovered` are journaled
           in the control journal and applied (counters, metrics), so a
           later resume replays the failover history.

        Surviving shards are untouched: one dead shard costs one
        bounded replay.  Requires a failover config.
        """
        if self.failover is None:
            raise RuntimeError("failover_shard() requires a FailoverConfig")
        with self._lock:
            started = _time.perf_counter()
            shards = self.router.shards
            old = self.shards[shard_id]
            fence = getattr(old, "kill", None)
            if callable(fence):
                try:
                    fence()
                except Exception:
                    pass  # already gone; the join reaped what it could
            old_transport = getattr(old, "transport_stats", None)
            if callable(old_transport):
                # Carry the fenced handle's transport counters so the
                # scraped totals stay monotone across the respawn.
                base = self._transport_base.setdefault(shard_id, {})
                for key, value in old_transport().items():
                    base[key] = base.get(key, 0) + value
            if self._partitioned.pop(shard_id, None) is not None:
                self.metrics.gauge(
                    "tempo_shard_partitioned",
                    "1 while the shard is unreachable and served from "
                    "stale stats.",
                    shard=str(shard_id),
                ).set(0.0)
            state = self.state
            replacement_window = RollingWindow(self.config.window)
            boundary_time = 0.0
            records_dropped = telemetry_dropped = replayed = 0
            if state is not None:
                if self.shard_workers or self.tcp_workers or shards == 1:
                    # Worker journals lose their unsynced tail with the
                    # process: rewind to the heartbeat boundary.  The
                    # single-shard call never truncates (the control
                    # journal is parent-owned); it only reports the
                    # boundary.
                    boundary_time, _cut, records_dropped, telemetry_dropped = (
                        state.failover_shard(shard_id)
                    )
                else:
                    # In-process shard journals are parent-owned and
                    # consistent through the last acknowledged append:
                    # replay everything, lose nothing.
                    boundary = last_heartbeat(state.shard_journal(shard_id))
                    if boundary is not None:
                        boundary_time = boundary[1]
                journal = (
                    state.journal if shards == 1 else state.shard_journal(shard_id)
                )
                window_state = None
                base_seq = 0
                loaded = state.load_latest_snapshot()
                if loaded is not None:
                    base_seq, snapshot = loaded
                    if shards == 1:
                        window_state = snapshot.get("window")
                    else:
                        windows = snapshot.get("shard_windows")
                        if windows is not None:
                            window_state = windows[shard_id]
                        recorded = snapshot.get("sharding", {}).get("shard_seqs")
                        base_seq = (
                            int(recorded[shard_id]) if recorded is not None else 0
                        )
                else:
                    segments = journal.segments()
                    if segments and journal._first_seq_of(segments[0]) > 1:
                        raise JournalError(
                            f"shard {shard_id} journal was compacted (first "
                            f"retained seq {journal._first_seq_of(segments[0])}) "
                            "but no readable snapshot covers the deleted "
                            "prefix; cannot fail over"
                        )
                replayer = IngestShard(shard_id, self.config.window)
                if window_state is not None:
                    replayer.restore(window_state)
                tail = [
                    decode_event(record.data)
                    for record in journal.iter_records(after=base_seq)
                    if record.kind == "event"
                ]
                if tail:
                    replayer.fold(tail)
                replayed = len(tail)
                replacement_window = replayer.window
            if self.shard_workers:
                if state is not None:
                    # The truncation opened a parent-side handle; the
                    # replacement worker owns the journal from here on.
                    state.release_shard_journal(shard_id)
                handle = ShardWorkerHandle(
                    shard_id,
                    self.config.window,
                    None if state is None else state.shard_journal_path(shard_id),
                    None if state is None else state.shard_journal_opts(),
                    observe=self.config.observe,
                    heartbeat_interval=self.failover.heartbeat_interval,
                    failover_after=self.failover.failover_after,
                )
                if state is not None:
                    handle.restore(replacement_window.to_state())
                self.shards[shard_id] = handle
            elif self.tcp_workers:
                if state is not None:
                    # The truncation opened a parent-side handle; the
                    # respawned worker owns the journal from here on.
                    state.release_shard_journal(shard_id)
                address = self._launcher.spawn(shard_id)
                remote = RemoteShardHandle(
                    shard_id,
                    address,
                    heartbeat_interval=self.failover.heartbeat_interval,
                    failover_after=self.failover.failover_after,
                    config=self.transport,
                    launcher=self._launcher,
                )
                if state is not None:
                    remote.restore(replacement_window.to_state())
                self.shards[shard_id] = remote
            elif self.shard_endpoints is not None:
                # Operator-managed worker: reconnect to the same address
                # (the operator restarts the process); no parent-side
                # journal exists, so there is nothing to replay here.
                self.shards[shard_id] = RemoteShardHandle(
                    shard_id,
                    self.shard_endpoints[shard_id],
                    heartbeat_interval=self.failover.heartbeat_interval,
                    failover_after=self.failover.failover_after,
                    config=self.transport,
                )
            else:
                replacement = IngestShard(
                    shard_id,
                    self.config.window,
                    journal=(
                        state.shard_journal(shard_id)
                        if state is not None and shards > 1
                        else None
                    ),
                    queue_capacity=self.config.queue_capacity,
                    metrics=(
                        MetricsRegistry()
                        if self.config.observe and shards > 1
                        else None
                    ),
                )
                replacement.window = replacement_window
                self.shards[shard_id] = replacement
            # The dead shard's registry died with it; fold its last
            # drained dump into the additive base so merged totals stay
            # monotone across the failover (same move as promotion).
            stale = self._shard_metrics.pop(shard_id, None)
            if stale:
                carried = MetricsRegistry.from_dict(
                    self._shard_metrics_base.get(shard_id, {})
                )
                carried.merge(stale)
                self._shard_metrics_base[shard_id] = carried.to_dict()
            if telemetry_dropped:
                self._telemetry = max(0, self._telemetry - telemetry_dropped)
            if self.detector is not None:
                self.detector.observe(shard_id, 0.0)
            latency = _time.perf_counter() - started
            now = max(self._now, 0.0)
            failed = ShardFailed(now, shard=shard_id, reason=str(reason))
            recovered = ShardRecovered(
                now,
                shard=shard_id,
                replayed=replayed,
                dropped=records_dropped,
                latency=latency,
            )
            if state is not None and not self._replaying:
                state.record_event(encode_event(failed))
                state.record_event(encode_event(recovered))
            self._apply_control(failed)
            self._apply_control(recovered)
            self._events += 2
            report = FailoverReport(
                shard=shard_id,
                time=now,
                reason=str(reason),
                boundary=boundary_time,
                replayed=replayed,
                records_dropped=records_dropped,
                events_lost=telemetry_dropped,
                latency=latency,
            )
            self.failovers.append(report)
            return report

    # -- telemetry ingestion ------------------------------------------------

    def process(self, event: ServiceEvent) -> RetuneDecision | None:
        """Ingest one event, advance the clock, retune if the cadence hit.

        With durable state attached, the event is journaled *before* it
        mutates anything (write-ahead), so a crash between the append
        and the in-memory update is recovered by replaying the record.
        Returns the :class:`RetuneDecision` when this event triggered a
        cadence tick, else ``None``.
        """
        with self._lock:
            if self.failover is not None:
                self.check_shards()
            if self.router.shards == 1:
                window = self.shards[0].window
                if self.state is not None and not self._replaying:
                    self.state.record_event(encode_event(event))
                if isinstance(event, _CONTROL_EVENTS):
                    self._apply_control(event)
                    # Control events do not pass through ingest, so the
                    # clock/eviction advance happens here.
                    window.advance(event.time)
                else:
                    window.ingest(event)  # advances the window itself
                self._m_ingest_events.inc()
            else:
                self._ingest_one_sharded(event)
            self._events += 1
            if event.time > self._now:
                self._now = event.time
            decision: RetuneDecision | None = None
            if self._last_attempt is None:
                # Anchor the cadence at the first event's timestamp.
                self._last_attempt = event.time
            elif (
                not self._replaying
                and event.time - self._last_attempt >= self.config.retune_interval
            ):
                # During journal replay the cadence stays quiet: retune
                # outcomes are restored from the journal's decision and
                # config records, never recomputed.
                decision = self.retune(event.time)
            if self.state is not None and not self._replaying:
                force = decision is not None and decision.retuned
                if self.state.snapshot_due(force=force):
                    self.state.write_snapshot(self.state_dict())
            return decision

    def _apply_control(self, event: ServiceEvent) -> None:
        """Apply one control event's state change (no clock advance)."""
        if isinstance(event, TenantJoined):
            self.active_tenants.add(event.tenant)
        elif isinstance(event, TenantLeft):
            self.active_tenants.discard(event.tenant)
            # Single-shard path only: sharded daemons route churn to the
            # owning shard (see _apply_membership / IngestShard.fold).
            self.shards[0].window.drop_tenant(event.tenant)
            if self._last_snapshot is not None:
                self._last_snapshot.pop(event.tenant, None)
            self._force = True
        elif isinstance(event, NodeLost):
            self.nodes_lost += event.containers
            self.lost_capacity[event.pool] = (
                self.lost_capacity.get(event.pool, 0) + event.containers
            )
            self._force = True
        elif isinstance(event, NodeRecovered):
            # Recovery is clamped to the loss actually observed: a
            # recovery report for capacity this daemon never saw lost
            # must not grow the what-if cluster past its spec.
            restored = min(event.containers, self.lost_capacity.get(event.pool, 0))
            self.nodes_recovered += restored
            if restored:
                remaining = self.lost_capacity[event.pool] - restored
                if remaining:
                    self.lost_capacity[event.pool] = remaining
                else:
                    del self.lost_capacity[event.pool]
                self._force = True  # capacity changed; stability is void
        elif isinstance(event, ShardFailed):
            self.shard_failures += 1
            self.metrics.counter(
                "tempo_shard_failovers_total",
                "Shards declared dead and replaced by the supervision plane.",
                shard=str(event.shard),
            ).inc()
        elif isinstance(event, ShardRecovered):
            self.shard_recoveries += 1
            self.metrics.counter(
                "tempo_shard_recoveries_total",
                "Replacement shards that finished journal replay and rejoined.",
                shard=str(event.shard),
            ).inc()
            if event.latency > 0:
                self.metrics.histogram(
                    "tempo_shard_failover_latency_seconds",
                    "Wall-clock failover latency (rewind + replay + respawn).",
                ).observe(event.latency)
        elif isinstance(event, ShardPartitioned):
            self.shard_partitions += 1
            self.metrics.counter(
                "tempo_shard_partitions_total",
                "Partition episodes: a shard went unreachable and the "
                "control plane began serving stale statistics for it.",
                shard=str(event.shard),
            ).inc()
        elif isinstance(event, ShardReconnected):
            self.shard_reconnects += 1
            self.metrics.counter(
                "tempo_shard_reconnects_total",
                "Partition episodes that healed by reconnect (no failover).",
                shard=str(event.shard),
            ).inc()
            if event.outage > 0:
                self.metrics.histogram(
                    "tempo_shard_outage_seconds",
                    "Simulated seconds each healed partition served stale.",
                    buckets=BACKOFF_BUCKETS,
                ).observe(event.outage)

    def _apply_membership(self, event: ServiceEvent) -> None:
        """Control-plane half of a tenant-churn event (sharded mode).

        The window half — dropping the departed tenant's entries — is
        applied by the owning shard, which received the event in stream
        order; here only the membership set, the stability baseline,
        and the forced-retune flag move.
        """
        if isinstance(event, TenantJoined):
            self.active_tenants.add(event.tenant)
        else:
            self.active_tenants.discard(event.tenant)
            if self._last_snapshot is not None:
                self._last_snapshot.pop(event.tenant, None)
            self._force = True

    def _ingest_one_sharded(self, event: ServiceEvent) -> None:
        """Route one live event through the sharded data plane.

        Tenant-scoped events (telemetry and churn) are journaled and
        folded by their owning shard; cluster-level control events are
        journaled in the control journal and applied here; heartbeats
        are broadcast to every shard journal so all journals share
        chunk boundaries.
        """
        journaling = self.state is not None and not self._replaying
        shard = self.router.route(event)
        if shard is None:
            if journaling:
                self.state.record_event(encode_event(event))
            if isinstance(event, Heartbeat):
                for target_id in range(len(self.shards)):
                    self._supervised(
                        target_id, lambda target: target.ingest([event])
                    )
                if journaling:
                    self.state.note_shard_records(len(self.shards))
            else:
                self._apply_control(event)  # NodeLost / NodeRecovered
                self._m_ingest_events.inc()
        else:
            if isinstance(event, (TenantJoined, TenantLeft)):
                self._apply_membership(event)
            else:
                self._telemetry += 1
            self._supervised(shard, lambda target: target.ingest([event]))
            if journaling:
                self.state.note_shard_records(1)

    def _cadence_chunks(
        self, events: list[ServiceEvent]
    ) -> list[tuple[list[ServiceEvent], float | None]]:
        """Split a batch at the cadence ticks it will trigger.

        Pure pre-scan over event times (the cadence depends on nothing
        else), so :meth:`ingest_batch` can journal each sub-batch
        *before* folding it while keeping journal record order identical
        to the per-event path: every tick's ``decision``/``config``
        record lands right after the event that triggered it, never
        after telemetry the live daemon had not yet seen.
        """
        chunks: list[tuple[list[ServiceEvent], float | None]] = []
        anchor = self._last_attempt
        current: list[ServiceEvent] = []
        for event in events:
            current.append(event)
            if anchor is None:
                anchor = event.time
            elif event.time - anchor >= self.config.retune_interval:
                anchor = event.time
                chunks.append((current, event.time))
                current = []
        if current:
            chunks.append((current, None))
        return chunks

    def ingest_batch(self, events) -> list[RetuneDecision]:
        """Ingest a chunk of telemetry with group-committed durability.

        The batch fast path: the chunk is journaled write-ahead with
        one :meth:`~repro.service.snapshot.ServiceState.record_events`
        group commit per cadence sub-batch (instead of one append per
        record), telemetry folds through
        :meth:`~repro.service.ingest.RollingWindow.ingest_many` with a
        single eviction pass per sub-batch, and the snapshot cadence is
        checked once at the end.  Control events flush pending telemetry
        first, so their state changes (tenant drop, capacity loss and
        recovery) land at exactly the stream position the per-event path
        would apply them.  Returns the retune decisions of the cadence
        ticks the batch crossed, in order; the outcomes are identical to
        feeding the same events through :meth:`process` one at a time.
        """
        events = list(events)
        decisions: list[RetuneDecision] = []
        if not events:
            return decisions
        with self._lock:
            if self.failover is not None:
                self.check_shards()
            retuned = False
            if self.router.shards == 1:
                window = self.shards[0].window
                pending: list[ServiceEvent] = []
                for chunk, tick in self._cadence_chunks(events):
                    if self.state is not None and not self._replaying:
                        self.state.record_events(chunk)
                    for event in chunk:
                        if isinstance(event, _CONTROL_EVENTS):
                            if pending:
                                window.ingest_many(pending)
                                pending.clear()
                            self._apply_control(event)
                            window.advance(event.time)
                        else:
                            pending.append(event)
                        self._events += 1
                    if pending:
                        window.ingest_many(pending)
                        pending.clear()
                    self._m_ingest_events.inc(len(chunk))
                    self._m_ingest_batches.inc()
                    if tick is not None and not self._replaying:
                        decision = self.retune(tick)
                        decisions.append(decision)
                        retuned = retuned or decision.retuned
            else:
                for chunk, tick in self._cadence_chunks(events):
                    retuned = (
                        self._ingest_chunk_sharded(chunk, tick, decisions)
                        or retuned
                    )
            if self._last_attempt is None:
                self._last_attempt = events[0].time
            if self.state is not None and not self._replaying:
                if self.state.snapshot_due(force=retuned):
                    self.state.write_snapshot(self.state_dict())
            return decisions

    def _ingest_chunk_sharded(
        self,
        chunk: list[ServiceEvent],
        tick: float | None,
        decisions: list[RetuneDecision],
    ) -> bool:
        """One cadence sub-batch through the sharded data plane.

        Cluster-level control events group-commit to the control
        journal first (so a tick's decision record lands after them, as
        on the per-event path), then every shard receives its partition
        — telemetry, tenant churn, and the broadcast heartbeats, each
        journaled write-ahead by the shard that owns it — and finally
        the control plane applies the chunk's membership/capacity
        effects before the tick's retune merges the shard statistics.
        Returns whether the tick (if any) applied a tune.
        """
        parts, control = self.router.partition(chunk)
        journaling = self.state is not None and not self._replaying
        if journaling and control:
            self.state.record_events(control)
        if control:
            self._m_ingest_events.inc(len(control))
        self._m_ingest_batches.inc()
        dispatched = 0
        for shard_id, part in enumerate(parts):
            if part:
                # On a failover the partition is re-delivered to the
                # replacement: the failed call's records never reached
                # the journal (or were truncated past the boundary), so
                # the retry cannot duplicate anything.
                self._supervised(
                    shard_id, lambda shard, p=part: shard.ingest(p)
                )
                dispatched += len(part)
        if journaling and dispatched:
            self.state.note_shard_records(dispatched)
        for event in chunk:
            self._events += 1
            if event.time > self._now:
                self._now = event.time
            if isinstance(event, (TenantJoined, TenantLeft)):
                self._apply_membership(event)
            elif isinstance(event, (NodeLost, NodeRecovered)):
                self._apply_control(event)
            elif not isinstance(event, Heartbeat):
                self._telemetry += 1
        if tick is not None and not self._replaying:
            decision = self.retune(tick)
            decisions.append(decision)
            return decision.retuned
        return False

    def retune(self, now: float, force: bool = False) -> RetuneDecision:
        """One guarded retune attempt at simulated time ``now``.

        The guards run in order: sparsity first (no signal, nothing to
        tune from), then stability (material drift since the snapshot of
        the last *applied* tune).  ``force=True`` — or a pending forced
        signal from node loss / tenant churn — bypasses the stability
        guard but not the sparsity guard.
        """
        with self._lock:
            self._last_attempt = now
            span = Span()
            with span.phase("drain"):
                if self.router.shards == 1:
                    # The live window, advanced (eviction current at the
                    # attempt time — the pre-sharding behavior, unchanged).
                    window = self.shards[0].window
                    window.advance(now)
                    snapshot = window.snapshot()
                else:
                    # Guards decide on O(tenants) merged statistics; the
                    # O(retained-entries) merged window is only
                    # materialized below if the tune actually proceeds.
                    window = None
                    snapshot = self._merged_shard_snapshot(now)
            jobs = sum(s.jobs for s in snapshot.values())
            force = force or self._force
            # Pre-tune guard phase: the decision plane's sparsity and
            # stability guards vote before any tuning work.  (An empty
            # window is always held by the engine, even with
            # min_window_jobs=0: there is no telemetry to tune from,
            # and an empty trace would read as perfect SLO compliance.)
            signals = TickSignals(
                time=now,
                index=self._index,
                jobs=jobs,
                min_jobs=self.config.min_window_jobs,
                force=force,
                first=self._last_snapshot is None,
                drift_threshold=self.config.drift_threshold,
                drift_fn=lambda: window_drift(self._last_snapshot, snapshot),
            )
            with span.phase("guard"):
                tick = self.engine.tick(signals)
            if not tick.proceed:
                record = (
                    self.engine.hold_record(self._index, now, tick)
                    if self.engine.emit_records
                    else None
                )
                decision = RetuneDecision(
                    now, self._index, False, tick.reason, tick.drift, record=record
                )
                self._observe_retune(span)
                self._record_decision(decision)
                return decision
            reason, drift = tick.reason, tick.drift
            with span.phase("merge"):
                if window is None:
                    window = self._control_window(now)  # full merge: tune input
                trace = window.trace()
                cluster = self.effective_cluster(
                    capacity_floor(trace.task_records)
                )
                trace.capacity = cluster.as_dict()
            started = _time.perf_counter()
            with span.phase("whatif"):
                pump = self._start_whatif_pump()
                try:
                    self.engine.begin_tune(now, tick.votes)
                    iteration = self.controller.tune_from_trace(
                        self._index, trace, cluster=cluster
                    )
                finally:
                    self._stop_whatif_pump(pump)
            latency = _time.perf_counter() - started
            self._history.append(
                ConfigSnapshot(self._index, now, self.controller.config)
            )
            self._last_snapshot = snapshot
            self._force = False
            decision = RetuneDecision(
                now,
                self._index,
                True,
                reason,
                drift,
                latency,
                iteration,
                record=iteration.decision if self.engine.emit_records else None,
            )
            self._index += 1
            self._observe_retune(span)
            self._record_decision(decision)
            return decision

    def rollback(self) -> RMConfig | None:
        """Atomically restore the previously applied configuration.

        Pops the newest snapshot and reinstates its predecessor in the
        controller (config and encoded vector together, so the next tune
        starts from the restored point).  Returns the restored config,
        or ``None`` when no predecessor is available.  With durable
        state attached the rollback is journaled, so a resumed daemon
        reconstructs the same post-rollback history.
        """
        with self._lock:
            restored = self._rollback_locked()
            if (
                restored is not None
                and self.state is not None
                and not self._replaying
            ):
                self.state.record_rollback()
            return restored

    def _rollback_locked(self) -> RMConfig | None:
        if len(self._history) < 2:
            return None
        self._history.pop()
        snap = self._history[-1]
        self.controller.config = snap.config
        self.controller.x = self.controller.space.encode(snap.config)
        return snap.config

    def effective_cluster(self, floor: dict[str, int] | None = None) -> ClusterSpec:
        """Cluster capacity remaining after observed node loss.

        This is the cluster the what-if model predicts on.  ``floor``
        (per-pool largest single-task demand, see
        :func:`~repro.whatif.model.capacity_floor`) bounds the shrink so
        every observed task stays placeable; every pool keeps at least
        one container regardless.
        """
        cluster = self.controller.cluster
        if not any(self.lost_capacity.values()):
            return cluster
        capacity = cluster.as_dict()
        floor = floor or {}
        losses: dict[str, int] = {}
        for pool, lost in self.lost_capacity.items():
            if pool not in capacity or lost <= 0:
                continue
            allowed = capacity[pool] - max(1, floor.get(pool, 1))
            losses[pool] = min(lost, max(0, allowed))
        return cluster.shrunk(losses)

    def on_decision(self, callback) -> None:
        """Subscribe to decision-plane outcomes.

        ``callback`` receives a :class:`~repro.service.events.
        DecisionMade` event for every cadence-tick decision this daemon
        makes (never for decisions restored by a resume) — the
        observability hook for dashboards and ablation harnesses.
        """
        self._decision_listeners.append(callback)

    # -- observability ------------------------------------------------------

    def _observe_retune(self, span: Span) -> None:
        """Record one cadence tick's phase timings and backlog gauges."""
        m = self.metrics
        m.histogram(
            "tempo_retune_seconds", "Wall time of one full cadence tick."
        ).observe(span.total)
        for phase, seconds in span.durations.items():
            m.histogram(
                "tempo_retune_phase_seconds",
                "Cadence tick wall time by phase (drain/guard/merge/whatif).",
                phase=phase,
            ).observe(seconds)
        m.gauge(
            "tempo_bus_depth", "Events queued on the daemon bus (backlog)."
        ).set(len(self.bus))
        m.gauge(
            "tempo_bus_dropped_total",
            "Events shed by the bounded daemon bus (overflow drops).",
        ).set(self.bus.dropped)
        lag = 0
        for shard_id, shard in enumerate(self.shards):
            pending = getattr(shard, "pending_batches", None)
            lag = max(lag, len(shard.bus) if pending is None else pending)
            age = getattr(shard, "heartbeat_age", None)
            if age is not None:
                m.gauge(
                    "tempo_shard_heartbeat_age_seconds",
                    "Seconds since each worker shard's newest liveness beat.",
                    shard=str(shard_id),
                ).set(age())
        m.gauge(
            "tempo_shard_queue_lag",
            "Worst per-shard intake backlog (batches for workers, "
            "bus events in-process).",
            mode="max",
        ).set(lag)
        self._observe_whatif()
        self._observe_transport()

    def _observe_whatif(self) -> None:
        """Scrape the evaluation plane's counters into the registry.

        The :class:`~repro.whatif.evalpool.CandidateEvaluator` keeps
        cumulative counts plus drainable per-batch samples (the
        single-writer contract: instruments are owned here, fed by
        delta against the last scrape, so nothing double-counts across
        cadence ticks or after a resume).
        """
        evalplane = getattr(self.controller, "evalplane", None)
        if evalplane is None:
            return
        m = self.metrics
        sims = evalplane.sim_runs - self._whatif_seen["sim_runs"]
        hits = evalplane.hits - self._whatif_seen["hits"]
        self._whatif_seen = {
            "sim_runs": evalplane.sim_runs, "hits": evalplane.hits,
        }
        if sims > 0:
            m.counter(
                "tempo_whatif_evaluations_total",
                "Candidate simulations actually executed (cache misses).",
            ).inc(sims)
            m.counter(
                "tempo_whatif_cache_misses_total",
                "What-if candidates that required a simulation run.",
            ).inc(sims)
        if hits > 0:
            m.counter(
                "tempo_whatif_cache_hits_total",
                "What-if candidates served from memo/cache/dedupe.",
            ).inc(hits)
        batches, eval_seconds = evalplane.drain_observations()
        for size in batches:
            m.histogram(
                "tempo_whatif_batch_size",
                "Candidates submitted per what-if evaluation batch.",
                buckets=BATCH_BUCKETS,
            ).observe(float(size))
        for seconds in eval_seconds:
            m.histogram(
                "tempo_whatif_eval_seconds",
                "Wall time per executed candidate simulation.",
            ).observe(seconds)
        m.gauge(
            "tempo_whatif_pool_size",
            "Worker processes used by the most recent pooled batch.",
        ).set(evalplane.last_pool_size)

    # -- whatif-phase staging pump ------------------------------------------

    def _start_whatif_pump(self):
        """Keep the bus from shedding while a pooled tune holds the lock.

        Returns ``None`` — no pump — unless the controller's evaluation
        plane actually uses workers *and* a drain thread exists to
        consume staged events afterwards (in synchronous use the caller
        processes events itself; staging would strand them).  Otherwise
        starts a thread that moves queued bus events into the staging
        list for the duration of the whatif phase, so shards and
        producers keep ingesting at full speed while candidates
        evaluate on the pool.
        """
        evalplane = getattr(self.controller, "evalplane", None)
        if (
            evalplane is None
            or evalplane.workers <= 0
            or self._thread is None
            or not self._thread.is_alive()
        ):
            return None
        stop = threading.Event()

        def pump() -> None:
            while not stop.is_set():
                batch = self.bus.drain(limit=_DRAIN_BATCH)
                if batch:
                    with self._staged_lock:
                        self._staged.extend(batch)
                else:
                    stop.wait(0.005)

        thread = threading.Thread(
            target=pump, name="tempo-whatif-pump", daemon=True
        )
        thread.start()
        return stop, thread

    def _stop_whatif_pump(self, pump) -> None:
        """Stop and join the staging pump started for a whatif phase."""
        if pump is None:
            return
        stop, thread = pump
        stop.set()
        thread.join()

    def _take_staged(self) -> list:
        """Pop every event staged during a pooled whatif phase."""
        if not self._staged:
            return []
        with self._staged_lock:
            staged, self._staged = self._staged, []
        return staged

    #: Transport counters scraped per shard: handle attribute -> series.
    _TRANSPORT_COUNTERS = (
        ("reconnects", "tempo_transport_reconnects_total",
         "Reconnects that restored a shard connection."),
        ("retries", "tempo_transport_retries_total",
         "Batches re-sent after a reconnect (deduped at the worker)."),
        ("backpressure_dropped", "tempo_transport_backpressure_drops_total",
         "Telemetry events dropped by the bounded send queue."),
        ("connect_attempts", "tempo_transport_connect_attempts_total",
         "TCP connect attempts, successful or not."),
    )

    def _observe_transport(self) -> None:
        """Scrape each TCP handle's counters into the control registry.

        The handles' counters are plain ints owned by their I/O threads
        (the registry's single-writer contract); the control plane owns
        the registry instruments and feeds them by delta against the
        last scraped total, so respawns (whose counters restart under
        an additive base) never double-count.
        """
        m = self.metrics
        totals = None
        for shard_id, shard in enumerate(self.shards):
            if not callable(getattr(shard, "transport_stats", None)):
                continue
            if totals is None:
                totals = self.transport_stats()
            stats = totals[shard_id]
            label = str(shard_id)
            for key, name, help_text in self._TRANSPORT_COUNTERS:
                value = int(stats.get(key, 0))
                prev = self._transport_seen.get((shard_id, key), 0)
                if value > prev:
                    m.counter(name, help_text, shard=label).inc(value - prev)
                    self._transport_seen[(shard_id, key)] = value
            durations = getattr(shard, "reconnect_seconds", None)
            if durations:
                hist = m.histogram(
                    "tempo_transport_reconnect_seconds",
                    "Wall seconds each healed partition stayed disconnected.",
                    buckets=BACKOFF_BUCKETS,
                )
                while True:
                    try:
                        hist.observe(durations.popleft())
                    except IndexError:
                        break

    def _observe_decision(self, decision: RetuneDecision) -> None:
        """Count one decision-plane outcome (live or tail-replayed)."""
        m = self.metrics
        m.counter(
            "tempo_decisions_total",
            "Cadence-tick decisions by verdict.",
            verdict=decision.verdict,
        ).inc()
        m.counter(
            "tempo_decision_reasons_total",
            "Cadence-tick decisions by guard reason.",
            reason=decision.reason or "none",
        ).inc()
        record = decision.record
        if record is not None:
            for vote in record.votes:
                m.counter(
                    "tempo_guard_votes_total",
                    "Guard votes by guard and argued verdict.",
                    guard=vote.guard,
                    verdict=vote.verdict,
                ).inc()
            residual = record.residual
            if residual is not None and math.isfinite(residual):
                m.histogram(
                    "tempo_decision_residual",
                    "Worst normalized QS residual per applied decision.",
                    buckets=RESIDUAL_BUCKETS,
                ).observe(residual)
        m.gauge(
            "tempo_freeze_fuse_reverts",
            "Consecutive reverts counted toward the freeze fuse.",
        ).set(getattr(self.engine, "reverts_in_row", 0))

    def metrics_snapshot(self) -> MetricsRegistry:
        """Merged view of the control-plane and every shard registry.

        Always returns a real :class:`~repro.obs.MetricsRegistry` (empty
        when ``observe=False``).  Worker-shard dumps are as fresh as the
        last drain barrier; in-process shard registries are read live.
        """
        merged = MetricsRegistry.from_dict(self.metrics.to_dict())
        for i, shard in enumerate(self.shards):
            base = self._shard_metrics_base.get(i)
            if base:
                merged.merge(base)
            live = getattr(shard, "metrics", None)
            if live is not None:
                merged.merge(live.to_dict())
            else:
                cached = self._shard_metrics.get(i)
                if cached:
                    merged.merge(cached)
        return merged

    def _metrics_state(self) -> dict:
        """Snapshot payload: the control dump plus one dump per shard."""
        shard_dumps: list[dict] = []
        if self.router.shards > 1:
            for i, shard in enumerate(self.shards):
                merged = MetricsRegistry()
                base = self._shard_metrics_base.get(i)
                if base:
                    merged.merge(base)
                live = getattr(shard, "metrics", None)
                if live is not None:
                    merged.merge(live.to_dict())
                else:
                    cached = self._shard_metrics.get(i)
                    if cached:
                        merged.merge(cached)
                shard_dumps.append(merged.to_dict())
        return {"control": self.metrics.to_dict(), "shards": shard_dumps}

    def _record_decision(self, decision: RetuneDecision) -> None:
        """Append a decision in memory and, when durable, to the journal.

        An applied tune is journaled as ONE ``config`` record carrying
        both the decision and the resulting controller state — a crash
        can never land between "the tune happened" and "this is the
        config it applied", which would resume into a state the live
        daemon never had.  Skipped ticks are plain ``decision`` records.
        With metrics sampling enabled, every tick additionally journals
        one ``metrics`` record — the merged registry dump at that moment
        — so the journal carries an append-only observability series.
        """
        self.decisions.append(decision)
        self._observe_decision(decision)
        if self._decision_listeners and not self._replaying:
            event = DecisionMade(
                decision.time,
                verdict=decision.verdict,
                index=decision.index,
                retuned=decision.retuned,
                reason=decision.reason,
                record=None
                if decision.record is None
                else decision.record.to_dict(),
            )
            for callback in self._decision_listeners:
                callback(event)
        if self.state is None or self._replaying:
            return
        if decision.retuned:
            self.state.record_config(
                {
                    "decision": _decision_to_dict(decision),
                    "controller": controller_state_dict(self.controller),
                }
            )
        else:
            self.state.record_decision(_decision_to_dict(decision))
        if self.config.sample_metrics:
            sample = {
                "time": decision.time,
                "index": decision.index,
                "metrics": self.metrics_snapshot().to_dict(),
            }
            self._last_metrics_sample = sample
            self.state.record_metrics(sample)

    # -- durability ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything a resumed daemon needs, as one JSON-ready dict.

        Single-shard snapshots keep the PR 2 shape (one ``window``
        key); sharded snapshots carry every shard's window state plus
        the shard layout and each journal's covered position under
        ``sharding`` — one snapshot covers all N+1 journals.
        """
        with self._lock:
            if self.router.shards == 1:
                extra = {"window": self.shards[0].window.to_state()}
            else:
                states = self._drain_shards(self._now)
                extra = {
                    "shard_windows": [s["window"] for s in states],
                    "sharding": {
                        "shards": self.router.shards,
                        "router": "crc32",
                        "shard_seqs": [int(s["seq"]) for s in states],
                        "telemetry": self._telemetry,
                    },
                }
            return {
                **extra,
                "active_tenants": sorted(self.active_tenants),
                "nodes_lost": self.nodes_lost,
                "nodes_recovered": self.nodes_recovered,
                # Failover counters ride the snapshot only once a
                # failover happened, keeping snapshot bytes identical
                # for every fault-free service.
                **(
                    {
                        "shard_failures": self.shard_failures,
                        "shard_recoveries": self.shard_recoveries,
                    }
                    if self.shard_failures or self.shard_recoveries
                    else {}
                ),
                "lost_capacity": dict(self.lost_capacity),
                "events": self._events,
                "last_attempt": self._last_attempt,
                "last_stats": None
                if self._last_snapshot is None
                else {
                    name: stats_to_dict(stats)
                    for name, stats in self._last_snapshot.items()
                },
                "index": self._index,
                "force": self._force,
                "history": [
                    {
                        "index": snap.index,
                        "time": snap.time,
                        "config": config_to_dict(snap.config),
                    }
                    for snap in self._history
                ],
                "decisions": [_decision_to_dict(d) for d in self.decisions],
                "controller": controller_state_dict(self.controller),
                # Registry dumps ride the snapshot only when sampling is
                # on, keeping default snapshot bytes exactly as before.
                **(
                    {"metrics": self._metrics_state()}
                    if self.config.sample_metrics
                    else {}
                ),
            }

    def _restore_state(self, state: dict) -> None:
        if "shard_windows" in state:
            sharding = state.get("sharding", {})
            recorded = int(sharding.get("shards", len(state["shard_windows"])))
            if recorded != self.router.shards:
                raise JournalError(
                    f"snapshot records {recorded} shard(s) but the service "
                    f"was built with {self.router.shards}; resume with "
                    "--reshard to change the layout"
                )
            for shard, window_state in zip(self.shards, state["shard_windows"]):
                shard.restore(window_state)
            self._now = max(
                (float(w["now"]) for w in state["shard_windows"]), default=0.0
            )
            self._telemetry = int(sharding.get("telemetry", 0))
        else:
            if self.router.shards != 1:
                raise JournalError(
                    "single-shard snapshot cannot restore a sharded service; "
                    "resume with --reshard to change the layout"
                )
            self.shards[0].window = RollingWindow.from_state(state["window"])
            self._now = self.shards[0].window.now
        self.active_tenants = set(state["active_tenants"])
        self.nodes_lost = int(state["nodes_lost"])
        self.nodes_recovered = int(state.get("nodes_recovered", 0))
        self.shard_failures = int(state.get("shard_failures", 0))
        self.shard_recoveries = int(state.get("shard_recoveries", 0))
        self.lost_capacity = {
            pool: int(n) for pool, n in state["lost_capacity"].items()
        }
        self._events = int(state["events"])
        attempt = state["last_attempt"]
        self._last_attempt = None if attempt is None else float(attempt)
        last = state["last_stats"]
        self._last_snapshot = (
            None
            if last is None
            else {name: stats_from_dict(row) for name, row in last.items()}
        )
        self._index = int(state["index"])
        self._force = bool(state["force"])
        self._history = deque(
            (
                ConfigSnapshot(
                    int(row["index"]),
                    float(row["time"]),
                    config_from_dict(row["config"]),
                )
                for row in state["history"]
            ),
            maxlen=self.config.history,
        )
        self.decisions = deque(
            (_decision_from_dict(row) for row in state["decisions"]),
            maxlen=self.config.decision_history,
        )
        restore_controller_state(self.controller, state["controller"])
        metrics_state = state.get("metrics")
        if metrics_state and self.config.observe:
            self.metrics.restore(metrics_state.get("control", {}))
            for i, dump in enumerate(metrics_state.get("shards", [])):
                if i >= len(self.shards) or not dump:
                    continue
                live = getattr(self.shards[i], "metrics", None)
                if live is not None:
                    live.restore(dump)
                else:
                    # Worker shards restart with fresh registries; keep
                    # the persisted dump as an additive base.
                    self._shard_metrics_base[i] = dump

    def _apply_journal_record(self, record: JournalRecord) -> None:
        """Re-apply one journal record during resume (cadence quiet)."""
        if record.kind == "event":
            self.process(decode_event(record.data))
        elif record.kind == "decision":
            # A skipped cadence tick (sparse/stable): only the cadence
            # anchor and the decision log move.
            decision = _decision_from_dict(record.data)
            self.decisions.append(decision)
            self._observe_decision(decision)
            self._last_attempt = decision.time
        elif record.kind == "config":
            # An applied tune: decision + controller state, atomically.
            decision = _decision_from_dict(record.data["decision"])
            self.decisions.append(decision)
            self._observe_decision(decision)
            self._last_attempt = decision.time
            self._index = decision.index + 1
            self._force = False
            restore_controller_state(self.controller, record.data["controller"])
            self._history.append(
                ConfigSnapshot(decision.index, decision.time, self.controller.config)
            )
            # The window state at this journal position is what the
            # live daemon snapshotted when it applied the tune (the
            # merged per-tenant statistics, when sharded).
            if self.router.shards == 1:
                self._last_snapshot = self._control_window(decision.time).snapshot()
            else:
                self._last_snapshot = self._merged_shard_snapshot(decision.time)
        elif record.kind == "metrics":
            # Observability samples restore registries from snapshots,
            # not from the journal; the tail's newest sample is only
            # noted so introspection can cross-check it.
            self._last_metrics_sample = record.data
        elif record.kind == "rollback":
            self._rollback_locked()
        else:
            raise JournalError(f"unknown journal record kind {record.kind!r}")

    @classmethod
    def resume(
        cls,
        controller: TempoController,
        state: ServiceState | str | os.PathLike,
        config: ServiceConfig | None = None,
        bus: EventBus | None = None,
        *,
        shards: int | None = None,
        shard_workers: bool = False,
        tcp_workers: bool = False,
        transport: TransportConfig | None = None,
        failover: FailoverConfig | None = None,
    ) -> "TempoService":
        """Rebuild a daemon from its state directory.

        Loads the newest readable snapshot, then replays the journal
        tail past it: telemetry events re-fold into the rolling window
        (with the retune cadence quiet), while decision / config /
        rollback records restore the outcomes the live daemon actually
        produced — a tune is never recomputed on resume, so the restored
        config history is exactly what was applied.

        Sharded state dirs replay **all N+1 journal tails**: each
        shard's telemetry re-folds into its own window, the control
        tail restores decisions and configs, and the streams are
        interleaved in event-time order so control effects land at the
        stream position the live daemon applied them.  ``shards`` must
        match the state dir's layout (pass it when ``state`` is a
        path); a mismatch — including a snapshot recorded under a
        different layout — is refused rather than silently re-routed
        (reshard explicitly instead).  ``shard_workers`` promotes the
        shards to worker processes *after* the replay, which always
        runs in-process; ``tcp_workers`` promotes to TCP loopback
        workers instead (``transport`` tunes their
        :class:`~repro.service.transport.TransportConfig`).

        ``controller`` must be a freshly built controller for the same
        cluster, SLOs, and config space the daemon was serving (the
        scenario descriptor in ``meta.json`` is how the CLI rebuilds
        one); its tuning state is overwritten from the persisted state.
        """
        if not isinstance(state, ServiceState):
            if shards is None:
                shards = _detect_shard_layout(state)
            state = ServiceState(state, shards=shards)
        elif shards is not None and shards != state.shards:
            raise ValueError(
                f"state dir is laid out for {state.shards} shard(s), "
                f"asked to resume with {shards}; reshard explicitly"
            )
        service = cls(
            controller,
            config,
            bus,
            state=state,
            shards=state.shards,
            failover=failover,
        )
        loaded = state.load_latest_snapshot()
        after = 0
        shard_after = [0] * state.shards
        if loaded is not None:
            after, snapshot = loaded
            service._restore_state(snapshot)
            if state.shards > 1:
                recorded = snapshot.get("sharding", {}).get("shard_seqs")
                if recorded is not None:
                    shard_after = [int(s) for s in recorded]
        else:
            # A compacted journal no longer starts at seq 1; without a
            # readable snapshot covering the deleted prefix, resuming
            # would silently rebuild from partial history.  Refuse.
            journals = [state.journal]
            if state.shards > 1:
                journals += [state.shard_journal(i) for i in range(state.shards)]
            for journal in journals:
                segments = journal.segments()
                if segments and journal._first_seq_of(segments[0]) > 1:
                    raise JournalError(
                        "journal was compacted (first retained seq "
                        f"{journal._first_seq_of(segments[0])}) but no "
                        "readable snapshot covers the deleted prefix; cannot resume"
                    )
        service._replaying = True
        try:
            if state.shards == 1:
                for record in state.journal.iter_records(after=after):
                    service._apply_journal_record(record)
            else:
                service._replay_sharded(after, shard_after)
        finally:
            service._replaying = False
        if shard_workers and state.shards > 1:
            service.promote_to_workers()
        elif tcp_workers and state.shards > 1:
            service.promote_to_remote(transport)
        return service

    def _replay_sharded(self, control_after: int, shard_after: list[int]) -> None:
        """Replay N+1 journal tails interleaved in event-time order.

        Each journal is internally ordered; the global interleaving the
        live daemon saw is reconstructed by sorting on ``(event time,
        kind rank, stream, position)`` — telemetry before the decision
        that fired at the same instant, each stream's own order
        preserved on ties.  Bounded cross-stream disorder (completion
        telemetry carrying timestamps past a chunk edge) only perturbs
        where the stability baseline is re-measured, never the restored
        decisions, configs, or window statistics — all of which are
        order-insensitive or restored verbatim.
        """
        state = self.state
        entries: list[tuple[float, int, int, int, JournalRecord]] = []
        last = 0.0
        for ordinal, record in enumerate(
            state.journal.iter_records(after=control_after)
        ):
            if record.kind == "event":
                when, rank = float(record.data["time"]), 0
            elif record.kind == "decision":
                when, rank = float(record.data["time"]), 1
            elif record.kind == "config":
                when, rank = float(record.data["decision"]["time"]), 1
            elif record.kind == "metrics":
                when, rank = float(record.data["time"]), 1
            else:  # rollback carries no timestamp; keep stream position
                when, rank = last, 1
            last = max(last, when)
            entries.append((when, rank, 0, ordinal, record))
        for i in range(self.router.shards):
            tail = state.shard_journal(i).iter_records(after=shard_after[i])
            for ordinal, record in enumerate(tail):
                if record.kind != "event":
                    raise JournalError(
                        f"unexpected {record.kind!r} record in shard journal {i}"
                    )
                entries.append(
                    (float(record.data["time"]), 0, i + 1, ordinal, record)
                )
        entries.sort(key=lambda entry: entry[:4])
        for _, _, stream, _, record in entries:
            if stream == 0:
                self._apply_control_tail_record(record)
            else:
                self._apply_shard_tail_record(stream - 1, record)

    def _apply_control_tail_record(self, record: JournalRecord) -> None:
        """Re-apply one control-journal record during a sharded resume."""
        if record.kind != "event":
            self._apply_journal_record(record)  # decision/config/rollback
            return
        event = decode_event(record.data)
        self._events += 1
        if event.time > self._now:
            self._now = event.time
        if self._last_attempt is None:
            self._last_attempt = event.time
        if not isinstance(event, Heartbeat):
            self._apply_control(event)  # NodeLost / NodeRecovered
        # Heartbeats advance the shard clocks through their broadcast
        # copies in the shard journals; nothing more to do here.

    def _apply_shard_tail_record(self, shard_id: int, record: JournalRecord) -> None:
        """Re-fold one shard-journal record during a sharded resume."""
        event = decode_event(record.data)
        shard = self.shards[shard_id]
        if isinstance(event, Heartbeat):
            shard.advance(event.time)  # broadcast copy: clock only
            return
        self._events += 1
        if event.time > self._now:
            self._now = event.time
        if self._last_attempt is None:
            self._last_attempt = event.time
        if isinstance(event, (TenantJoined, TenantLeft)):
            self._apply_membership(event)
        else:
            self._telemetry += 1
        shard.fold([event])

    def promote_to_workers(self) -> None:
        """Swap in-process shards for worker processes (post-replay).

        The in-process shards' windows move into freshly spawned
        workers; every parent-side shard-journal handle is closed first
        so the workers — which own the journals from here on — never
        race the parent's open.
        """
        states = self._drain_shards(self._now)
        # Workers start with fresh registries: fold what the in-process
        # shards counted (on top of any restored base) into the additive
        # base the control plane merges under each worker's dump.
        for i, shard in enumerate(self.shards):
            live = getattr(shard, "metrics", None)
            if live is not None:
                carried = MetricsRegistry.from_dict(
                    self._shard_metrics_base.get(i, {})
                )
                carried.merge(live.to_dict())
                self._shard_metrics_base[i] = carried.to_dict()
        self._shard_metrics.clear()
        for shard in self.shards:
            shard.close()
        state = self.state
        if state is not None:
            state.shard_compaction = False
            for journal in state._shard_journals.values():
                journal.close()
            state._shard_journals.clear()
            paths = [
                state.shard_journal_path(i) for i in range(self.router.shards)
            ]
            opts = state.shard_journal_opts()
        else:
            paths, opts = None, None
        self.shards = start_shard_workers(
            self.router.shards, self.config.window, paths, opts,
            observe=self.config.observe,
            heartbeat_interval=(
                self.failover.heartbeat_interval
                if self.failover is not None
                else 1.0
            ),
            failover_after=(
                self.failover.failover_after
                if self.failover is not None
                else None
            ),
        )
        for shard, shard_state in zip(self.shards, states):
            shard.restore(shard_state["window"])
        self.shard_workers = True

    def promote_to_remote(self, transport: TransportConfig | None = None) -> None:
        """Swap in-process shards for TCP loopback workers (post-replay).

        The TCP twin of :meth:`promote_to_workers`: windows move into
        freshly spawned ``serve_shard`` processes behind
        :class:`~repro.service.transport.RemoteShardHandle` proxies,
        with the same journal-ownership handoff (parent-side handles
        closed first, workers own the journals from here on).
        """
        states = self._drain_shards(self._now)
        for i, shard in enumerate(self.shards):
            live = getattr(shard, "metrics", None)
            if live is not None:
                carried = MetricsRegistry.from_dict(
                    self._shard_metrics_base.get(i, {})
                )
                carried.merge(live.to_dict())
                self._shard_metrics_base[i] = carried.to_dict()
        self._shard_metrics.clear()
        for shard in self.shards:
            shard.close()
        state = self.state
        if state is not None:
            state.shard_compaction = False
            for journal in state._shard_journals.values():
                journal.close()
            state._shard_journals.clear()
            paths = [
                state.shard_journal_path(i) for i in range(self.router.shards)
            ]
            opts = state.shard_journal_opts()
        else:
            paths, opts = None, None
        if transport is not None:
            self.transport = transport
        self.shards, self._launcher = start_remote_shards(
            self.router.shards, self.config.window, paths, opts,
            observe=self.config.observe,
            heartbeat_interval=(
                self.failover.heartbeat_interval
                if self.failover is not None
                else 1.0
            ),
            failover_after=(
                self.failover.failover_after
                if self.failover is not None
                else None
            ),
            config=self.transport,
        )
        # Keep the resolved wire codec for failover respawns (see init).
        self.transport = self._launcher.config
        for shard, shard_state in zip(self.shards, states):
            shard.restore(shard_state["window"])
        self.tcp_workers = True

    def reshard(self, shards: int) -> None:
        """Redistribute the data plane across a new shard count.

        Every retained window entry is re-routed through a fresh
        :class:`~repro.service.sharding.ShardRouter` for the new count;
        merged statistics are unchanged (the entries are the same, only
        their grouping moves).  With durable state attached the state
        dir is re-targeted and a full snapshot is written immediately,
        so the new layout always has a consistent (snapshot,
        journal-tail) pair — pre-reshard journals are never replayed
        past it.  Must run before any worker promotion.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if self.shard_workers or self.tcp_workers or self.shard_endpoints:
            raise RuntimeError("reshard before promoting shards to workers")
        with self._lock:
            prior_telemetry = self.telemetry_ingested
            states = self._drain_shards(self._now)
            merged = RollingWindow.merge_states([s["window"] for s in states])
            # The per-shard attribution cannot survive a re-partition;
            # fold every shard's counts into the control registry so the
            # merged totals stay monotone across the reshard.
            if self.config.observe:
                for i, shard in enumerate(self.shards):
                    base = self._shard_metrics_base.get(i)
                    if base:
                        self.metrics.merge(base)
                    live = getattr(shard, "metrics", None)
                    if live is not None:
                        self.metrics.merge(live.to_dict())
                    else:
                        cached = self._shard_metrics.get(i)
                        if cached:
                            self.metrics.merge(cached)
            self._shard_metrics.clear()
            self._shard_metrics_base.clear()
            for shard in self.shards:
                shard.close()
            if self.state is not None:
                self.state.reshard(shards)
            self.router = ShardRouter(shards)
            self.shards = [
                IngestShard(
                    i,
                    self.config.window,
                    journal=(
                        self.state.shard_journal(i)
                        if self.state is not None and shards > 1
                        else None
                    ),
                    queue_capacity=self.config.queue_capacity,
                    metrics=(
                        MetricsRegistry()
                        if self.config.observe and shards > 1
                        else None
                    ),
                )
                for i in range(shards)
            ]
            merged_state = merged.to_state()
            partitions: list[dict] = [
                {
                    "window": merged_state["window"],
                    "now": merged_state["now"],
                    "events": 0,
                    "tenants": {},
                }
                for _ in range(shards)
            ]
            for name, slot in merged_state["tenants"].items():
                part = partitions[self.router.shard_of(name)]
                part["tenants"][name] = slot
                part["events"] += (
                    len(slot["tasks"]) + len(slot["jobs"]) + len(slot["submits"])
                )
            if shards == 1:
                # One window again: its ingest counter resumes the
                # stream-wide total, not just the retained entries.
                partitions[0]["events"] = merged_state["events"]
            for shard, part in zip(self.shards, partitions):
                shard.restore(part)
            self._telemetry = prior_telemetry
            if self.state is not None and not self._replaying:
                self.state.write_snapshot(self.state_dict())

    # -- daemon mode --------------------------------------------------------

    def submit(self, event: ServiceEvent) -> bool:
        """Publish an event to the service's bus (False when shed)."""
        return self.bus.publish(event)

    def submit_blocking(self, event: ServiceEvent, poll: float = 0.001) -> bool:
        """Publish without shedding: block until the bus has room.

        Ordinary telemetry is shed under overload (an RM callback must
        never stall), but control markers whose loss would corrupt
        recovery semantics — the replay driver's chunk heartbeats, which
        ``repro resume`` uses as its journal truncation boundary — must
        reach the daemon.  Raises ``RuntimeError`` if the drain thread
        died or is not running (the bus would never empty).
        """
        while not self.bus.publish(event):
            if self._thread is None:
                raise RuntimeError("cannot submit_blocking: service not running")
            self._check_drain_alive()
            _time.sleep(poll)
        return True

    def start(self) -> None:
        """Start the background thread draining the event bus."""
        if self._thread is not None:
            raise RuntimeError("service already running")
        self._stop.clear()
        self._drain_error = None
        self._thread = threading.Thread(
            target=self._drain_loop, name="tempo-service", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Drain remaining queued events, then stop the background thread.

        Re-raises (wrapped) any error that killed the drain thread
        mid-run — a daemon that died on, say, a full state-dir disk must
        not look like a clean shutdown.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._drain_error is not None:
            error, self._drain_error = self._drain_error, None
            raise RuntimeError("service drain thread died") from error

    def _check_drain_alive(self) -> None:
        if self._drain_error is not None or (
            self._thread is not None and not self._thread.is_alive()
        ):
            raise RuntimeError("service drain thread died") from self._drain_error

    def quiesce(self, poll: float = 0.002) -> None:
        """Block until the bus is empty and in-flight processing finished.

        Only meaningful in daemon mode where every event flows through
        the bus: completion is detected as the count of *fully processed*
        bus deliveries catching up with ``bus.published`` (a dedicated
        counter — ``events_processed`` also includes events restored
        from a resumed journal, which the bus never saw).  Producers use
        this as a barrier so anything derived from the live config
        (e.g. the replayer's next production chunk) sees all prior
        telemetry applied.  Raises ``RuntimeError`` when no drain thread
        is running — waiting would hang forever — or when the drain
        thread died of an unhandled error (e.g. the state dir's disk
        filled mid-journal-append): a dead consumer can never catch up,
        and the failure must surface instead of spinning silently.
        """
        if self._thread is None:
            raise RuntimeError("cannot quiesce: service not running")
        while len(self.bus) or self._bus_consumed < self.bus.published:
            self._check_drain_alive()
            _time.sleep(poll)

    def _drain_loop(self) -> None:
        try:
            while True:
                # Events staged by a whatif-phase pump come first: they
                # left the bus before anything queued now, so consuming
                # them first preserves arrival order.
                staged = self._take_staged()
                if staged:
                    for start in range(0, len(staged), _DRAIN_BATCH):
                        batch = staged[start : start + _DRAIN_BATCH]
                        if len(batch) == 1:
                            self.process(batch[0])
                        else:
                            self.ingest_batch(batch)
                        self._bus_consumed += len(batch)
                    continue
                event = self.bus.poll(timeout=0.05)
                if event is not None:
                    # Group commit: everything already queued behind the
                    # first event is ingested as one batch, so a
                    # backlogged bus drains at append_many speed instead
                    # of paying the per-record journal tax.
                    batch = [event]
                    batch.extend(self.bus.drain(limit=_DRAIN_BATCH - 1))
                    if len(batch) == 1:
                        self.process(event)
                    else:
                        self.ingest_batch(batch)
                    self._bus_consumed += len(batch)
                elif self._stop.is_set() and not len(self.bus) and not self._staged:
                    return
        except BaseException as exc:
            # Stored, not re-raised: quiesce()/stop() surface it (with
            # the original traceback chained) on the caller's thread.
            self._drain_error = exc

    # -- introspection ------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the background drain thread is alive."""
        return self._thread is not None

    @property
    def events_processed(self) -> int:
        """Events handled by :meth:`process` (telemetry and control)."""
        return self._events

    @property
    def retunes(self) -> int:
        """Cadence ticks that applied a tune."""
        return sum(1 for d in self.decisions if d.retuned)

    @property
    def skips(self) -> int:
        """Cadence ticks skipped by the sparsity or stability guard."""
        return sum(1 for d in self.decisions if not d.retuned)

    @property
    def rm_config(self) -> RMConfig:
        """The currently applied RM configuration."""
        return self.controller.config

    @property
    def config_history(self) -> tuple[ConfigSnapshot, ...]:
        """Retained applied-configuration snapshots, oldest first."""
        return tuple(self._history)


def _detect_shard_layout(root: str | os.PathLike) -> int:
    """Shard count of an existing state dir (meta.json, else the tree).

    Guards :meth:`TempoService.resume` callers who pass a bare path
    without ``shards``: silently opening a sharded state dir as
    single-shard would replay only the control journal and drop every
    shard's telemetry without an error.  ``meta.json`` is authoritative
    when present; otherwise the ``shard-NN/`` trees on disk are
    counted.
    """
    import json as _json
    from pathlib import Path as _Path

    root = _Path(root)
    meta = root / "meta.json"
    if meta.exists():
        try:
            recorded = _json.loads(meta.read_text()).get("shards")
            if recorded is not None:
                return int(recorded)
        except (ValueError, TypeError):
            pass  # unreadable descriptor: fall through to the tree scan
    from repro.service.sharding import shard_dir_name

    count = 0
    while (root / shard_dir_name(count) / "journal").is_dir():
        count += 1
    return max(count, 1)


def _decision_to_dict(decision: RetuneDecision) -> dict:
    """JSON-ready dict for a decision (infinite drift -> null).

    The decision plane's :class:`~repro.core.decisions.DecisionRecord`
    rides along under a ``"record"`` key when present; the legacy
    pipeline attaches none, which keeps its journal and snapshot bytes
    identical to the pre-decision-plane format.
    """
    row = {
        "time": decision.time,
        "index": decision.index,
        "retuned": decision.retuned,
        "reason": decision.reason,
        "drift": inf_to_null(decision.drift),
        "latency": decision.latency,
    }
    if decision.record is not None:
        row["record"] = decision.record.to_dict()
    return row


def _decision_from_dict(row: dict) -> RetuneDecision:
    """Rebuild a decision record (without its in-memory iteration)."""
    record = row.get("record")
    return RetuneDecision(
        time=float(row["time"]),
        index=int(row["index"]),
        retuned=bool(row["retuned"]),
        reason=str(row["reason"]),
        drift=inf_from_null(row["drift"]),
        latency=float(row["latency"]),
        record=None if record is None else DecisionRecord.from_dict(record),
    )
